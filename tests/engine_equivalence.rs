//! Engine equivalence: the three former copies of the decision pipeline —
//! the governor's in-process loop, the serve shard's session adapter, and
//! the experiment harness — now all delegate to one `DecisionEngine`.
//! These tests prove the delegation is bit-exact: the same counter stream
//! produces identical phases, predictions, operating points, and
//! confidence basis points through every entry point.

use livephase::engine::{Decision, DecisionEngine, EngineConfig, Sample};
use livephase::governor::Manager;
use livephase::pmsim::PlatformConfig;
use livephase::serve::SessionState;
use livephase::workloads::{counter_samples, spec, WorkloadTrace};

const PREDICTOR: &str = "gpht:8:128";

fn trace() -> WorkloadTrace {
    spec::benchmark("applu_in")
        .unwrap()
        .with_length(200)
        .generate(9)
}

fn samples_for(trace: &WorkloadTrace, pid: u32) -> Vec<Sample> {
    counter_samples(trace)
        .map(|s| Sample {
            pid,
            uops: s.uops,
            mem_transactions: s.mem_transactions,
        })
        .collect()
}

fn engine() -> DecisionEngine {
    DecisionEngine::from_spec(EngineConfig::pentium_m(), PREDICTOR).unwrap()
}

/// `step`, `step_many`, and the serve session adapter emit identical
/// decision streams — including the per-decision confidence basis points,
/// which `Decision`'s `Eq` compares field by field.
#[test]
fn step_step_many_and_session_are_bit_exact() {
    let trace = trace();
    let samples = samples_for(&trace, 0);

    let mut stepped_engine = engine();
    let stepped: Vec<Decision> = samples.iter().map(|s| stepped_engine.step(s)).collect();

    let mut batched_engine = engine();
    let mut batched = Vec::new();
    batched_engine.step_many(&samples, &mut batched);
    assert_eq!(batched, stepped, "step_many diverged from step");

    let mut session = SessionState::new(&EngineConfig::pentium_m(), PREDICTOR).unwrap();
    let served: Vec<Decision> = samples
        .iter()
        .map(|s| session.apply(s.pid, s.uops, s.mem_transactions))
        .collect();
    assert_eq!(served, stepped, "serve session diverged from step");

    // The two engines also agree on the aggregate score.
    assert_eq!(batched_engine.stats(), stepped_engine.stats());
}

/// The governor's full simulated run and a raw engine fed the run's
/// counter stream agree on every classification, standing prediction,
/// DVFS decision, and on the final prediction score.
#[test]
fn manager_run_matches_the_raw_engine() {
    let trace = trace();
    let samples = samples_for(&trace, 0);

    let mut eng = engine();
    let stepped: Vec<Decision> = samples.iter().map(|s| eng.step(s)).collect();

    let report = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
    assert_eq!(report.intervals.len(), stepped.len());

    // The decision at PMI k governs interval k + 1, so the report's
    // decision trace is the engine's op-point stream minus its last entry.
    let expected: Vec<usize> = stepped[..stepped.len() - 1]
        .iter()
        .map(|d| usize::from(d.op_point))
        .collect();
    assert_eq!(report.decision_trace(), expected);

    for (k, (log, d)) in report.intervals.iter().zip(&stepped).enumerate() {
        assert_eq!(log.phase, d.phase, "interval {k} classification");
        // The prediction standing when interval k's PMI fired was made at
        // PMI k - 1; the first interval has none.
        let standing = if k == 0 {
            None
        } else {
            Some(stepped[k - 1].predicted)
        };
        assert_eq!(log.predicted, standing, "interval {k} standing prediction");
    }

    assert_eq!(report.prediction, eng.stats(), "hit/miss accounting");
}

/// One shared session multiplexing several pids gives each pid exactly
/// the stream a dedicated single-pid engine would give it — predictor
/// state, scoring, and confidence never bleed across processes.
#[test]
fn multiplexed_pids_match_dedicated_engines() {
    let trace = trace();
    let pids = [3u32, 7, 11];

    // Round-robin interleaving of the same counter stream under each pid.
    let mut interleaved = Vec::new();
    for s in counter_samples(&trace) {
        for &pid in &pids {
            interleaved.push(Sample {
                pid,
                uops: s.uops,
                mem_transactions: s.mem_transactions,
            });
        }
    }

    let mut session = SessionState::new(&EngineConfig::pentium_m(), PREDICTOR).unwrap();
    let mut decisions = Vec::new();
    session.apply_batch(&interleaved, &mut decisions);

    for &pid in &pids {
        let mut dedicated = engine();
        let expected: Vec<Decision> = samples_for(&trace, pid)
            .iter()
            .map(|s| dedicated.step(s))
            .collect();
        let got: Vec<Decision> = decisions.iter().filter(|d| d.pid == pid).copied().collect();
        assert_eq!(got, expected, "pid {pid} diverged under multiplexing");
    }
}
