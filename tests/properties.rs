//! Cross-crate property-based tests (proptest) on the invariants the
//! reproduction rests on.

use livephase::core::{
    evaluate, Gpht, GphtConfig, LastValue, PhaseId, PhaseMap, PhaseSample, Predictor,
};
use livephase::governor::Manager;
use livephase::pmsim::{Frequency, IntervalWork, PlatformConfig, TimingModel};
use livephase::workloads::{spec, WorkloadTrace};
use proptest::prelude::*;

/// Any finite non-negative rate classifies into exactly one valid phase,
/// and the phase's interval contains the rate.
fn arb_rate() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..0.2f64,
        Just(0.0),
        Just(0.005),
        Just(0.010),
        Just(0.015),
        Just(0.020),
        Just(0.030),
    ]
}

proptest! {
    #[test]
    fn phase_map_is_total_and_consistent(rate in arb_rate()) {
        let map = PhaseMap::pentium_m();
        let phase = map.classify(rate);
        prop_assert!(phase.get() >= 1);
        prop_assert!(usize::from(phase.get()) <= map.phase_count());
        let (lo, hi) = map.interval(phase);
        prop_assert!(rate >= lo && rate < hi, "{rate} not in [{lo},{hi})");
    }

    #[test]
    fn phase_map_is_monotone(a in arb_rate(), b in arb_rate()) {
        let map = PhaseMap::pentium_m();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(map.classify(lo) <= map.classify(hi));
    }

    /// Execution time never increases with frequency, and Mem/Uop is
    /// exactly invariant.
    #[test]
    fn timing_is_monotone_in_frequency(
        mem_per_kuop in 0u64..60,
        cpi in 0.3f64..2.0,
        mlp in 1.0f64..5.0,
        f_lo in 400u32..1000,
        f_hi in 1000u32..2000,
    ) {
        let timing = TimingModel::pentium_m();
        let uops = 10_000_000u64;
        let work = IntervalWork::new(uops, uops, uops / 1000 * mem_per_kuop, cpi, mlp);
        let slow = timing.execute(&work, Frequency::from_mhz(f_lo));
        let fast = timing.execute(&work, Frequency::from_mhz(f_hi));
        prop_assert!(slow.seconds >= fast.seconds);
        // Memory seconds identical; Mem/Uop a pure work property.
        prop_assert!((slow.mem_seconds - fast.mem_seconds).abs() < 1e-15);
    }

    /// UPC at a lower frequency is never lower than at a higher frequency.
    #[test]
    fn upc_never_falls_as_frequency_falls(
        mem_per_kuop in 0u64..60,
        cpi in 0.3f64..2.0,
    ) {
        let timing = TimingModel::pentium_m();
        let uops = 10_000_000u64;
        let work = IntervalWork::new(uops, uops, uops / 1000 * mem_per_kuop, cpi, 2.0);
        let u600 = timing.upc(&work, Frequency::from_mhz(600));
        let u1500 = timing.upc(&work, Frequency::from_mhz(1500));
        prop_assert!(u600 >= u1500 - 1e-12);
    }

    /// The GPHT's worst case on *any* phase stream is bounded relative to
    /// last value: every GPHT error is either a phase transition (where
    /// last value errs too) or a stale PHT prediction, and staleness is
    /// only ever created by a preceding transition. Hence
    /// `gpht_misses <= 2 * lastvalue_misses + warmup`.
    #[test]
    fn gpht_worst_case_is_bounded_by_last_value(
        seq in proptest::collection::vec(1u8..=6, 50..300),
        depth in 1usize..6,
        entries in 1usize..64,
    ) {
        let stream: Vec<PhaseSample> = seq
            .iter()
            .map(|&p| PhaseSample::new(f64::from(p) * 0.005, PhaseId::new(p)))
            .collect();
        let g = evaluate(
            &mut Gpht::new(GphtConfig { gphr_depth: depth, pht_entries: entries }),
            stream.iter().copied(),
        );
        let l = evaluate(&mut LastValue::new(), stream.iter().copied());
        prop_assert!(
            g.mispredictions() <= 2 * l.mispredictions() + depth as u64,
            "GPHT missed {} vs LastValue {} of {} (depth {depth})",
            g.mispredictions(), l.mispredictions(), g.total
        );
    }

    /// With a single-entry PHT the GPHT degenerates to last value exactly
    /// (the Figure 5 convergence), for any depth and any stream.
    #[test]
    fn single_entry_gpht_equals_last_value(
        seq in proptest::collection::vec(1u8..=6, 1..200),
        depth in 1usize..10,
    ) {
        let mut g = Gpht::new(GphtConfig { gphr_depth: depth, pht_entries: 1 });
        let mut l = LastValue::new();
        let mut diverged = 0u32;
        for &p in &seq {
            let s = PhaseSample::new(0.01, PhaseId::new(p));
            if g.next(s) != l.next(s) {
                diverged += 1;
            }
        }
        // The single PHT entry can only hit when the identical pattern
        // repeats back-to-back, in which case its (just-trained)
        // prediction equals the last value anyway — except transiently
        // right after a transition. Those coincide with LV errors and are
        // rare; the paper observes "almost 100% tag mismatches".
        prop_assert!(
            f64::from(diverged) <= seq.len() as f64 * 0.25,
            "diverged on {diverged}/{} samples",
            seq.len()
        );
    }

    /// GPHT is exactly deterministic and reset() restores a fresh state.
    #[test]
    fn gpht_reset_equals_fresh(
        seq in proptest::collection::vec(1u8..=6, 1..100),
    ) {
        let cfg = GphtConfig { gphr_depth: 4, pht_entries: 16 };
        let mut warm = Gpht::new(cfg);
        for &p in &seq {
            warm.observe(PhaseSample::new(0.01, PhaseId::new(p)));
        }
        warm.reset();
        let mut fresh = Gpht::new(cfg);
        for &p in &seq {
            let a = warm.next(PhaseSample::new(0.01, PhaseId::new(p)));
            let b = fresh.next(PhaseSample::new(0.01, PhaseId::new(p)));
            prop_assert_eq!(a, b);
        }
    }

    /// Whatever the workload mix, a managed run never consumes more
    /// energy than baseline, and baseline is never slower.
    #[test]
    fn managed_runs_trade_time_for_energy(
        bench_idx in 0usize..33,
        len in 30usize..80,
        seed in 0u64..50,
    ) {
        let all = spec::registry();
        let trace = all[bench_idx].clone().with_length(len).generate(seed);
        let platform = PlatformConfig::pentium_m();
        let baseline = Manager::baseline().run(&trace, &platform);
        let managed = Manager::gpht_deployed().run(&trace, &platform);
        prop_assert!(managed.totals.energy_j <= baseline.totals.energy_j * 1.0001);
        prop_assert!(managed.totals.time_s >= baseline.totals.time_s * 0.9999);
    }

    /// Workload generation is seed-deterministic and length-exact for any
    /// benchmark.
    #[test]
    fn workload_generation_contract(
        bench_idx in 0usize..33,
        len in 1usize..200,
        seed in 0u64..1000,
    ) {
        let all = spec::registry();
        let spec = all[bench_idx].clone().with_length(len);
        let a: WorkloadTrace = spec.generate(seed);
        let b = spec.generate(seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
        for w in a.iter() {
            prop_assert!(w.uops > 0);
            prop_assert!(w.mem_uop() >= 0.0);
        }
    }
}
