//! Cross-crate integration tests: workload → platform → governor → DAQ.

use livephase::core::{PhaseMap, PredictionStats};
use livephase::daq::DaqSystem;
use livephase::governor::{Manager, ManagerConfig};
use livephase::pmsim::PlatformConfig;
use livephase::workloads::spec;

/// The full deployed pipeline produces self-consistent numbers on a
/// variable workload.
#[test]
fn full_pipeline_is_self_consistent() {
    let trace = spec::benchmark("applu_in")
        .unwrap()
        .with_length(200)
        .generate(9);
    let platform = PlatformConfig::pentium_m().with_power_trace();
    let report = Manager::gpht_deployed().run(&trace, &platform);

    // Interval accounting sums to the totals, up to the final PMI's own
    // handler execution + DVFS switch, which follow the last record.
    let t: f64 = report.intervals.iter().map(|i| i.duration_s).sum();
    let e: f64 = report.intervals.iter().map(|i| i.energy_j).sum();
    let tail_slack_s = 10e-6 + 50e-6 + 1e-9;
    assert!(report.totals.time_s - t >= -1e-12);
    assert!(report.totals.time_s - t <= tail_slack_s);
    assert!(report.totals.energy_j - e >= -1e-9);
    assert!(
        report.totals.energy_j - e <= tail_slack_s * 15.0,
        "15 W bound"
    );

    // The recorded waveform carries exactly the run's energy and time.
    let wave = report.power_trace.as_ref().unwrap();
    assert!((wave.total_energy_j() - report.totals.energy_j).abs() < 1e-6);
    assert!((wave.total_time_s() - report.totals.time_s).abs() < 1e-9);

    // And the external measurement chain agrees within its noise budget.
    let log = DaqSystem::pentium_m(1).measure(wave);
    let err = (log.total_energy_j() - report.totals.energy_j).abs() / report.totals.energy_j;
    assert!(err < 0.02, "DAQ relative error {err}");
}

/// Every instruction the workload generator emits is retired exactly once,
/// whatever the policy.
#[test]
fn no_work_is_lost_or_duplicated() {
    let trace = spec::benchmark("mgrid_in")
        .unwrap()
        .with_length(97)
        .generate(3);
    let expected_uops: u64 = trace.iter().map(|w| w.uops).sum();
    let expected_instr: u64 = trace.iter().map(|w| w.instructions).sum();
    for manager in [
        Manager::baseline(),
        Manager::reactive(),
        Manager::gpht_deployed(),
    ] {
        let r = manager.run(&trace, &PlatformConfig::pentium_m());
        assert_eq!(r.totals.uops, expected_uops);
        assert_eq!(r.totals.instructions, expected_instr);
    }
}

/// The whole stack is deterministic: same seed, same report.
#[test]
fn stack_is_deterministic() {
    let run = || {
        let trace = spec::benchmark("equake_in")
            .unwrap()
            .with_length(120)
            .generate(5);
        Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m())
    };
    let a = run();
    let b = run();
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.prediction, b.prediction);
    assert_eq!(a.dvfs_transitions, b.dvfs_transitions);
}

/// Management never alters the observed Mem/Uop stream (the DVFS
/// invariance the whole design rests on), even though it changes timing.
#[test]
fn management_does_not_perturb_the_phase_signal() {
    let trace = spec::benchmark("applu_in")
        .unwrap()
        .with_length(150)
        .generate(11);
    let platform = PlatformConfig::pentium_m();
    let baseline = Manager::baseline().run(&trace, &platform);
    let managed = Manager::gpht_deployed().run(&trace, &platform);
    for (b, m) in baseline.intervals.iter().zip(&managed.intervals) {
        assert!(
            (b.mem_uop - m.mem_uop).abs() < 1e-9,
            "interval {}: {} vs {}",
            b.index,
            b.mem_uop,
            m.mem_uop
        );
        assert_eq!(b.phase, m.phase);
    }
}

/// The governor's internal prediction accounting matches an offline
/// evaluation of the same predictor on the same stream.
#[test]
fn online_and_offline_prediction_scores_agree() {
    use livephase::core::{evaluate, Gpht, GphtConfig, PhaseSample};
    let trace = spec::benchmark("bzip2_source")
        .unwrap()
        .with_length(300)
        .generate(2);
    let managed = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());

    let map = PhaseMap::pentium_m();
    let stream = trace
        .iter()
        .map(|w| PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())));
    let offline: PredictionStats = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream);

    assert_eq!(managed.prediction.total, offline.total);
    assert_eq!(managed.prediction.correct, offline.correct);
}

/// Reconfiguring the phase map changes behaviour without touching the
/// rest of the stack (the paper's deployment-time flexibility claim).
#[test]
fn phase_map_reconfiguration_is_isolated() {
    use livephase::core::{Gpht, GphtConfig};
    use livephase::governor::{Proactive, TranslationTable};

    let trace = spec::benchmark("swim_in")
        .unwrap()
        .with_length(80)
        .generate(4);
    let platform = PlatformConfig::pentium_m();

    // Single-phase map: everything is "phase 1" -> setting 0: must behave
    // exactly like the baseline modulo handler overhead.
    let degenerate = Manager::new(
        Box::new(Proactive::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::new(vec![0, 0], 6).unwrap(),
        )),
        ManagerConfig {
            phase_map: PhaseMap::new(vec![1.0]).unwrap(),
            ..ManagerConfig::pentium_m()
        },
    )
    .run(&trace, &platform);
    assert_eq!(degenerate.dvfs_transitions, 0);

    let baseline = Manager::baseline().run(&trace, &platform);
    let ratio = degenerate.totals.time_s / baseline.totals.time_s;
    assert!((ratio - 1.0).abs() < 1e-6, "only handler overhead differs");
}
