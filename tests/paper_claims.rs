//! The paper's headline claims as an executable acceptance suite.
//!
//! Each test quotes one sentence from Isci, Contreras & Martonosi
//! (MICRO 2006) and asserts it end to end on this reproduction, at a
//! reduced scale suitable for `cargo test` (the full-scale equivalents run
//! in `repro-all`).

use livephase::core::{evaluate, Gpht, GphtConfig, LastValue, PhaseMap, PhaseSample};
use livephase::governor::Manager;
use livephase::pmsim::{Frequency, PlatformConfig, TimingModel};
use livephase::workloads::{spec, IpcxMemConfig, IpcxMemSuite};

fn stream(name: &str, len: usize) -> Vec<PhaseSample> {
    let map = PhaseMap::pentium_m();
    spec::benchmark(name)
        .unwrap()
        .with_length(len)
        .generate(42)
        .iter()
        .map(|w| PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())))
        .collect()
}

/// "Our runtime phase prediction methodology achieves above 90% prediction
/// accuracies for many of the experimented benchmarks."
#[test]
fn claim_gpht_exceeds_90_percent_on_many_benchmarks() {
    let mut above = 0;
    for name in ["crafty_in", "swim_in", "gzip_log", "applu_in", "mcf_inp"] {
        let acc = evaluate(&mut Gpht::new(GphtConfig::REFERENCE), stream(name, 800)).accuracy();
        if acc > 0.90 {
            above += 1;
        }
    }
    assert!(above >= 4, "only {above}/5 probes above 90%");
}

/// "For highly variable applications, our approach can reduce
/// mispredictions by more than 6X over commonly-used statistical
/// approaches." (applu is the paper's example.)
#[test]
fn claim_6x_fewer_mispredictions_on_applu() {
    let st = stream("applu_in", 2000);
    let gpht = evaluate(&mut Gpht::new(GphtConfig::REFERENCE), st.iter().copied());
    let lv = evaluate(&mut LastValue::new(), st.iter().copied());
    let reduction = lv.misprediction_rate() / gpht.misprediction_rate().max(1e-9);
    assert!(reduction > 5.0, "reduction {reduction:.1}x");
}

/// "Mem/Uop behavior is virtually invariant to the responses of our
/// dynamic management technique, [while] UPC can fluctuate strongly" —
/// "up to 80% across frequencies" for memory-bound configurations.
#[test]
fn claim_mem_uop_invariant_upc_not() {
    let suite = IpcxMemSuite::pentium_m();
    let timing = TimingModel::pentium_m();
    let level = suite
        .solve(IpcxMemConfig {
            target_upc: 0.1,
            mem_uop: 0.0475,
        })
        .unwrap();
    let work = level.interval(100_000_000, 1.25, level.mem_uop);
    let upc_slow = timing.upc(&work, Frequency::from_mhz(600));
    let upc_fast = timing.upc(&work, Frequency::from_mhz(1500));
    assert!(
        (upc_slow - upc_fast) / upc_fast > 0.7,
        "UPC moved only {:.0}%",
        (upc_slow - upc_fast) / upc_fast * 100.0
    );
    // Mem/Uop is a pure work property: identical at any frequency.
    assert!((work.mem_uop() - 0.0475).abs() < 1e-9);
}

/// "DVFS, guided by these phase predictions, improves the energy-delay
/// product of variable workloads by as much as 34%."
#[test]
fn claim_large_edp_improvements_on_variable_workloads() {
    let trace = spec::benchmark("equake_in")
        .unwrap()
        .with_length(400)
        .generate(42);
    let platform = PlatformConfig::pentium_m();
    let baseline = Manager::baseline().run(&trace, &platform);
    let managed = Manager::gpht_deployed().run(&trace, &platform);
    let edp = managed.compare_to(&baseline).edp_improvement_pct();
    assert!(edp > 25.0, "equake EDP improvement {edp:.1}%");
}

/// "The trivial Q2 applications swim and mcf exhibit above 60% EDP
/// improvements."
#[test]
fn claim_q2_exceeds_60_percent_edp() {
    for name in ["swim_in", "mcf_inp"] {
        let trace = spec::benchmark(name).unwrap().with_length(300).generate(42);
        let platform = PlatformConfig::pentium_m();
        let baseline = Manager::baseline().run(&trace, &platform);
        let managed = Manager::gpht_deployed().run(&trace, &platform);
        let edp = managed.compare_to(&baseline).edp_improvement_pct();
        assert!(edp > 50.0, "{name} EDP improvement {edp:.1}%");
    }
}

/// "Applying dynamic management under the supervision of our on-the-fly
/// phase predictions provides a[n] ... EDP improvement over reactive
/// methods, while inducing comparable or less performance degradations."
#[test]
fn claim_proactive_beats_reactive() {
    let trace = spec::benchmark("applu_in")
        .unwrap()
        .with_length(600)
        .generate(42);
    let platform = PlatformConfig::pentium_m();
    let baseline = Manager::baseline().run(&trace, &platform);
    let reactive = Manager::reactive().run(&trace, &platform);
    let proactive = Manager::gpht_deployed().run(&trace, &platform);
    let r = reactive.compare_to(&baseline);
    let p = proactive.compare_to(&baseline);
    assert!(
        p.edp_improvement_pct() > r.edp_improvement_pct(),
        "proactive {:.1}% vs reactive {:.1}%",
        p.edp_improvement_pct(),
        r.edp_improvement_pct()
    );
    assert!(p.perf_degradation_pct() <= r.perf_degradation_pct() + 1.0);
}

/// "With our new conservative phase definitions, all of these applications
/// experience performance degradations significantly lower than 5%."
#[test]
fn claim_conservative_definitions_bound_degradation() {
    use livephase::governor::ConservativeDerivation;
    let derivation = ConservativeDerivation::pentium_m();
    for name in ["applu_in", "swim_in", "mgrid_in"] {
        let trace = spec::benchmark(name).unwrap().with_length(300).generate(42);
        let platform = PlatformConfig::pentium_m();
        let baseline = Manager::baseline().run(&trace, &platform);
        let conservative = derivation.manager(0.05).run(&trace, &platform);
        let deg = conservative.compare_to(&baseline).perf_degradation_pct();
        assert!(deg < 5.0, "{name} degraded {deg:.1}%");
    }
}

/// "Our 100 million instruction granularity ... guarantees that the
/// overheads induced by interrupt handling and DVFS application ... are
/// essentially invisible to native application execution."
#[test]
fn claim_overheads_are_invisible() {
    let trace = spec::benchmark("applu_in")
        .unwrap()
        .with_length(300)
        .generate(42);
    let platform = PlatformConfig::pentium_m();
    let managed = Manager::gpht_deployed().run(&trace, &platform);
    // Total handler + transition time against total wall time.
    let overhead_s =
        10e-6 * managed.intervals.len() as f64 + 50e-6 * managed.dvfs_transitions as f64;
    let share = overhead_s / managed.totals.time_s;
    assert!(share < 0.001, "overhead share {:.4}%", share * 100.0);
}

/// "After the initial configuration ... all phase prediction and dynamic
/// management actions operate autonomously" — and deterministically, in
/// this reproduction, so results are exactly reproducible.
#[test]
fn claim_deployed_system_is_autonomous_and_reproducible() {
    let run = || {
        let trace = spec::benchmark("bzip2_source")
            .unwrap()
            .with_length(200)
            .generate(9);
        Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.prediction, b.prediction);
}
