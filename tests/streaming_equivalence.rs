//! Golden equivalence of the streaming pipeline.
//!
//! The O(1)-memory interval sources must be indistinguishable — bit for
//! bit — from the materialized traces they replaced, and the parallel
//! Figure 11 sweep must reproduce the sequential loop element for element.

use livephase::experiments::runs::{measure_all, Outcome};
use livephase::governor::{par_map, RunReport, Session};
use livephase::pmsim::PlatformConfig;
use livephase::workloads::{registry, IntervalSource};

const SEED: u64 = 17;

/// Energy, EDP and the phase sequence of two reports must agree exactly
/// (no tolerance: the streaming path executes the same chunks in the same
/// order, so every float is the same float).
fn assert_bit_identical(label: &str, streamed: &RunReport, materialized: &RunReport) {
    assert_eq!(
        streamed.totals.energy_j.to_bits(),
        materialized.totals.energy_j.to_bits(),
        "{label}: energy diverged"
    );
    assert_eq!(
        (streamed.totals.energy_j * streamed.totals.time_s).to_bits(),
        (materialized.totals.energy_j * materialized.totals.time_s).to_bits(),
        "{label}: EDP diverged"
    );
    let phases = |r: &RunReport| r.intervals.iter().map(|i| i.phase).collect::<Vec<_>>();
    assert_eq!(
        phases(streamed),
        phases(materialized),
        "{label}: phase sequence diverged"
    );
    assert_eq!(streamed, materialized, "{label}: report diverged");
}

/// Every registered benchmark, under all three managed systems: running
/// straight off the generator stream equals running the pre-materialized
/// trace.
#[test]
fn streaming_matches_materialized_for_all_benchmarks() {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let specs = registry();
    assert_eq!(specs.len(), 33);
    par_map(&specs, |spec| {
        let trace = spec.generate(SEED);
        assert_eq!(
            spec.stream(SEED).collect_trace().intervals(),
            trace.intervals(),
            "{}: stream() and generate() diverged",
            spec.name()
        );
        for (system, streamed, materialized) in [
            (
                "baseline",
                session.baseline(spec.stream(SEED)),
                session.baseline(&trace),
            ),
            (
                "reactive",
                session.reactive(spec.stream(SEED)),
                session.reactive(&trace),
            ),
            (
                "gpht",
                session.gpht(spec.stream(SEED)),
                session.gpht(&trace),
            ),
        ] {
            let label = format!("{}/{system}", spec.name());
            assert_bit_identical(&label, &streamed, &materialized);
        }
    });
}

/// The parallel Figure 11 sweep returns exactly what the sequential loop
/// returns, in registry order.
#[test]
fn parallel_figure11_sweep_equals_sequential() {
    let parallel = measure_all(SEED);
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let specs = registry();
    let sequential: Vec<Outcome> = specs
        .iter()
        .map(|spec| Outcome::measure_in(&session, spec, SEED))
        .collect();
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.name, s.name);
        assert_bit_identical(&format!("{}/baseline", p.name), &p.baseline, &s.baseline);
        assert_bit_identical(&format!("{}/reactive", p.name), &p.reactive, &s.reactive);
        assert_bit_identical(&format!("{}/gpht", p.name), &p.gpht, &s.gpht);
    }
}
