//! Predictor showdown: every phase predictor of the paper on a benchmark
//! of your choice.
//!
//! ```bash
//! cargo run --release --example predictor_showdown [benchmark] [seed]
//! # e.g.
//! cargo run --release --example predictor_showdown equake_in 7
//! ```
//!
//! Prints the Figure 4 line-up (last value, fixed windows, variable
//! windows, GPHT) plus a few extra configurations, ranked by accuracy.

use livephase::core::{
    evaluate, FixedWindow, Gpht, GphtConfig, HashedGpht, HashedGphtConfig, LastValue,
    MarkovPredictor, PhaseMap, PhaseSample, Predictor, Selector, VariableWindow,
};
use livephase::workloads::spec;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "applu_in".into());
    let seed: u64 = std::env::args()
        .nth(2)
        .map_or(42, |s| s.parse().expect("seed must be an integer"));

    let Some(bench) = spec::benchmark(&name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for b in spec::registry() {
            eprintln!("  {}", b.name());
        }
        std::process::exit(2);
    };

    let trace = bench.generate(seed);
    let map = PhaseMap::pentium_m();
    let stream: Vec<PhaseSample> = trace
        .iter()
        .map(|w| PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())))
        .collect();
    let stats = trace.characterize();
    println!(
        "{name}: {} intervals, mean Mem/Uop {:.4}, variation {:.1}% ({})\n",
        trace.len(),
        stats.mean_mem_uop,
        stats.sample_variation_pct,
        bench.quadrant()
    );

    // The paper's line-up plus extra selector / sizing variants.
    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(LastValue::new()),
        Box::new(MarkovPredictor::new()),
        Box::new(HashedGpht::new(HashedGphtConfig::DEPLOYED)),
        Box::new(FixedWindow::new(8, Selector::Majority)),
        Box::new(FixedWindow::new(128, Selector::Majority)),
        Box::new(FixedWindow::new(8, Selector::Mean)),
        Box::new(FixedWindow::new(8, Selector::Ema { alpha: 0.5 })),
        Box::new(VariableWindow::new(128, 0.005)),
        Box::new(VariableWindow::new(128, 0.030)),
        Box::new(Gpht::new(GphtConfig::REFERENCE)),
        Box::new(Gpht::new(GphtConfig::DEPLOYED)),
        Box::new(Gpht::new(GphtConfig {
            gphr_depth: 4,
            pht_entries: 128,
        })),
        Box::new(Gpht::new(GphtConfig {
            gphr_depth: 16,
            pht_entries: 128,
        })),
    ];

    let mut ranked: Vec<(String, f64)> = predictors
        .iter_mut()
        .map(|p| {
            let s = evaluate(p.as_mut(), stream.iter().copied());
            (p.name(), s.accuracy())
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("{:<24} accuracy", "predictor");
    println!("{}", "-".repeat(36));
    for (name, acc) in &ranked {
        let bar = "#".repeat((acc * 40.0) as usize);
        println!("{name:<24} {:>5.1}%  {bar}", acc * 100.0);
    }
}
