//! Replay a recorded counter log: export a trace to CSV, re-import it, and
//! govern the replayed execution.
//!
//! ```bash
//! cargo run --release --example replay_trace
//! ```
//!
//! A real deployment of this library would monitor live PMCs; offline
//! analysis replays their logs. This example shows the round trip: a
//! per-interval CSV (the shape a PMC logger produces) drives the exact
//! same prediction/management pipeline as a live run.

use livephase::governor::Manager;
use livephase::pmsim::PlatformConfig;
use livephase::workloads::{from_csv, spec, to_csv};

fn main() {
    // Pretend this CSV came from a real monitoring session.
    let recorded = spec::benchmark("mgrid_in")
        .expect("registered")
        .with_length(200)
        .generate(7);
    let csv = to_csv(&recorded);
    println!(
        "exported {} intervals to CSV ({} bytes); first rows:\n{}",
        recorded.len(),
        csv.len(),
        csv.lines().take(4).collect::<Vec<_>>().join("\n")
    );

    // ...and replay it through the managed pipeline.
    let replayed = from_csv("mgrid_replay", &csv).expect("well-formed CSV");
    assert_eq!(recorded.intervals(), replayed.intervals());

    let platform = PlatformConfig::pentium_m();
    let baseline = Manager::baseline().run(&replayed, &platform);
    let managed = Manager::gpht_deployed().run(&replayed, &platform);
    let cmp = managed.compare_to(&baseline);
    println!(
        "\nreplayed under GPHT management: accuracy {:.1}%, EDP improvement \
         {:.1}%, degradation {:.1}%",
        managed.prediction.accuracy() * 100.0,
        cmp.edp_improvement_pct(),
        cmp.perf_degradation_pct()
    );
    assert!(cmp.edp_improvement_pct() > 0.0);
}
