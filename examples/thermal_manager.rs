//! Beyond DVFS-for-energy: the same phase predictions driving dynamic
//! thermal management and power capping (the paper's Section 8 claims).
//!
//! ```bash
//! cargo run --release --example thermal_manager
//! ```

use livephase::core::{Gpht, GphtConfig};
use livephase::governor::{
    Manager, ManagerConfig, PowerCap, PowerEstimator, ThermalAware, TranslationTable,
};
use livephase::pmsim::{PlatformConfig, ThermalModel};
use livephase::workloads::spec;

fn main() {
    // A hot, CPU-bound workload: crafty never earns a slow setting from
    // the energy mapping, so it runs flat out and heats up.
    let trace = spec::benchmark("crafty_in")
        .expect("registered")
        .with_length(700)
        .generate(42);
    let platform = PlatformConfig::pentium_m();
    let thermal_cfg = ManagerConfig {
        thermal: Some(ThermalModel::pentium_m()),
        ..ManagerConfig::pentium_m()
    };

    let unmanaged = Manager::new(
        Box::new(livephase::governor::Baseline::new()),
        thermal_cfg.clone(),
    )
    .run(&trace, &platform);

    let limit_c = 65.0;
    let dtm = Manager::new(
        Box::new(ThermalAware::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
            PowerEstimator::pentium_m(),
            ThermalModel::pentium_m(),
            limit_c,
        )),
        thermal_cfg.clone(),
    )
    .run(&trace, &platform);

    let cap_w = 7.0;
    let capped = Manager::new(
        Box::new(PowerCap::new(
            Gpht::new(GphtConfig::DEPLOYED),
            PowerEstimator::pentium_m(),
            cap_w,
        )),
        thermal_cfg,
    )
    .run(&trace, &platform);

    println!(
        "{:<26} {:>9} {:>10} {:>7}",
        "system", "peak T", "avg power", "BIPS"
    );
    println!("{}", "-".repeat(56));
    for (label, r) in [
        ("unmanaged", &unmanaged),
        ("thermal-aware (65 C)", &dtm),
        ("power cap (7 W)", &capped),
    ] {
        println!(
            "{:<26} {:>7.1} C {:>8.2} W {:>7.2}",
            label,
            r.peak_temperature_c.expect("thermal tracked"),
            r.average_power_w(),
            r.bips()
        );
    }

    assert!(unmanaged.peak_temperature_c.unwrap() > limit_c);
    assert!(dtm.peak_temperature_c.unwrap() <= limit_c + 0.5);
    assert!(capped.average_power_w() <= cap_w * 1.02);
    println!("\nthermal limit and power cap both respected by prediction-guided management");
}
