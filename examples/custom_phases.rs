//! Reconfiguring the deployed system: user-defined phase maps and
//! performance-bounded management (the paper's Section 6.3).
//!
//! ```bash
//! cargo run --release --example custom_phases
//! ```
//!
//! Shows the framework's versatility claim: the same GPHT predictor and
//! manager run under (a) the paper's Table 1/2 definitions, (b) a custom
//! coarse two-phase definition, and (c) definitions *derived* to bound
//! worst-case slowdown by 5 % — all reconfigured without touching the
//! predictor or the platform.

use livephase::core::{Gpht, GphtConfig, PhaseMap};
use livephase::governor::{
    ConservativeDerivation, Manager, ManagerConfig, Proactive, TranslationTable,
};
use livephase::pmsim::PlatformConfig;
use livephase::workloads::spec;

fn main() {
    let bench = spec::benchmark("equake_in").expect("registered");
    let trace = bench.with_length(400).generate(42);
    let platform = PlatformConfig::pentium_m();
    let baseline = Manager::baseline().run(&trace, &platform);

    // (a) The paper's deployed configuration.
    let table12 = Manager::gpht_deployed().run(&trace, &platform);

    // (b) A custom, coarse definition: "CPU-ish" vs "memory-ish" at
    //     0.02 Mem/Uop, mapped to 1500 MHz / 800 MHz.
    let coarse_map = PhaseMap::new(vec![0.02]).expect("one boundary");
    let coarse_table = TranslationTable::new(vec![0, 4], 6).expect("valid");
    let coarse = Manager::new(
        Box::new(Proactive::new(
            Gpht::new(GphtConfig::DEPLOYED),
            coarse_table,
        )),
        ManagerConfig {
            phase_map: coarse_map,
            ..ManagerConfig::pentium_m()
        },
    )
    .run(&trace, &platform);

    // (c) Conservative definitions derived from the IPCxMEM
    //     characterization to bound slowdown by 5 %.
    let derivation = ConservativeDerivation::pentium_m();
    let (cons_map, cons_table) = derivation.derive(0.05);
    println!(
        "derived conservative boundaries: {:?}\nderived setting map: {:?}\n",
        cons_map.boundaries(),
        cons_table.settings()
    );
    let conservative = derivation.manager(0.05).run(&trace, &platform);

    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "configuration", "EDP gain", "slowdown", "avg power"
    );
    println!("{}", "-".repeat(64));
    for (label, report) in [
        ("Table 1/2 (paper default)", &table12),
        ("coarse 2-phase custom map", &coarse),
        ("conservative (<=5% bound)", &conservative),
    ] {
        let c = report.compare_to(&baseline);
        println!(
            "{label:<28} {:>9.1}% {:>9.1}% {:>10.2} W",
            c.edp_improvement_pct(),
            c.perf_degradation_pct(),
            report.average_power_w()
        );
    }

    let c = conservative.compare_to(&baseline);
    assert!(
        c.perf_degradation_pct() < 5.0,
        "the conservative configuration must respect its bound"
    );
    println!(
        "\nconservative bound respected: {:.1}% < 5%",
        c.perf_degradation_pct()
    );
}
