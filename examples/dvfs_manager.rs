//! Full deployed-system demo: GPHT-guided DVFS with external power
//! measurement through the simulated DAQ rig (the paper's Figure 9 setup).
//!
//! ```bash
//! cargo run --release --example dvfs_manager [benchmark]
//! ```
//!
//! Runs the benchmark baseline vs managed with waveform recording, pushes
//! both analog waveforms through the sense-resistor + conditioning + 40 µs
//! sampler chain, and prints a per-interval excerpt in the style of the
//! paper's Figure 10, followed by whole-run numbers from both the ground
//! truth and the measurement path.

use livephase::daq::DaqSystem;
use livephase::governor::Manager;
use livephase::pmsim::PlatformConfig;
use livephase::workloads::spec;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "applu_in".into());
    let bench = spec::benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?} — try `applu_in`, `swim_in`, `mcf_inp`");
        std::process::exit(2);
    });
    // Keep the DAQ stream small enough for a demo: 300 intervals ≈ 30 s of
    // simulated execution ≈ 750k DAQ samples.
    let trace = bench.with_length(300).generate(42);

    let platform = PlatformConfig::pentium_m().with_power_trace();
    println!("running {name} baseline ...");
    let baseline = Manager::baseline().run(&trace, &platform);
    println!("running {name} under GPHT-guided DVFS ...");
    let managed = Manager::gpht_deployed().run(&trace, &platform);

    println!("measuring both runs through the DAQ chain (40 us sampling) ...");
    let daq = DaqSystem::pentium_m(42);
    let base_log = daq.measure(baseline.power_trace.as_ref().expect("recorded"));
    let mgd_log = daq.measure(managed.power_trace.as_ref().expect("recorded"));

    println!("\ninterval  phase  pred   f[idx]  P_base[W]  P_gpht[W]");
    println!("{}", "-".repeat(56));
    for i in (trace.len() - 24)..trace.len() {
        let b = &baseline.intervals[i];
        let m = &managed.intervals[i];
        println!(
            "{i:>8}  {:>5}  {:>4}  {:>6}  {:>9.2}  {:>9.2}",
            m.phase,
            m.predicted.map_or_else(|| "-".into(), |p| p.to_string()),
            m.dvfs_index,
            b.power_w(),
            m.power_w(),
        );
    }

    let cmp = managed.compare_to(&baseline);
    println!("\nwhole-run (ground truth / DAQ-measured):");
    println!(
        "  baseline power: {:.2} W / {:.2} W",
        baseline.average_power_w(),
        base_log.average_power_w()
    );
    println!(
        "  managed  power: {:.2} W / {:.2} W",
        managed.average_power_w(),
        mgd_log.average_power_w()
    );
    println!(
        "  DAQ samples: {} baseline, {} managed ({} phases attributed)",
        base_log.samples_taken(),
        mgd_log.samples_taken(),
        mgd_log.phases().len()
    );
    println!(
        "  EDP improvement {:.1}% | degradation {:.1}% | prediction accuracy {:.1}%",
        cmp.edp_improvement_pct(),
        cmp.perf_degradation_pct(),
        managed.prediction.accuracy() * 100.0
    );
}
