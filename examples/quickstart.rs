//! Quickstart: monitor, classify, predict, and govern one workload.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper on the `applu` benchmark — the
//! highly variable workload its Figure 2 uses as the running example:
//!
//! 1. pick the workload (generated lazily, one interval at a time);
//! 2. run it unmanaged (baseline, always 1500 MHz);
//! 3. run it under GPHT-guided DVFS (the deployed system);
//! 4. compare power, performance and energy-delay product.

use livephase::governor::Session;
use livephase::pmsim::PlatformConfig;
use livephase::workloads::spec;

fn main() {
    // 1. A calibrated SPEC CPU2000 stand-in: 500 sampling intervals of
    //    100 M uops each, deterministic for a given seed. `stream(seed)`
    //    feeds the platform interval-by-interval — the workload is never
    //    materialized (`generate(seed)` still returns the whole trace
    //    when you want to inspect it).
    let applu = spec::benchmark("applu_in")
        .expect("applu_in ships with the workload registry")
        .with_length(500);
    println!(
        "workload: {} ({} intervals, mean Mem/Uop {:.4})",
        applu.name(),
        500,
        applu.generate(42).characterize().mean_mem_uop
    );

    // 2. Baseline: the unmanaged system. A Session borrows the platform
    //    once and runs any number of workloads on it.
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let baseline = session.baseline(applu.stream(42));

    // 3. The paper's deployed system: GPHT(8, 128) predictions drive the
    //    Table 2 phase -> DVFS translation inside the PMI handler.
    let managed = session.gpht(applu.stream(42));

    // 4. Compare.
    let cmp = managed.compare_to(&baseline);
    println!("\n                      baseline     GPHT-managed");
    println!(
        "time          [s]   {:>10.3}   {:>12.3}",
        baseline.totals.time_s, managed.totals.time_s
    );
    println!(
        "energy        [J]   {:>10.1}   {:>12.1}",
        baseline.totals.energy_j, managed.totals.energy_j
    );
    println!(
        "avg power     [W]   {:>10.2}   {:>12.2}",
        baseline.average_power_w(),
        managed.average_power_w()
    );
    println!(
        "BIPS                {:>10.2}   {:>12.2}",
        baseline.bips(),
        managed.bips()
    );
    println!(
        "\nGPHT accuracy: {:.1}%  |  DVFS transitions: {}",
        managed.prediction.accuracy() * 100.0,
        managed.dvfs_transitions
    );
    println!(
        "EDP improvement: {:.1}%  at {:.1}% performance degradation",
        cmp.edp_improvement_pct(),
        cmp.perf_degradation_pct()
    );

    assert!(
        cmp.edp_improvement_pct() > 0.0,
        "managed applu must improve EDP"
    );
}
