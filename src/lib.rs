//! # livephase
//!
//! A full-system Rust reproduction of Isci, Contreras & Martonosi,
//! *"Live, Runtime Phase Monitoring and Prediction on Real Systems with
//! Application to Dynamic Power Management"* (MICRO-39, 2006).
//!
//! This façade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`core`] — phase classification (Table 1) and the phase predictors:
//!   the Global Phase History Table (GPHT) and the statistical baselines.
//! * [`pmsim`] — the Pentium-M-like platform simulator: timing and power
//!   models, performance counters, PMI, and the SpeedStep DVFS interface.
//! * [`workloads`] — SPEC CPU2000-like synthetic workload generators and
//!   the IPCxMEM characterization suite.
//! * [`daq`] — the simulated data-acquisition power-measurement rig.
//! * [`engine`] — the batched [`DecisionEngine`](engine::DecisionEngine):
//!   classification, per-pid prediction, scoring, and phase→operating-point
//!   translation behind one API, shared by the governor, the serve shards,
//!   and the experiment harness.
//! * [`governor`] — the phase-prediction-guided DVFS management loop.
//! * [`experiments`] — drivers regenerating every table and figure of the
//!   paper.
//! * [`serve`] — phase prediction as a sharded TCP service: wire
//!   protocol, session engine, server, client and load generator.
//! * [`telemetry`] — zero-dependency observability: process-global
//!   metrics registry with Prometheus-style exposition and leveled
//!   structured tracing.
//! * [`lint`] — the workspace invariant linter: panic-freedom and
//!   determinism on the decision path, `SAFETY:` discipline, telemetry
//!   naming, and wire-tag uniqueness, checked over a hand-rolled token
//!   stream and gated in CI.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! paper-to-crate mapping.

pub use livephase_core as core;
pub use livephase_daq as daq;
pub use livephase_engine as engine;
pub use livephase_experiments as experiments;
pub use livephase_governor as governor;
pub use livephase_lint as lint;
pub use livephase_pmsim as pmsim;
pub use livephase_serve as serve;
pub use livephase_telemetry as telemetry;
pub use livephase_tenants as tenants;
pub use livephase_workloads as workloads;
