#!/usr/bin/env bash
# CI gate: formatting, lints, then the tier-1 build + test cycle.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
