#!/usr/bin/env bash
# CI gate: formatting, lints, then the tier-1 build + test cycle.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Loopback smoke test: a real server process, a real load generator, and a
# bit-exactness check against the in-process manager.
cli=target/release/livephase-cli
"$cli" serve --port 0 --shards 2 --exit-after-conns 1 --read-timeout-ms 2000 \
    > serve_smoke.log &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f serve_smoke.log' EXIT
for _ in $(seq 50); do
    grep -q '^listening on ' serve_smoke.log && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' serve_smoke.log)
[ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
bench_out=$("$cli" serve-bench "$addr" --conns 1 --bench swim_in --length 60 --window 16)
echo "$bench_out"
echo "$bench_out" | grep -q 'decisions 60' || { echo "smoke: expected 60 decisions"; exit 1; }
echo "$bench_out" | grep -q '1/1 benchmarks bit-exact' || { echo "smoke: divergence"; exit 1; }
wait "$serve_pid" || { echo "smoke: serve exited non-zero"; exit 1; }
grep -q 'served 1 connections' serve_smoke.log || { echo "smoke: bad serve summary"; exit 1; }
rm -f serve_smoke.log
echo "serve loopback smoke test passed"
