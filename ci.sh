#!/usr/bin/env bash
# CI gate: formatting, lints, then the tier-1 build + test cycle.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# The decision path must not be able to panic on malformed input: every
# decision-path crate carries #![warn(clippy::unwrap_used,
# clippy::expect_used)] on non-test code; -D warnings makes that a gate.
cargo clippy -p livephase-core -p livephase-engine -p livephase-serve \
    -p livephase-governor -p livephase-pmsim -p livephase-tenants \
    -p livephase-telemetry --lib -- -D warnings
# The bench harness is not a decision crate (it may expect/unwrap), but
# it gates CI, so it holds the ordinary warning bar across all targets.
cargo clippy -p livephase-bench --all-targets -- -D warnings
# --workspace: the root façade package alone would skip the member
# crates (and leave target/release/livephase-cli stale for the smoke
# test below).
cargo build --release --workspace

# Workspace invariant linter (crates/lint): panic-freedom and
# determinism (local and interprocedural, over the call graph), SAFETY
# comments, telemetry naming, wire-tag uniqueness/dispatch, CLI-flag and
# metric-name doc consistency. Exit-code contract: 0 = clean, 1 =
# findings (report on stdout), 2 = operational error (message on
# stderr) — so a failure here is a genuine finding, never a broken tool
# hiding behind the same status. The committed baseline records accepted
# debt: a finding it lists is reported but does not gate, so CI fails on
# *regressions* without freezing history.
target/release/livephase-cli lint --baseline results/lint/baseline.json
# The JSON surface is what dashboards consume; make sure it stays
# parseable and agrees that the tree is clean. (Captured, not piped:
# grep -q closing the pipe early would SIGPIPE the CLI mid-print.)
lint_json=$(target/release/livephase-cli lint --json --baseline results/lint/baseline.json)
echo "$lint_json" | grep -q '"findings": 0' \
    || { echo "lint --json disagrees with the text report"; exit 1; }

cargo test -q --workspace
# The engine-equivalence bar explicitly: the governor, the serve shards,
# and the raw engine must emit bit-identical decision streams. (Also part
# of the workspace run above; named here so a failure reads as what it is.)
cargo test -q --test engine_equivalence

# Loopback smoke test: a real server process, a real load generator, a
# bit-exactness check against the in-process manager, and a telemetry
# scrape over the same wire protocol.
cli=target/release/livephase-cli
"$cli" serve --port 0 --shards 2 --exit-after-conns 2 --read-timeout-ms 2000 \
    > serve_smoke.log &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f serve_smoke.log' EXIT
for _ in $(seq 50); do
    grep -q '^listening on ' serve_smoke.log && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' serve_smoke.log)
[ -n "$addr" ] || { echo "serve never announced its address"; exit 1; }
bench_out=$("$cli" serve-bench "$addr" --conns 1 --bench swim_in --length 60 --window 16)
echo "$bench_out"
echo "$bench_out" | grep -q 'decisions 60' || { echo "smoke: expected 60 decisions"; exit 1; }
echo "$bench_out" | grep -q '1/1 benchmarks bit-exact' || { echo "smoke: divergence"; exit 1; }

# Scrape the exposition the bench traffic produced (second connection).
metrics_out=$("$cli" metrics "$addr")
echo "$metrics_out" | grep -q '^# TYPE serve_connections_total counter' \
    || { echo "smoke: serve_connections_total missing from scrape"; exit 1; }
conns=$(echo "$metrics_out" | sed -n 's/^serve_connections_total //p')
[ -n "$conns" ] && [ "$conns" -ge 1 ] \
    || { echo "smoke: serve_connections_total is absent or zero"; exit 1; }
echo "$metrics_out" | grep -q '^serve_frame_decode_us_bucket{' \
    || { echo "smoke: frame-latency histogram missing from scrape"; exit 1; }
echo "$metrics_out" | grep -q '^governor_decisions_total ' \
    || { echo "smoke: governor decision counter missing from scrape"; exit 1; }
# The power gauge is set from the last flushed decision, priced at the
# configured backend's worst-case bound; the bench traffic above decided
# on at least one shard, so some shard's gauge must be positive.
echo "$metrics_out" | grep -q '^serve_power_estimate_mw{' \
    || { echo "smoke: power-estimate gauge missing from scrape"; exit 1; }
echo "$metrics_out" | sed -n 's/^serve_power_estimate_mw{[^}]*} //p' | grep -qv '^0$' \
    || { echo "smoke: no shard priced its last decision"; exit 1; }

wait "$serve_pid" || { echo "smoke: serve exited non-zero"; exit 1; }
grep -q 'served 2 connections' serve_smoke.log || { echo "smoke: bad serve summary"; exit 1; }
rm -f serve_smoke.log
echo "serve loopback smoke test passed"

# Multi-tenant smoke gate: a small cluster scenario under a binding
# power cap must run deterministically (identical cluster decision
# digests across two runs) and export the arbiter's grant/denial
# telemetry. The digest covers every tenant's sample and decision
# stream, so this also pins counter virtualization end to end.
tenants_args="--tenants 6 --cores 2 --budget 20 --noisy 1 --length 6"
tenants_a=$("$cli" tenants $tenants_args --metrics)
tenants_b=$("$cli" tenants $tenants_args)
digest_a=$(echo "$tenants_a" | sed -n 's/^cluster decision digest //p')
digest_b=$(echo "$tenants_b" | sed -n 's/^cluster decision digest //p')
[ -n "$digest_a" ] || { echo "tenants: no cluster decision digest in output"; exit 1; }
[ "$digest_a" = "$digest_b" ] \
    || { echo "tenants: digests diverged across identical runs ($digest_a vs $digest_b)"; exit 1; }
echo "$tenants_a" | grep -q '^# TYPE tenants_arbiter_grants_total counter' \
    || { echo "tenants: arbiter grant counter missing from telemetry"; exit 1; }
echo "$tenants_a" | grep -q '^tenants_arbiter_denials_total{' \
    || { echo "tenants: a 20 W budget over 2 cores must deny someone"; exit 1; }
echo "$tenants_a" | grep -q '^tenants_context_switches_total ' \
    || { echo "tenants: context-switch counter missing from telemetry"; exit 1; }
echo "tenants smoke gate passed (digest $digest_a)"

# Reactor scale gate: 5000 concurrent connections through the epoll
# reactor, every stream held open at once and bit-exact against the
# in-process manager. Each side (server, load generator) needs one fd
# per connection plus headroom, so skip — loudly — where the fd limit
# cannot carry it rather than fail on an environment constraint.
REACTOR_GATE_CONNS=5000
nofile=$(ulimit -n)
if [ "$nofile" != "unlimited" ] && [ "$nofile" -lt $((REACTOR_GATE_CONNS + 200)) ]; then
    echo "SKIP reactor scale gate: ulimit -n is $nofile," \
         "need >= $((REACTOR_GATE_CONNS + 200)) to hold $REACTOR_GATE_CONNS" \
         "connections per process (raise with 'ulimit -n 8192')"
else
    "$cli" serve --port 0 --shards 2 --max-conns $((REACTOR_GATE_CONNS + 100)) \
        --read-timeout-ms 60000 --exit-after-conns "$REACTOR_GATE_CONNS" \
        > serve_scale.log &
    scale_pid=$!
    trap 'kill "$scale_pid" 2>/dev/null || true; rm -f serve_smoke.log serve_scale.log' EXIT
    for _ in $(seq 50); do
        grep -q '^listening on ' serve_scale.log && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' serve_scale.log)
    [ -n "$addr" ] || { echo "scale: serve never announced its address"; exit 1; }
    scale_out=$("$cli" serve-bench "$addr" --conns "$REACTOR_GATE_CONNS" --reactor \
        --length 8 --window 16 --read-timeout-ms 60000)
    echo "$scale_out"
    echo "$scale_out" | grep -q "concurrent connections peak $REACTOR_GATE_CONNS" \
        || { echo "scale: not every connection was held open concurrently"; exit 1; }
    echo "$scale_out" | grep -q "$REACTOR_GATE_CONNS/$REACTOR_GATE_CONNS benchmarks bit-exact" \
        || { echo "scale: served decisions diverged at scale"; exit 1; }
    wait "$scale_pid" || { echo "scale: serve exited non-zero"; exit 1; }
    rm -f serve_scale.log
    echo "reactor scale gate passed ($REACTOR_GATE_CONNS connections)"
fi

# Calibrated bench gate: every registered hot path must stay within a
# multiple of its committed expected ratio to the machine's own
# calibration baseline — no hardcoded milliseconds, so the gate gives
# the same verdict on a fast laptop and a slow CI runner. When the
# calibration is too noisy to trust, the harness prints a loud
# `bench gate: SKIP` and exits 0 rather than issue a meaningless
# verdict. LIVEPHASE_BENCH_STRICT=1 tightens the headroom from 5x to
# 2x for quiet machines. (Captured, not piped: grep -q closing the
# pipe early would SIGPIPE the CLI mid-print.)
bench_multiplier=5.0
if [ "${LIVEPHASE_BENCH_STRICT:-0}" = "1" ]; then
    bench_multiplier=2.0
fi
bench_out=$("$cli" bench --gate --multiplier "$bench_multiplier" --json --out results/bench/ci-latest) \
    || { echo "$bench_out"; echo "bench gate: calibrated thresholds exceeded"; exit 1; }
echo "$bench_out"
echo "$bench_out" | grep -Eq 'bench gate: (PASS|SKIP)' \
    || { echo "bench gate: no verdict in output"; exit 1; }
echo "$bench_out" | grep -q 'wrote results/bench/ci-latest/BENCH_engine_step_many.json' \
    || { echo "bench gate: BENCH_*.json records were not written"; exit 1; }
echo "$bench_out" | grep -q 'wrote results/bench/ci-latest/BENCH_power_model_eval.json' \
    || { echo "bench gate: the power_model_eval record was not written"; exit 1; }

# Power-model zoo gate. Three claims, each enforced by exit codes and
# byte-level diffs rather than eyeballs:
#   1. The analytic backend is the bit-identical default: routing a
#      published artifact through `--power-model analytic` must produce
#      byte-identical output (the trait refactor changed no numbers).
#   2. `power-zoo` holds its train/validate gates — each learned backend
#      beats the naive frequency-only baseline and stays under the
#      committed held-out MAPE threshold (exit 1 on violation).
#   3. The zoo is deterministic: two runs at the same seed are
#      byte-identical, coefficients included.
repro_default=$("$cli" repro power_cap)
repro_analytic=$("$cli" repro power_cap --power-model analytic)
[ "$repro_default" = "$repro_analytic" ] \
    || { echo "power zoo: --power-model analytic changed repro power_cap output"; exit 1; }
table2_default=$("$cli" repro table2)
table2_analytic=$("$cli" repro table2 --power-model analytic)
[ "$table2_default" = "$table2_analytic" ] \
    || { echo "power zoo: --power-model analytic changed repro table2 output"; exit 1; }
zoo_a=$("$cli" power-zoo) \
    || { echo "$zoo_a"; echo "power zoo: train/validate gates failed"; exit 1; }
zoo_b=$("$cli" power-zoo)
[ "$zoo_a" = "$zoo_b" ] \
    || { echo "power zoo: output diverged across identical runs"; exit 1; }
echo "$zoo_a" | grep -q 'held-out' \
    || { echo "power zoo: no held-out validation table in output"; exit 1; }
echo "power-model zoo gate passed"

# Bench trend diff: the committed before/after snapshot pair must keep
# parsing and rendering (the diff itself legitimately flags regressions
# in that historical pair, so only exit 2 — operational failure — is
# fatal here).
compare_out=$("$cli" bench --compare results/bench/2026-08-07-pre-opt results/bench/2026-08-07-post-opt) \
    || [ $? -eq 1 ] || { echo "bench --compare: operational failure"; exit 1; }
echo "bench snapshot diff parsed"
