//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the *small* subset of the `rand 0.8` API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256++
//! seeded through SplitMix64 — a high-quality, fully deterministic stream,
//! which is all the workspace requires (every consumer seeds explicitly
//! and never relies on bit-compatibility with upstream `rand`).
//!
//! This is a deterministic simulation/test dependency, **not** a source of
//! cryptographic randomness.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type
    /// (uniform in `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable with their standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + frac * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + frac * (end - start)
    }
}

/// Debiased modular reduction for integer ranges (span must be non-zero).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top zone to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded via SplitMix64. Not the upstream algorithm (ChaCha12), but
    /// every consumer in this workspace seeds explicitly and only relies
    /// on *internal* determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // the xoshiro authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen::<f64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_inclusively() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1u8..=6);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces seen");
    }

    #[test]
    fn scaled_float_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }
}
