//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset this workspace uses: range strategies,
//! tuples, `Just`, `prop_map`, `prop_oneof!`, `collection::vec`,
//! `sample::subsequence`, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//! - **No shrinking.** A failing case panics with the sampled inputs via
//!   the normal assert message; there is no minimization pass.
//! - **Deterministic scheduling.** Each `proptest!` test derives its RNG
//!   seed from the test's name, so failures reproduce exactly across runs
//!   without a persistence file (`.proptest-regressions` files are ignored).

#![forbid(unsafe_code)]

use rand::Rng;

/// Number of cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG driving a property test; seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, the same construction the workspace uses for
            // per-benchmark seed derivation.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A generator of test values.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in samples values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { source: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Combinator strategies.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::Rng;

    pub use super::{BoxedStrategy as Boxed, Just};

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy for `Vec`s of values from `element` with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over existing collections.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// A strategy yielding order-preserving subsequences of a source vector.
    pub struct Subsequence<T: Clone> {
        source: Vec<T>,
        size: SizeRange,
    }

    /// Picks a subsequence of `source` (order preserved) with a length
    /// drawn from `size`.
    pub fn subsequence<T: Clone>(source: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            source,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.source.len();
            let k = self.size.sample(rng).min(n);
            // Selection sampling (Knuth algorithm S): each element is kept
            // with probability (still needed) / (still available), which
            // yields a uniform k-subset in source order.
            let mut out = Vec::with_capacity(k);
            let mut needed = k;
            for (i, item) in self.source.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let available = n - i;
                if rng.gen_range(0..available) < needed {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }
}

/// Runs each property once per case with inputs drawn from the given
/// strategies. Failures panic with the standard assert message; there is
/// no shrinking pass.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    // The closure gives `prop_assume!`'s `return` a case to
                    // skip instead of ending the whole test.
                    let mut __body = || $body;
                    __body();
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// The commonly-used exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Union;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}
