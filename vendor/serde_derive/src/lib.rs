//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never actually serializes anything in tier-1 paths (no serde_json or
//! other format crate is available offline). These derive macros accept
//! the full derive syntax — including `#[serde(...)]` field attributes —
//! and expand to nothing; the sibling `serde` stub provides blanket trait
//! impls so bounds like `T: Serialize` still hold.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
