//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! It keeps the `criterion_group!`/`criterion_main!` structure and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` API surface, but instead of
//! statistical sampling it runs each benchmark a handful of iterations and
//! prints a single coarse per-iteration time. That keeps `cargo bench`
//! compiling and useful as a smoke test without the statistics stack
//! (which needs crates unavailable offline).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark: enough to exercise the code path, few enough
/// to keep `cargo bench` fast.
const ITERATIONS: u32 = 3;

/// Measured throughput label for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted anywhere a bench is named.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed_per_iter_s: f64,
}

impl Bencher {
    /// Runs `routine` a few times and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.elapsed_per_iter_s = start.elapsed().as_secs_f64() / f64::from(ITERATIONS);
    }
}

fn run_one(path: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed_per_iter_s: 0.0,
    };
    f(&mut bencher);
    println!(
        "bench {path:<50} {:>12.3} ms/iter",
        bencher.elapsed_per_iter_s * 1e3
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&path, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.id);
        run_one(&path, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Accepted for API compatibility with `criterion_group!` configs.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
