//! Offline stand-in for the `serde` crate.
//!
//! No serialization format crate is available in this offline build, so
//! nothing in the workspace ever serializes through serde — the derives
//! exist to keep the data model annotated for a future online build.
//! `Serialize`/`Deserialize` are therefore marker traits blanket-implemented
//! for every type, and the derive macros (re-exported from the sibling
//! `serde_derive` stub when the `derive` feature is on) expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; holds for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; holds for every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization-side items, mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Serialization-side items, mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
