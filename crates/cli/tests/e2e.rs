//! End-to-end tests spawning the real `livephase-cli` binary.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_livephase-cli"))
}

/// Reads the server's `listening on <addr>` announcement, skipping any
/// trace-event lines sharing stdout.
fn read_announced_addr(stdout: &mut BufReader<std::process::ChildStdout>) -> String {
    loop {
        let mut line = String::new();
        assert!(
            stdout.read_line(&mut line).expect("server announces") > 0,
            "stdout closed before the announcement"
        );
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            return addr.to_owned();
        }
    }
}

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn help_and_no_args_print_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("USAGE"));
    let out = run_ok(&[]);
    assert!(out.contains("USAGE"));
}

#[test]
fn list_prints_the_registry() {
    let out = run_ok(&["list"]);
    assert!(out.contains("applu_in"));
    assert!(out.contains("equake_in"));
    assert!(out.lines().count() >= 35);
}

#[test]
fn govern_pipeline_works_end_to_end() {
    let out = run_ok(&["govern", "applu_in", "--length", "80", "--seed", "3"]);
    assert!(out.contains("vs baseline"));
    assert!(out.contains("EDP improvement"));
}

#[test]
fn bad_input_exits_nonzero_with_message() {
    let out = cli().args(["govern", "not_a_benchmark"]).output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown benchmark"), "{err}");
}

#[test]
fn export_then_replay_round_trips_through_files() {
    let dir = std::env::temp_dir().join(format!("livephase_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("t.csv");
    let csv_s = csv.to_str().unwrap();
    let out = run_ok(&["export", "mgrid_in", "--length", "30", "--out", csv_s]);
    assert!(out.contains("wrote 30 intervals"));
    let out = run_ok(&["replay", csv_s, "--policy", "reactive"]);
    assert!(out.contains("Reactive"));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn repro_verifies_a_figure() {
    let out = run_ok(&["repro", "table2"]);
    assert!(out.contains("shape claims hold"));
}

#[test]
fn serve_and_serve_bench_round_trip_over_loopback() {
    // Server on an ephemeral port, exiting after the bench's connections.
    let mut server = cli()
        .args([
            "serve",
            "--port",
            "0",
            "--shards",
            "2",
            "--exit-after-conns",
            "3",
            "--read-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let addr = read_announced_addr(&mut stdout);

    let out = run_ok(&[
        "serve-bench",
        &addr,
        "--conns",
        "2",
        "--bench",
        "applu_in,swim_in",
        "--length",
        "60",
        "--window",
        "16",
    ]);
    assert!(out.contains("2 benchmarks over 2 connections"), "{out}");
    assert!(out.contains("samples 120"), "{out}");
    assert!(
        out.contains("2/2 benchmarks bit-exact vs in-process manager"),
        "{out}"
    );

    // Third connection: scrape the exposition the bench traffic produced.
    let scrape = run_ok(&["metrics", &addr]);
    assert!(
        scrape.contains("# TYPE serve_connections_total counter"),
        "{scrape}"
    );
    assert!(scrape.contains("serve_frame_decode_us_bucket{"), "{scrape}");
    assert!(scrape.contains("governor_decisions_total"), "{scrape}");

    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited cleanly");
    let mut rest = String::new();
    for l in stdout.lines() {
        rest.push_str(&l.expect("utf-8"));
        rest.push('\n');
    }
    assert!(
        rest.contains("served 3 connections"),
        "summary missing: {rest}"
    );
    assert!(rest.contains("120 samples, 120 decisions"), "{rest}");
}

#[test]
fn serve_log_json_emits_json_trace_lines() {
    let mut server = cli()
        .args([
            "serve",
            "--port",
            "0",
            "--shards",
            "1",
            "--exit-after-conns",
            "1",
            "--read-timeout-ms",
            "2000",
            "--log-json",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let addr = read_announced_addr(&mut stdout);

    let scrape = run_ok(&["metrics", &addr]);
    assert!(scrape.contains("serve_connections_total"), "{scrape}");

    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited cleanly");
    let rest: Vec<String> = stdout.lines().map(|l| l.expect("utf-8")).collect();
    assert!(
        rest.iter().any(|l| l.starts_with("{\"ts_ms\":")),
        "no JSON trace lines in {rest:?}"
    );
}

#[test]
fn metrics_json_round_trips_over_loopback() {
    let mut server = cli()
        .args([
            "serve",
            "--port",
            "0",
            "--shards",
            "1",
            "--exit-after-conns",
            "1",
            "--read-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stdout = BufReader::new(server.stdout.take().expect("piped stdout"));
    let addr = read_announced_addr(&mut stdout);

    let json = run_ok(&["metrics", &addr, "--json"]);
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"metrics\""), "{json}");
    assert!(json.contains("\"serve_connections_total\""), "{json}");
    assert!(json.contains("\"kind\":\"counter\""), "{json}");
    assert!(
        !json.contains("# HELP"),
        "the JSON form must not leak exposition text: {json}"
    );

    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exited cleanly");
}

#[test]
fn bench_emits_schema_stable_json_records() {
    let dir = std::env::temp_dir().join(format!("livephase_bench_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap();
    let out = run_ok(&[
        "bench",
        "--areas",
        "wire_encode,telemetry_record",
        "--iters",
        "3",
        "--warmup",
        "1",
        "--json",
        "--out",
        dir_s,
        "--profile",
    ]);
    assert!(out.contains("calibration baseline"), "{out}");
    assert!(out.contains("wire_encode"), "{out}");
    assert!(out.contains("hot-path profile"), "{out}");
    for area in ["wire_encode", "telemetry_record"] {
        let path = dir.join(format!("BENCH_{area}.json"));
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
        assert!(
            json.contains("\"schema\": \"livephase-bench/v1\""),
            "{json}"
        );
        assert!(json.contains(&format!("\"area\": \"{area}\"")), "{json}");
        assert!(json.contains("\"ratio\": "), "{json}");
        assert!(json.contains("\"baseline_ns\": "), "{json}");
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn bench_gate_flags_an_impossible_threshold() {
    // A microscopic multiplier forces the threshold down to the absolute
    // floor; tenants_quantum costs far more than the floor, so the gate
    // must fail — unless the machine is noisy enough that the harness
    // refuses to judge, which is the documented skip path (exit 0).
    let out = cli()
        .args([
            "bench",
            "--areas",
            "tenants_quantum",
            "--iters",
            "2",
            "--warmup",
            "0",
            "--gate",
            "--multiplier",
            "0.000001",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    if out.status.code() == Some(0) {
        assert!(stdout.contains("bench gate: SKIP"), "{stdout}");
    } else {
        assert_eq!(out.status.code(), Some(1), "{stdout}");
        assert!(stdout.contains("bench gate: FAIL"), "{stdout}");
        assert!(stdout.contains("tenants_quantum:"), "{stdout}");
    }
}

#[test]
fn serve_bench_rejects_unknown_benchmarks_before_traffic() {
    let out = cli()
        .args(["serve-bench", "127.0.0.1:1", "--bench", "not_a_benchmark"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not_a_benchmark"), "{err}");
}
