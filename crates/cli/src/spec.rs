//! Textual specifications for predictors and policies.

use crate::args::CliError;
use livephase_core::Predictor;
use livephase_engine::{DecisionEngine, EngineConfig};
use livephase_governor::{
    ConservativeDerivation, Manager, ManagerConfig, Oracle, Reactive, TranslationTable,
};
use livephase_workloads::WorkloadTrace;

/// Builds a predictor from a spec string such as `gpht:8:128`.
///
/// # Errors
///
/// Returns a [`CliError`] describing the accepted grammar on mismatch.
pub fn predictor(spec: &str) -> Result<Box<dyn Predictor>, CliError> {
    livephase_core::predictor_from_spec(spec).map_err(|e| CliError::new(e.to_string()))
}

/// Builds a manager from a policy name, for a given workload (the oracle
/// needs the trace up front).
///
/// # Errors
///
/// Returns a [`CliError`] listing the accepted names on mismatch.
pub fn manager(policy: &str, trace: &WorkloadTrace) -> Result<Manager, CliError> {
    match policy {
        "baseline" => Ok(Manager::baseline()),
        "reactive" => Ok(Manager::reactive()),
        "gpht" => Ok(Manager::gpht_deployed()),
        "oracle" => {
            let map = livephase_core::PhaseMap::pentium_m();
            Ok(Manager::new(
                Box::new(Oracle::from_trace(
                    trace,
                    &map,
                    TranslationTable::pentium_m(),
                )),
                ManagerConfig::pentium_m(),
            ))
        }
        "conservative" => Ok(ConservativeDerivation::pentium_m().manager(0.05)),
        other => Err(CliError::new(format!(
            "unknown policy {other:?}; accepted: baseline | reactive | gpht | \
             oracle | conservative"
        ))),
    }
}

/// Builds a manager around an arbitrary predictor spec (used by `govern`
/// when `--predictor` is given alongside `--policy gpht`).
///
/// # Errors
///
/// Propagates predictor-spec errors.
pub fn proactive_manager(pred_spec: &str) -> Result<Manager, CliError> {
    let engine = DecisionEngine::from_spec(EngineConfig::pentium_m(), pred_spec)
        .map_err(|e| CliError::new(e.to_string()))?;
    Ok(Manager::with_engine(engine, ManagerConfig::pentium_m()))
}

/// Convenience: also accept `reactive`-style names through one entry.
///
/// # Errors
///
/// Propagates the underlying spec errors.
pub fn reactive_manager() -> Reactive {
    Reactive::new(TranslationTable::pentium_m())
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_workloads::spec as wspec;

    #[test]
    fn predictor_grammar() {
        for (input, name) in [
            ("lastvalue", "LastValue"),
            ("markov", "Markov1"),
            ("fixwindow:8", "FixWindow_8"),
            ("varwindow:128:0.005", "VarWindow_128_0.005"),
            ("gpht:8:128", "GPHT_8_128"),
            ("hashedgpht:8:1024", "HashedGPHT_8_1024"),
        ] {
            assert_eq!(predictor(input).unwrap().name(), name, "{input}");
        }
    }

    #[test]
    fn predictor_grammar_rejections() {
        for bad in [
            "",
            "gpht",
            "gpht:8",
            "gpht:0:128",
            "gpht:8:0",
            "fixwindow:0",
            "varwindow:8:-1",
            "nope:1",
            "gpht:a:b",
        ] {
            assert!(predictor(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn policy_names() {
        let trace = wspec::benchmark("swim_in")
            .unwrap()
            .with_length(5)
            .generate(1);
        for name in ["baseline", "reactive", "gpht", "oracle", "conservative"] {
            assert!(manager(name, &trace).is_ok(), "{name}");
        }
        assert!(manager("turbo", &trace).is_err());
    }

    #[test]
    fn proactive_manager_builds() {
        assert!(proactive_manager("markov").is_ok());
        assert!(proactive_manager("bogus").is_err());
        let _ = reactive_manager();
    }
}
