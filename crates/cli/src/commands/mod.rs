//! Command implementations: pure functions from parsed arguments to
//! report text.

use crate::args::{CliError, Command, Parsed};
use crate::spec;
use livephase_core::{evaluate_confusion, PhaseMap, PhaseSample};
use livephase_governor::RunReport;
use livephase_workloads::{io as trace_io, spec as wspec, WorkloadTrace};
use std::fmt::Write as _;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Propagates per-command [`CliError`]s.
pub fn dispatch(parsed: &Parsed) -> Result<String, CliError> {
    match parsed.command {
        Command::Help => Ok(crate::usage()),
        Command::List => list(parsed),
        Command::Characterize => characterize(parsed),
        Command::Predict => predict(parsed),
        Command::Govern => govern(parsed),
        Command::Export => export(parsed),
        Command::Replay => replay(parsed),
        Command::Repro => repro(parsed),
        Command::Serve => serve(parsed),
        Command::Tenants => tenants(parsed),
        Command::ServeBench => serve_bench(parsed),
        Command::Metrics => metrics(parsed),
        Command::Lint => lint(parsed),
        Command::Bench => bench(parsed),
        Command::PowerZoo => power_zoo(parsed),
    }
}

/// Resolves `--power-model` into a concrete backend. `analytic` is the
/// calibrated default; `linear` and `tree` are fitted on the power-zoo
/// training harvest at the given seed, so the same seed always yields
/// the same coefficients.
fn power_model(parsed: &Parsed) -> Result<livephase_pmsim::PowerModelKind, CliError> {
    livephase_experiments::power_zoo::model(&parsed.power_model, parsed.seed).ok_or_else(|| {
        CliError::new(format!(
            "--power-model: unknown backend {:?} (expected `analytic`, `linear` or `tree`)",
            parsed.power_model
        ))
    })
}

/// Trains, validates and races the power-model zoo: per-backend held-out
/// error against the DAQ harvest plus the EDP each backend earns when it
/// prices the capping policy. Gate violations (a learned backend missing
/// the MAPE gate or losing to the naive baseline) exit 1 for ci.sh.
fn power_zoo(parsed: &Parsed) -> Result<String, CliError> {
    use livephase_experiments as exp;
    let zoo = exp::power_zoo::run(parsed.seed);
    let violations = exp::power_zoo::check(&zoo);
    let mut out = zoo.to_string();
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "\n[power_zoo] all train/validate gates hold (held-out MAPE gate {:.0}%)",
            exp::power_zoo::MAPE_GATE_PCT
        );
        Ok(out)
    } else {
        for v in &violations {
            let _ = writeln!(out, "\n[power_zoo] GATE VIOLATION: {v}");
        }
        Err(CliError::gate(out))
    }
}

/// Runs the calibrated in-process benchmark harness.
///
/// Always prints the per-area summary table. `--json` additionally
/// writes one `BENCH_<area>.json` record per area under `--out`
/// (default `.`); `--gate` judges the records against the calibrated
/// thresholds (exit-code contract as for `lint`: 0 clean or loud skip,
/// 1 findings on stdout, 2 operational error); `--profile` appends the
/// `timed_span!` hot-path table.
fn bench(parsed: &Parsed) -> Result<String, CliError> {
    use livephase_bench as bench;

    if let Some((dir_a, dir_b)) = &parsed.compare {
        // Offline trend diff between two committed snapshot directories:
        // no measurement runs, so none of the flags below apply.
        let report = bench::compare_dirs(dir_a, dir_b).map_err(CliError::new)?;
        let rendered = report.render();
        return if report.has_regressions() {
            Err(CliError::gate(rendered))
        } else {
            Ok(rendered)
        };
    }

    let areas: Vec<&'static bench::Area> = if parsed.areas.is_empty() {
        bench::registry().iter().collect()
    } else {
        parsed
            .areas
            .iter()
            .map(|name| {
                bench::find(name).ok_or_else(|| {
                    let known: Vec<&str> = bench::registry().iter().map(|a| a.name).collect();
                    CliError::new(format!(
                        "unknown bench area {name:?}; known areas: {}",
                        known.join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };

    let calibration = *bench::calibration();
    let machine = bench::Machine::detect();
    let repo_root = std::env::current_dir()
        .ok()
        .and_then(|cwd| livephase_lint::workspace::find_workspace_root(&cwd));
    let git_rev = repo_root
        .as_deref()
        .map_or_else(|| "unknown".to_owned(), bench::git_rev);
    // The one wall-clock read: stamped here in the CLI and passed down,
    // so nothing in the measurement path touches the clock-of-day.
    let unix_ms = livephase_telemetry::now_unix_ms();

    let mut records = Vec::with_capacity(areas.len());
    for area in &areas {
        let summary = area.measure(parsed.warmup, parsed.iters);
        records.push(bench::BenchRecord {
            area: area.name.to_owned(),
            summary,
            warmup: parsed.warmup,
            calibration,
            expected_ratio: area.expected_ratio,
            machine: machine.clone(),
            git_rev: git_rev.clone(),
            unix_ms,
        });
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "calibration baseline {} ns (MAD {} ns over {} reps, variance {:.3})",
        calibration.baseline_ns,
        calibration.mad_ns,
        calibration.reps,
        calibration.variance()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "area", "iters", "median ns", "p90 ns", "mad ns", "ratio", "expected"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>12} {:>12} {:>10} {:>9.3} {:>9.3}",
            r.area,
            r.summary.iterations,
            r.summary.median_ns,
            r.summary.p90_ns,
            r.summary.mad_ns,
            r.ratio(),
            r.expected_ratio
        );
    }

    if parsed.json {
        let dir = std::path::PathBuf::from(parsed.out.as_deref().unwrap_or("."));
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError::new(format!("cannot create {}: {e}", dir.display())))?;
        for r in &records {
            let path = dir.join(r.filename());
            std::fs::write(&path, r.to_json())
                .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))?;
            let _ = writeln!(out, "wrote {}", path.display());
        }
    }

    if parsed.profile {
        let rows = livephase_bench::collect(livephase_telemetry::global());
        let _ = writeln!(out, "\nhot-path profile (timed_span! telemetry):");
        out.push_str(&livephase_bench::render(&rows));
    }

    if parsed.gate {
        let config = bench::GateConfig {
            multiplier: parsed
                .multiplier
                .unwrap_or(bench::GateConfig::default().multiplier),
            ..bench::GateConfig::default()
        };
        match bench::evaluate(&config, &calibration, &records) {
            bench::GateOutcome::Pass => {
                let _ = writeln!(
                    out,
                    "\nbench gate: PASS ({} areas within {:.1}x of their expected ratio)",
                    records.len(),
                    config.multiplier
                );
            }
            bench::GateOutcome::Skip(reason) => {
                let _ = writeln!(out, "\nbench gate: SKIP — {reason}");
            }
            bench::GateOutcome::Fail(findings) => {
                let _ = writeln!(out, "\nbench gate: FAIL");
                for f in &findings {
                    let _ = writeln!(out, "  {f}");
                }
                return Err(CliError::gate(out));
            }
        }
    }
    Ok(out)
}

/// Runs the workspace invariant linter over the enclosing workspace.
///
/// Exit-code contract (relied on by `ci.sh`): clean → `Ok` (exit 0);
/// unsuppressed deny findings → a gate error carrying the rendered
/// report (exit 1, report on stdout); not inside a workspace or
/// unreadable sources → an operational error (exit 2, stderr).
fn lint(parsed: &Parsed) -> Result<String, CliError> {
    let cwd = std::env::current_dir()
        .map_err(|e| CliError::new(format!("cannot determine working directory: {e}")))?;
    let root = livephase_lint::workspace::find_workspace_root(&cwd).ok_or_else(|| {
        CliError::new("lint: no Cargo.toml with [workspace] at or above the working directory")
    })?;
    let mut report =
        livephase_lint::lint_workspace(&root).map_err(|e| CliError::new(format!("lint: {e}")))?;
    if let Some(baseline_path) = &parsed.baseline {
        // Resolved against the working directory (how ci.sh names it),
        // falling back to the workspace root so the flag also works
        // from a subdirectory.
        let text = std::fs::read_to_string(baseline_path)
            .or_else(|_| std::fs::read_to_string(root.join(baseline_path)))
            .map_err(|e| CliError::new(format!("lint: baseline {baseline_path}: {e}")))?;
        report.apply_baseline(&text);
    }
    let rendered = if parsed.json {
        report.render_json()
    } else {
        report.render_text()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::gate(rendered))
    }
}

/// Runs the phase-prediction daemon until it exits (`--exit-after-conns`
/// or an external kill).
///
/// This is the one impure command: the bound address is printed (and
/// flushed) *before* blocking, so scripts can parse `listening on <addr>`
/// off stdout and connect while the process runs.
fn serve(parsed: &Parsed) -> Result<String, CliError> {
    // The daemon logs through the process tracer; the library default is
    // silent, so the CLI turns the stdout sink on here.
    livephase_telemetry::tracer().set_sink(if parsed.log_json {
        livephase_telemetry::Sink::Json
    } else {
        livephase_telemetry::Sink::Human
    });
    let config = livephase_serve::ServerConfig {
        addr: format!("127.0.0.1:{}", parsed.port),
        shards: parsed.shards,
        max_conns: parsed.max_conns,
        read_timeout: std::time::Duration::from_millis(parsed.read_timeout_ms),
        write_timeout: std::time::Duration::from_millis(parsed.read_timeout_ms),
        exit_after_conns: parsed.exit_after_conns,
        engine: livephase_serve::EngineConfig::pentium_m(),
        power: power_model(parsed)?,
        max_outbound_bytes: parsed.max_outbound_bytes,
        sndbuf: parsed.sndbuf,
    };
    let handle = livephase_serve::spawn(config)
        .map_err(|e| CliError::new(format!("cannot bind port {}: {e}", parsed.port)))?;
    println!("listening on {}", handle.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = handle.join();
    Ok(format!(
        "served {} connections ({} rejected, {} poisoned): {} samples, {} decisions",
        summary.accepted, summary.rejected, summary.poisoned, summary.samples, summary.decisions
    ))
}

/// Runs a multi-tenant cluster scenario — M tenant VMs round-robin
/// scheduled on K simulated cores under a cluster power cap — and
/// renders the per-tenant report (optionally followed by the telemetry
/// exposition when `--metrics` is given).
fn tenants(parsed: &Parsed) -> Result<String, CliError> {
    let policy = livephase_tenants::ArbiterPolicy::parse(&parsed.arbiter).ok_or_else(|| {
        CliError::new(format!(
            "--arbiter: unknown policy {:?} (expected `waterfill` or `priority`)",
            parsed.arbiter
        ))
    })?;
    let mut spec = livephase_tenants::ScenarioSpec::new(parsed.tenants, parsed.cores);
    spec.policy = policy;
    spec.noisy = parsed.noisy;
    spec.seed = parsed.seed;
    spec.predictor = parsed.predictor.clone();
    // The arbiter costs grants at the backend's worst-case bound, so any
    // zoo backend keeps the never-exceed-budget argument intact.
    spec.power = power_model(parsed)?;
    if let Some(budget) = parsed.budget_w {
        spec.budget_w = budget;
    }
    if let Some(quantum) = parsed.quantum_uops {
        spec.quantum_uops = quantum;
    }
    if let Some(intervals) = parsed.length {
        spec.intervals = intervals;
    }
    if !parsed.mix.is_empty() {
        spec.mix = parsed.mix.clone();
    }
    let report =
        livephase_tenants::run_scenario(&spec).map_err(|e| CliError::new(e.to_string()))?;
    let mut out = report.to_string();
    if parsed.metrics {
        let _ = writeln!(out);
        out.push_str(&livephase_telemetry::global().render());
    }
    Ok(out)
}

/// Replays benchmark counter streams against a running daemon and
/// reports throughput, latency percentiles and oracle agreement.
fn serve_bench(parsed: &Parsed) -> Result<String, CliError> {
    let addr = parsed.target.clone().expect("validated by the parser");
    let config = livephase_serve::LoadGenConfig {
        addr,
        connections: parsed.conns,
        benchmarks: parsed.bench.clone(),
        length: parsed.length.unwrap_or(120),
        seed: parsed.seed,
        predictor: parsed.predictor.clone(),
        window: parsed.window,
        check_agreement: !parsed.no_check,
        timeout: std::time::Duration::from_millis(parsed.read_timeout_ms.max(1_000)),
        many_conn: parsed.reactor,
    };
    let report =
        livephase_serve::loadgen::run(&config).map_err(|e| CliError::new(e.to_string()))?;
    if !report.all_exact() {
        return Err(CliError::new(format!(
            "{report}served decisions diverged from the in-process manager"
        )));
    }
    Ok(report.to_string())
}

/// Scrapes a running daemon's metrics exposition and prints it verbatim,
/// or (with `--json`) re-renders it as structured JSON with per-series
/// quantiles folded out of the histogram buckets.
fn metrics(parsed: &Parsed) -> Result<String, CliError> {
    let addr = parsed.target.as_deref().expect("validated by the parser");
    let timeout = std::time::Duration::from_millis(parsed.read_timeout_ms.max(1_000));
    let mut client =
        livephase_serve::Client::connect(addr, 0, "pentium_m", &parsed.predictor, timeout)
            .map_err(|e| CliError::new(format!("cannot connect to {addr}: {e}")))?;
    let text = client
        .metrics()
        .map_err(|e| CliError::new(format!("metrics scrape failed: {e}")))?;
    if parsed.json {
        livephase_telemetry::scrape::exposition_to_json(&text)
            .map_err(|e| CliError::new(format!("metrics scrape unparsable: {e}")))
    } else {
        Ok(text)
    }
}

/// Resolves the benchmark named by the command line and generates its
/// trace.
fn workload(parsed: &Parsed) -> Result<WorkloadTrace, CliError> {
    let name = parsed.target.as_deref().expect("validated by the parser");
    let mut bench = wspec::benchmark(name).ok_or_else(|| {
        CliError::new(format!("unknown benchmark {name:?}; run `livephase list`"))
    })?;
    if let Some(len) = parsed.length {
        bench = bench.with_length(len);
    }
    Ok(bench.generate(parsed.seed))
}

fn list(parsed: &Parsed) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>4}  {:>12}  {:>11}  {:>9}",
        "benchmark", "quad", "mean Mem/Uop", "variation %", "intervals"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    for bench in wspec::registry() {
        let stats = bench
            .clone()
            .with_length(400)
            .generate(parsed.seed)
            .characterize();
        let _ = writeln!(
            out,
            "{:<18} {:>4}  {:>12.4}  {:>11.1}  {:>9}",
            bench.name(),
            bench.quadrant().to_string(),
            stats.mean_mem_uop,
            stats.sample_variation_pct,
            bench.length(),
        );
    }
    Ok(out)
}

fn characterize(parsed: &Parsed) -> Result<String, CliError> {
    let trace = workload(parsed)?;
    let stats = trace.characterize();
    let map = PhaseMap::pentium_m();
    let mut histogram = vec![0usize; map.phase_count()];
    for w in &trace {
        histogram[map.classify(w.mem_uop()).index()] += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} intervals, mean Mem/Uop {:.4}, sample variation {:.1}%",
        trace.name(),
        trace.len(),
        stats.mean_mem_uop,
        stats.sample_variation_pct
    );
    let _ = writeln!(out, "\nphase histogram (Table 1 definitions):");
    for (i, &count) in histogram.iter().enumerate() {
        let share = count as f64 / trace.len() as f64;
        let bar = "#".repeat((share * 50.0).round() as usize);
        let _ = writeln!(
            out,
            "  P{} {:>6} ({:>5.1}%) {}",
            i + 1,
            count,
            share * 100.0,
            bar
        );
    }
    Ok(out)
}

fn predict(parsed: &Parsed) -> Result<String, CliError> {
    let trace = workload(parsed)?;
    let mut predictor = spec::predictor(&parsed.predictor)?;
    let map = PhaseMap::pentium_m();
    let stream = trace
        .iter()
        .map(|w| PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())));
    let (stats, matrix) = evaluate_confusion(predictor.as_mut(), stream);

    let mut out = String::new();
    let _ = writeln!(out, "{} on {}: {}", predictor.name(), trace.name(), stats);
    let _ = writeln!(out, "\nconfusion (rows = actual, cols = predicted):");
    let phases = matrix.phases();
    let _ = write!(out, "{:>6}", "");
    for &p in &phases {
        let _ = write!(out, "{:>8}", format!("P{p}"));
    }
    let _ = writeln!(out, "{:>9}", "recall");
    for &a in &phases {
        let _ = write!(out, "{:>6}", format!("P{a}"));
        for &p in &phases {
            let _ = write!(out, "{:>8}", matrix.get(a, p));
        }
        let _ = writeln!(out, "{:>8.1}%", matrix.recall(a) * 100.0);
    }
    let _ = writeln!(
        out,
        "\nof the mispredictions, {:.0}% guessed a more CPU-bound phase \
         (energy-wasting direction), {:.0}% a more memory-bound one \
         (performance-costing direction).",
        matrix.underestimation_share() * 100.0,
        (1.0 - matrix.underestimation_share()) * 100.0
    );
    Ok(out)
}

fn render_run(report: &RunReport, baseline: Option<&RunReport>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} under {}: {:.3} s, {:.1} J, {:.2} W avg, {:.2} BIPS, EDP {:.2} J.s",
        report.workload,
        report.policy,
        report.totals.time_s,
        report.totals.energy_j,
        report.average_power_w(),
        report.bips(),
        report.edp()
    );
    let _ = writeln!(
        out,
        "prediction accuracy {:.1}%  |  DVFS transitions {}",
        report.prediction.accuracy() * 100.0,
        report.dvfs_transitions
    );
    if let Some(base) = baseline {
        let c = report.compare_to(base);
        let _ = writeln!(
            out,
            "vs baseline: EDP improvement {:.1}%, performance degradation \
             {:.1}%, power savings {:.1}%, energy savings {:.1}%",
            c.edp_improvement_pct(),
            c.perf_degradation_pct(),
            c.power_savings_pct(),
            c.energy_savings_pct()
        );
    }
    out
}

fn govern_trace(parsed: &Parsed, trace: &WorkloadTrace) -> Result<String, CliError> {
    let platform = livephase_pmsim::PlatformConfig::pentium_m();
    let manager = if parsed.policy == "gpht" && parsed.predictor != "gpht:8:128" {
        // A custom predictor rides the standard proactive policy.
        spec::proactive_manager(&parsed.predictor)?
    } else {
        spec::manager(&parsed.policy, trace)?
    };
    let report = manager.run(trace, &platform);
    if parsed.policy == "baseline" {
        Ok(render_run(&report, None))
    } else {
        let baseline = livephase_governor::Manager::baseline().run(trace, &platform);
        Ok(render_run(&report, Some(&baseline)))
    }
}

fn govern(parsed: &Parsed) -> Result<String, CliError> {
    let trace = workload(parsed)?;
    govern_trace(parsed, &trace)
}

fn export(parsed: &Parsed) -> Result<String, CliError> {
    let trace = workload(parsed)?;
    let path = parsed.out.as_deref().expect("validated by the parser");
    let csv = trace_io::to_csv(&trace);
    std::fs::write(path, &csv).map_err(|e| CliError::new(format!("cannot write {path:?}: {e}")))?;
    Ok(format!(
        "wrote {} intervals ({} bytes) to {path}",
        trace.len(),
        csv.len()
    ))
}

fn replay(parsed: &Parsed) -> Result<String, CliError> {
    let path = parsed.target.as_deref().expect("validated by the parser");
    let csv = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path:?}: {e}")))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("replay");
    let trace =
        trace_io::from_csv(stem, &csv).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    govern_trace(parsed, &trace)
}

fn repro(parsed: &Parsed) -> Result<String, CliError> {
    use livephase_experiments as exp;
    let artifact = parsed.target.as_deref().expect("validated by the parser");
    let seed = parsed.seed;
    // Only the power_cap extension races alternative estimator backends;
    // every published table/figure is pinned to the analytic default so
    // its committed output stays byte-identical.
    if parsed.power_model != "analytic" && artifact != "power_cap" {
        return Err(CliError::new(format!(
            "--power-model {} applies only to the power_cap artifact; \
             {artifact} is pinned to the analytic backend",
            parsed.power_model
        )));
    }
    let (body, violations): (String, Vec<String>) = match artifact {
        "table1" => {
            let t = exp::table1::run();
            (t.to_string(), exp::table1::check(&t))
        }
        "table2" => {
            let t = exp::table2::run();
            (t.to_string(), exp::table2::check(&t))
        }
        "fig02" => {
            let f = exp::fig02::run(seed);
            (f.to_string(), exp::fig02::check(&f))
        }
        "fig03" => {
            let f = exp::fig03::run(seed);
            (f.to_string(), exp::fig03::check(&f))
        }
        "fig04" => {
            let f = exp::fig04::run(seed);
            (f.to_string(), exp::fig04::check(&f))
        }
        "fig05" => {
            let f = exp::fig05::run(seed);
            (f.to_string(), exp::fig05::check(&f))
        }
        "fig06" => {
            let f = exp::fig06::run(seed);
            (f.to_string(), exp::fig06::check(&f))
        }
        "fig07" => {
            let f = exp::fig07::run(seed);
            (f.to_string(), exp::fig07::check(&f))
        }
        "fig10" => {
            let f = exp::fig10::run(seed);
            (f.to_string(), exp::fig10::check(&f))
        }
        "fig11" => {
            let f = exp::fig11::run(seed);
            (f.to_string(), exp::fig11::check(&f))
        }
        "fig12" => {
            let f = exp::fig12::run(seed);
            (f.to_string(), exp::fig12::check(&f))
        }
        "fig13" => {
            let f = exp::fig13::run(seed);
            (f.to_string(), exp::fig13::check(&f))
        }
        // Ablations (design-choice probes beyond the published figures).
        "gphr_depth" => {
            let a = exp::ablations::gphr_depth::run(seed);
            (a.to_string(), exp::ablations::gphr_depth::check(&a))
        }
        "upc_pitfall" => {
            let a = exp::ablations::upc_pitfall::run(seed);
            (a.to_string(), exp::ablations::upc_pitfall::check(&a))
        }
        "oracle_gap" => {
            let a = exp::ablations::oracle_gap::run(seed);
            (a.to_string(), exp::ablations::oracle_gap::check(&a))
        }
        "overheads" => {
            let a = exp::ablations::overheads::run(seed);
            (a.to_string(), exp::ablations::overheads::check(&a))
        }
        "granularity" => {
            let a = exp::ablations::granularity::run(seed);
            (a.to_string(), exp::ablations::granularity::check(&a))
        }
        "selector" => {
            let a = exp::ablations::selector::run(seed);
            (a.to_string(), exp::ablations::selector::check(&a))
        }
        "pht_organization" => {
            let a = exp::ablations::pht_organization::run(seed);
            (a.to_string(), exp::ablations::pht_organization::check(&a))
        }
        "confidence" => {
            let a = exp::ablations::confidence::run(seed);
            (a.to_string(), exp::ablations::confidence::check(&a))
        }
        "family_tour" => {
            let a = exp::ablations::family_tour::run(seed);
            (a.to_string(), exp::ablations::family_tour::check(&a))
        }
        // Extensions (the paper's Section 8 claims, built out).
        "dtm" => {
            let e = exp::extensions::dtm::run(seed);
            (e.to_string(), exp::extensions::dtm::check(&e))
        }
        "power_cap" => {
            let e = exp::extensions::power_cap::run_with_model(seed, &power_model(parsed)?);
            (e.to_string(), exp::extensions::power_cap::check(&e))
        }
        "multiprogram" => {
            let e = exp::extensions::multiprogram::run(seed);
            (e.to_string(), exp::extensions::multiprogram::check(&e))
        }
        "duration" => {
            let e = exp::extensions::duration::run(seed);
            (e.to_string(), exp::extensions::duration::check(&e))
        }
        "adaptive_sampling" => {
            let e = exp::extensions::adaptive_sampling::run(seed);
            (e.to_string(), exp::extensions::adaptive_sampling::check(&e))
        }
        "tenants" => {
            let e = exp::extensions::tenants::run(seed);
            (e.to_string(), exp::extensions::tenants::check(&e))
        }
        other => {
            return Err(CliError::new(format!(
                "unknown artifact {other:?}; accepted: table1 table2 fig02 fig03 \
                 fig04 fig05 fig06 fig07 fig10 fig11 fig12 fig13, ablations \
                 (gphr_depth upc_pitfall oracle_gap overheads granularity \
                 selector pht_organization confidence family_tour) and \
                 extensions (dtm power_cap multiprogram duration \
                 adaptive_sampling tenants)"
            )))
        }
    };
    let mut out = body;
    if violations.is_empty() {
        let _ = writeln!(out, "\n[{artifact}] all of the paper's shape claims hold");
    } else {
        for v in &violations {
            let _ = writeln!(out, "\n[{artifact}] SHAPE VIOLATION: {v}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(line: &str) -> Result<String, CliError> {
        let argv: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        dispatch(&parse(&argv).unwrap())
    }

    #[test]
    fn list_shows_all_benchmarks() {
        let out = run("list").unwrap();
        assert_eq!(out.lines().count(), 2 + 33);
        assert!(out.contains("applu_in"));
        assert!(out.contains("mcf_inp"));
    }

    #[test]
    fn characterize_histogram_covers_trace() {
        let out = run("characterize swim_in --length 50").unwrap();
        assert!(out.contains("phase histogram"));
        assert!(out.contains("P5"));
    }

    #[test]
    fn predict_reports_accuracy_and_confusion() {
        let out = run("predict applu_in --length 300 --predictor gpht:8:128").unwrap();
        assert!(out.contains("GPHT_8_128 on applu_in"));
        assert!(out.contains("confusion"));
        assert!(out.contains("recall"));
    }

    #[test]
    fn govern_compares_to_baseline() {
        let out = run("govern swim_in --length 60 --policy reactive").unwrap();
        assert!(out.contains("vs baseline"));
        assert!(out.contains("EDP improvement"));
    }

    #[test]
    fn govern_baseline_has_no_comparison() {
        let out = run("govern swim_in --length 30 --policy baseline").unwrap();
        assert!(!out.contains("vs baseline"));
    }

    #[test]
    fn govern_with_custom_predictor() {
        let out = run("govern applu_in --length 80 --predictor markov").unwrap();
        assert!(out.contains("Proactive(Markov1)"));
    }

    #[test]
    fn export_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("livephase_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("swim.csv");
        let path_s = path.to_str().unwrap();
        let out = run(&format!("export swim_in --length 20 --out {path_s}")).unwrap();
        assert!(out.contains("wrote 20 intervals"));
        let out = run(&format!("replay {path_s} --policy gpht")).unwrap();
        assert!(out.contains("vs baseline"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn repro_runs_a_table() {
        let out = run("repro table1").unwrap();
        assert!(out.contains("shape claims hold"));
    }

    #[test]
    fn repro_runs_an_ablation_and_an_extension() {
        let out = run("repro upc_pitfall").unwrap();
        assert!(out.contains("shape claims hold"), "{out}");
        let out = run("repro duration").unwrap();
        assert!(out.contains("shape claims hold"), "{out}");
    }

    #[test]
    fn tenants_runs_a_small_cluster() {
        let out = run("tenants --tenants 4 --cores 2 --budget 20 --length 4 --noisy 1").unwrap();
        assert!(out.contains("cluster decision digest"), "{out}");
        assert!(out.contains("mcf_inp"), "the noisy neighbor is visible");
        let out = run("tenants --tenants 2 --cores 1 --length 2 --metrics").unwrap();
        assert!(
            out.contains("tenants_arbiter_grants_total"),
            "--metrics appends the telemetry exposition: {out}"
        );
        assert!(run("tenants --arbiter frob")
            .unwrap_err()
            .message()
            .contains("unknown policy"));
        assert!(run("tenants --mix no_such_benchmark --length 2")
            .unwrap_err()
            .message()
            .contains("unknown benchmark"));
    }

    #[test]
    fn bench_reports_every_selected_area() {
        let out = run("bench --areas wire_encode,telemetry_quantile --iters 2 --warmup 0").unwrap();
        assert!(out.contains("calibration baseline"), "{out}");
        assert!(out.contains("wire_encode"), "{out}");
        assert!(out.contains("telemetry_quantile"), "{out}");
        assert!(
            run("bench --areas no_such_area")
                .unwrap_err()
                .message()
                .contains("unknown bench area"),
            "unknown areas are rejected before any measurement"
        );
    }

    #[test]
    fn bench_compare_diffs_committed_snapshots() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench");
        let pre = root.join("2026-08-07-pre-opt");
        let post = root.join("2026-08-07-post-opt");
        if !(pre.is_dir() && post.is_dir()) {
            return; // packaged builds may omit results/
        }
        let line = format!(
            "bench --compare {} {}",
            pre.to_str().unwrap(),
            post.to_str().unwrap()
        );
        // Regressions exit through the gate path carrying the rendered
        // report; a clean diff returns it directly. Either way the full
        // table must be there.
        let out = match run(&line) {
            Ok(out) => out,
            Err(e) => e.message().to_owned(),
        };
        assert!(out.contains("bench compare:"), "{out}");
        assert!(out.contains("engine_step"), "{out}");
        assert!(out.contains("regression"), "{out}");
    }

    #[test]
    fn repro_power_model_is_power_cap_only() {
        let err = run("repro table2 --power-model linear").unwrap_err();
        assert!(
            err.message()
                .contains("applies only to the power_cap artifact"),
            "{}",
            err.message()
        );
    }

    #[test]
    fn tenants_with_learned_power_model_still_meets_budget() {
        // The arbiter prices grants at the backend's worst_case, so even
        // a fitted backend keeps the report's budget line intact.
        let out =
            run("tenants --tenants 2 --cores 1 --length 2 --power-model tree --seed 7").unwrap();
        assert!(out.contains("cluster decision digest"), "{out}");
    }

    #[test]
    fn friendly_errors() {
        assert!(run("characterize doom")
            .unwrap_err()
            .message()
            .contains("unknown benchmark"));
        assert!(run("repro fig99")
            .unwrap_err()
            .message()
            .contains("unknown artifact"));
        assert!(run("replay /nonexistent.csv")
            .unwrap_err()
            .message()
            .contains("cannot read"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("repro"));
    }
}
