//! # livephase-cli
//!
//! The `livephase` command-line tool: phase characterization, prediction,
//! and DVFS management from a shell, over either the built-in SPEC
//! CPU2000 stand-ins or replayed counter logs.
//!
//! ```text
//! livephase list
//! livephase characterize applu_in
//! livephase predict applu_in --predictor gpht:8:128
//! livephase govern applu_in --policy gpht
//! livephase export applu_in --out applu.csv
//! livephase replay applu.csv --policy reactive
//! livephase repro fig04
//! livephase tenants --tenants 64 --cores 8 --budget 75 --noisy 8
//! livephase serve --port 9626 --shards 4
//! livephase serve-bench 127.0.0.1:9626 --conns 8
//! livephase metrics 127.0.0.1:9626
//! ```
//!
//! The crate is a thin, dependency-free argument layer over the workspace
//! libraries; every command is a pure function from parsed arguments to a
//! report string, so the whole surface is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;
pub mod spec;

use args::CliError;

/// Executes a full command line (excluding `argv[0]`), returning the
/// text to print on success.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message (and usage text)
/// when the command line is malformed or names unknown entities.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = args::parse(argv)?;
    commands::dispatch(&parsed)
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "livephase — runtime phase monitoring, prediction and DVFS management\n\
     \n\
     USAGE:\n\
     \x20 livephase <command> [arguments] [options]\n\
     \n\
     COMMANDS:\n\
     \x20 list                          list the built-in benchmarks\n\
     \x20 characterize <bench>          stability / savings statistics\n\
     \x20 predict <bench>               run a phase predictor, report accuracy\n\
     \x20 govern <bench>                run DVFS management, report EDP\n\
     \x20 export <bench> --out <file>   write the trace as CSV\n\
     \x20 replay <file.csv>             govern a replayed counter log\n\
     \x20 repro <artifact>              regenerate a paper table/figure\n\
     \x20 tenants                       run a multi-tenant cluster under a power cap\n\
     \x20 serve                         run the phase-prediction TCP daemon\n\
     \x20 serve-bench <addr>            load-test a running daemon\n\
     \x20 metrics <addr> [--json]       scrape a running daemon's telemetry\n\
     \x20 lint [--json]                 run the workspace invariant linter\n\
     \x20                               (exit 0 clean, 1 findings, 2 error)\n\
     \x20 --baseline <file>             lint: committed `lint --json` report whose\n\
     \x20                               recorded findings are reported, not gating\n\
     \x20 bench                         run the calibrated benchmark harness\n\
     \x20 power-zoo                     train/validate the power-model zoo and\n\
     \x20                               race the backends under a power cap\n\
     \x20                               (exit 0 gates hold, 1 violations)\n\
     \n\
     OPTIONS:\n\
     \x20 --seed <n>            workload seed (default 42)\n\
     \x20 --length <n>          trace length in sampling intervals\n\
     \x20 --power-model <name>  analytic | linear | tree — power backend for\n\
     \x20                       serve, tenants and `repro power_cap` (learned\n\
     \x20                       backends are fitted on the power-zoo harvest;\n\
     \x20                       default analytic)\n\
     \x20 --predictor <spec>    lastvalue | markov | fixwindow:<n> |\n\
     \x20                       varwindow:<n>:<thr> | gpht:<depth>:<entries> |\n\
     \x20                       hashedgpht:<depth>:<entries>\n\
     \x20 --policy <name>       baseline | reactive | gpht | oracle | conservative\n\
     \x20 --out <file>          output path for `export`\n\
     \n\
     SERVE OPTIONS:\n\
     \x20 --port <n>            TCP port (default 0 = ephemeral; the bound\n\
     \x20                       address is printed as `listening on <addr>`)\n\
     \x20 --shards <n>          shard owner threads (default 4)\n\
     \x20 --max-conns <n>       concurrent-connection accept gate (default 256)\n\
     \x20 --exit-after-conns <n> exit after admitting and draining n connections\n\
     \x20 --read-timeout-ms <n> socket timeout (default 5000)\n\
     \x20 --max-outbound <n>    per-connection outbound queue cap in bytes\n\
     \x20                       (default 262144; slow consumers over it are shed)\n\
     \x20 --sndbuf <n>          socket send-buffer size in bytes\n\
     \x20 --log-json            emit trace events as JSON lines\n\
     \n\
     SERVE-BENCH OPTIONS:\n\
     \x20 --conns <n>           concurrent connections (default 8)\n\
     \x20 --window <n>          samples in flight per connection (default 64)\n\
     \x20 --bench <a,b,...>     benchmark subset (default: all 33)\n\
     \x20 --no-check            skip the in-process oracle agreement pass\n\
     \x20 --reactor             many-connection mode: one thread multiplexes\n\
     \x20                       all --conns connections, held open concurrently\n\
     \n\
     TENANTS OPTIONS:\n\
     \x20 --tenants <n>         tenant VM count M (default 8)\n\
     \x20 --cores <n>           simulated core count K (default 2)\n\
     \x20 --budget <w>          cluster power budget in watts (default 60)\n\
     \x20 --length <n>          trace length per tenant in sampling intervals\n\
     \x20 --quantum <n>         scheduling credit per tenant per epoch in uops\n\
     \x20                       (default 25000000)\n\
     \x20 --arbiter <name>      power-cap policy: waterfill | priority\n\
     \x20 --mix <a,b,...>       benchmark mix cycled across tenants\n\
     \x20 --noisy <n>           noisy-neighbor tenants (highest ids; they run\n\
     \x20                       the most memory-bound benchmark at 4x credit)\n\
     \x20 --metrics             append the telemetry exposition to the report\n\
     \n\
     BENCH OPTIONS:\n\
     \x20 --areas <a,b,...>     bench-area subset (default: all)\n\
     \x20 --iters <n>           timed iterations per area (default 30)\n\
     \x20 --warmup <n>          untimed warmup iterations per area (default 3)\n\
     \x20 --json                write one BENCH_<area>.json record per area\n\
     \x20 --out <dir>           directory for --json records (default .)\n\
     \x20 --gate                judge records against calibrated thresholds\n\
     \x20                       (exit 0 pass/skip, 1 findings, 2 error)\n\
     \x20 --multiplier <x>      gate headroom over the expected ratio\n\
     \x20                       (default 5.0; strict CI uses 2.0)\n\
     \x20 --profile             append the timed_span! hot-path table\n\
     \x20 --compare <a> <b>     diff two BENCH_*.json snapshot directories on\n\
     \x20                       their calibrated ratios instead of measuring\n\
     \x20                       (exit 0 clean, 1 regressions past +15%)\n"
        .to_owned()
}
