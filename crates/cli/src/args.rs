//! Command-line parsing (hand-rolled; the sanctioned dependency set has no
//! argument parser, and the surface is small enough not to want one).

use std::error::Error;
use std::fmt;

/// A user-facing command-line error.
///
/// Carries the process exit code: `2` (the default) for usage, I/O, and
/// other operational failures, printed to stderr; `1` for a *gate*
/// failure — a check that ran to completion and found violations (e.g.
/// `lint` findings) — whose message is the report itself and belongs on
/// stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
    code: i32,
}

impl CliError {
    /// Creates an operational error (exit code 2).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    /// Creates a gate failure (exit code 1) whose message is a report
    /// destined for stdout.
    #[must_use]
    pub fn gate(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }

    /// The user-facing message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The process exit code this error maps to.
    #[must_use]
    pub fn code(&self) -> i32 {
        self.code
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for CliError {}

/// The recognized subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `list`
    List,
    /// `characterize <bench>`
    Characterize,
    /// `predict <bench>`
    Predict,
    /// `govern <bench>`
    Govern,
    /// `export <bench> --out <file>`
    Export,
    /// `replay <file.csv>`
    Replay,
    /// `repro <artifact>`
    Repro,
    /// `serve` — run the phase-prediction TCP daemon
    Serve,
    /// `tenants` — run a multi-tenant cluster scenario under a power cap
    Tenants,
    /// `serve-bench <addr>` — load-test a running daemon
    ServeBench,
    /// `metrics <addr>` — scrape a running daemon's telemetry exposition
    Metrics,
    /// `lint` — run the workspace invariant linter
    Lint,
    /// `bench` — run the calibrated in-process benchmark harness
    Bench,
    /// `power-zoo` — train, validate, and race the power-model backends
    PowerZoo,
    /// `help` / `--help`
    Help,
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// The subcommand.
    pub command: Command,
    /// The positional argument (benchmark name, file, or artifact).
    pub target: Option<String>,
    /// `--seed` (default 42, the experiments' default).
    pub seed: u64,
    /// `--length` override, if given.
    pub length: Option<usize>,
    /// `--predictor` specification (default `gpht:8:128`).
    pub predictor: String,
    /// `--policy` name (default `gpht`).
    pub policy: String,
    /// `--out` path for `export`.
    pub out: Option<String>,
    /// `--port` for `serve` (0 picks an ephemeral port).
    pub port: u16,
    /// `--shards` worker threads for `serve`.
    pub shards: usize,
    /// `--max-conns` accept gate for `serve`.
    pub max_conns: usize,
    /// `--exit-after-conns`: stop `serve` after this many connections
    /// have been admitted and drained.
    pub exit_after_conns: Option<u64>,
    /// `--read-timeout-ms` socket timeout for `serve` and `serve-bench`.
    pub read_timeout_ms: u64,
    /// `--conns` concurrent connections for `serve-bench`.
    pub conns: usize,
    /// `--window` pipeline depth for `serve-bench`.
    pub window: usize,
    /// `--bench` comma-separated benchmark subset for `serve-bench`
    /// (empty = all).
    pub bench: Vec<String>,
    /// `--no-check`: skip the in-process oracle agreement pass in
    /// `serve-bench`.
    pub no_check: bool,
    /// `--reactor`: for `serve-bench`, selects the many-connection
    /// single-thread load generator (one multiplexed connection per
    /// `--conns`, all held open concurrently). Accepted as a no-op for
    /// `serve`, whose only engine is the epoll reactor.
    pub reactor: bool,
    /// `--max-outbound` per-connection outbound queue cap in bytes for
    /// `serve`; a slow consumer exceeding it is shed.
    pub max_outbound_bytes: usize,
    /// `--sndbuf` socket send-buffer size in bytes for `serve`, if
    /// given; small values surface backpressure early in tests.
    pub sndbuf: Option<usize>,
    /// `--tenants` VM count for the `tenants` scenario.
    pub tenants: usize,
    /// `--cores` simulated core count for the `tenants` scenario.
    pub cores: usize,
    /// `--budget` cluster power budget in watts for `tenants`, if given
    /// (the scenario default applies otherwise).
    pub budget_w: Option<f64>,
    /// `--quantum` per-tenant scheduling credit in uops for `tenants`,
    /// if given.
    pub quantum_uops: Option<u64>,
    /// `--noisy` noisy-neighbor tenant count for `tenants`.
    pub noisy: usize,
    /// `--mix` comma-separated benchmark mix for `tenants` (empty =
    /// the scenario's default mix).
    pub mix: Vec<String>,
    /// `--arbiter` power-cap arbitration policy for `tenants`
    /// (`waterfill` or `priority`).
    pub arbiter: String,
    /// `--metrics`: append the telemetry exposition to `tenants` output.
    pub metrics: bool,
    /// `--log-json`: emit `serve` trace events as JSON lines instead of
    /// the human-readable form.
    pub log_json: bool,
    /// `--json`: emit the `lint` report as machine-readable JSON, the
    /// `metrics` scrape as structured JSON, or (for `bench`) write one
    /// `BENCH_<area>.json` record per area.
    pub json: bool,
    /// `--areas` comma-separated bench-area subset (empty = all).
    pub areas: Vec<String>,
    /// `--iters` timed iterations per bench area.
    pub iters: usize,
    /// `--warmup` untimed iterations per bench area.
    pub warmup: usize,
    /// `--profile`: append the `timed_span!` hot-path table to `bench`
    /// output.
    pub profile: bool,
    /// `--gate`: make `bench` judge its records against the calibrated
    /// thresholds (exit 1 on findings, loud skip on a noisy machine).
    pub gate: bool,
    /// `--multiplier` gate headroom override for `bench --gate`
    /// (default 5.0; ci.sh passes 2.0 under `LIVEPHASE_BENCH_STRICT`).
    pub multiplier: Option<f64>,
    /// `--power-model` backend (`analytic` | `linear` | `tree`) for
    /// `repro`, `serve`, `tenants`, and `power-zoo`; learned backends
    /// are trained deterministically from the committed training set.
    pub power_model: String,
    /// `--compare <dir-a> <dir-b>` for `bench`: diff two directories of
    /// `BENCH_*.json` records instead of running the harness.
    pub compare: Option<(String, String)>,
    /// `--baseline <file>` for `lint`: a committed `lint --json` report;
    /// findings it records are reported but do not gate.
    pub baseline: Option<String>,
}

impl Default for Parsed {
    fn default() -> Self {
        Self {
            command: Command::Help,
            target: None,
            seed: 42,
            length: None,
            predictor: "gpht:8:128".to_owned(),
            policy: "gpht".to_owned(),
            out: None,
            port: 0,
            shards: 4,
            max_conns: 256,
            exit_after_conns: None,
            read_timeout_ms: 5_000,
            conns: 8,
            window: 64,
            bench: Vec::new(),
            no_check: false,
            reactor: false,
            max_outbound_bytes: 256 * 1024,
            sndbuf: None,
            tenants: 8,
            cores: 2,
            budget_w: None,
            quantum_uops: None,
            noisy: 0,
            mix: Vec::new(),
            arbiter: "waterfill".to_owned(),
            metrics: false,
            log_json: false,
            json: false,
            areas: Vec::new(),
            iters: 30,
            warmup: 3,
            profile: false,
            gate: false,
            multiplier: None,
            power_model: "analytic".to_owned(),
            compare: None,
            baseline: None,
        }
    }
}

/// Parses a command line (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands/options, missing values,
/// or unparsable numbers.
pub fn parse(argv: &[String]) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut it = argv.iter().peekable();

    let Some(cmd) = it.next() else {
        return Ok(parsed); // no args -> help
    };
    parsed.command = match cmd.as_str() {
        "list" => Command::List,
        "characterize" => Command::Characterize,
        "predict" => Command::Predict,
        "govern" => Command::Govern,
        "export" => Command::Export,
        "replay" => Command::Replay,
        "repro" => Command::Repro,
        "serve" => Command::Serve,
        "tenants" => Command::Tenants,
        "serve-bench" => Command::ServeBench,
        "metrics" => Command::Metrics,
        "lint" => Command::Lint,
        "bench" => Command::Bench,
        "power-zoo" => Command::PowerZoo,
        "help" | "--help" | "-h" => Command::Help,
        other => {
            return Err(CliError::new(format!(
                "unknown command {other:?}; run `livephase help`"
            )))
        }
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                parsed.seed = take_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| CliError::new(format!("--seed: {e}")))?
            }
            "--length" => {
                let v: usize = take_value(&mut it, "--length")?
                    .parse()
                    .map_err(|e| CliError::new(format!("--length: {e}")))?;
                if v == 0 {
                    return Err(CliError::new("--length must be at least 1"));
                }
                parsed.length = Some(v);
            }
            "--predictor" => parsed.predictor = take_value(&mut it, "--predictor")?,
            "--policy" => parsed.policy = take_value(&mut it, "--policy")?,
            "--out" => parsed.out = Some(take_value(&mut it, "--out")?),
            "--port" => parsed.port = parse_num(&mut it, "--port")?,
            "--shards" => {
                parsed.shards = parse_num(&mut it, "--shards")?;
                if parsed.shards == 0 {
                    return Err(CliError::new("--shards must be at least 1"));
                }
            }
            "--max-conns" => {
                parsed.max_conns = parse_num(&mut it, "--max-conns")?;
                if parsed.max_conns == 0 {
                    return Err(CliError::new("--max-conns must be at least 1"));
                }
            }
            "--exit-after-conns" => {
                parsed.exit_after_conns = Some(parse_num(&mut it, "--exit-after-conns")?);
            }
            "--read-timeout-ms" => {
                parsed.read_timeout_ms = parse_num(&mut it, "--read-timeout-ms")?;
                if parsed.read_timeout_ms == 0 {
                    return Err(CliError::new("--read-timeout-ms must be at least 1"));
                }
            }
            "--conns" => {
                parsed.conns = parse_num(&mut it, "--conns")?;
                if parsed.conns == 0 {
                    return Err(CliError::new("--conns must be at least 1"));
                }
            }
            "--window" => {
                parsed.window = parse_num(&mut it, "--window")?;
                if parsed.window == 0 {
                    return Err(CliError::new("--window must be at least 1"));
                }
            }
            "--bench" => {
                parsed.bench = take_value(&mut it, "--bench")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--no-check" => parsed.no_check = true,
            "--reactor" => parsed.reactor = true,
            "--tenants" => {
                parsed.tenants = parse_num(&mut it, "--tenants")?;
                if parsed.tenants == 0 {
                    return Err(CliError::new("--tenants must be at least 1"));
                }
            }
            "--cores" => {
                parsed.cores = parse_num(&mut it, "--cores")?;
                if parsed.cores == 0 {
                    return Err(CliError::new("--cores must be at least 1"));
                }
            }
            "--budget" => {
                let v: f64 = parse_num(&mut it, "--budget")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(CliError::new("--budget must be a positive number of watts"));
                }
                parsed.budget_w = Some(v);
            }
            "--quantum" => {
                let v: u64 = parse_num(&mut it, "--quantum")?;
                if v == 0 {
                    return Err(CliError::new("--quantum must be at least 1 uop"));
                }
                parsed.quantum_uops = Some(v);
            }
            "--noisy" => parsed.noisy = parse_num(&mut it, "--noisy")?,
            "--mix" => {
                parsed.mix = take_value(&mut it, "--mix")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--arbiter" => parsed.arbiter = take_value(&mut it, "--arbiter")?,
            "--metrics" => parsed.metrics = true,
            "--max-outbound" => {
                parsed.max_outbound_bytes = parse_num(&mut it, "--max-outbound")?;
                if parsed.max_outbound_bytes == 0 {
                    return Err(CliError::new("--max-outbound must be at least 1"));
                }
            }
            "--sndbuf" => {
                let v: usize = parse_num(&mut it, "--sndbuf")?;
                if v == 0 {
                    return Err(CliError::new("--sndbuf must be at least 1"));
                }
                parsed.sndbuf = Some(v);
            }
            "--log-json" => parsed.log_json = true,
            "--json" => parsed.json = true,
            "--areas" => {
                parsed.areas = take_value(&mut it, "--areas")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--iters" => {
                parsed.iters = parse_num(&mut it, "--iters")?;
                if parsed.iters == 0 {
                    return Err(CliError::new("--iters must be at least 1"));
                }
            }
            "--warmup" => parsed.warmup = parse_num(&mut it, "--warmup")?,
            "--profile" => parsed.profile = true,
            "--gate" => parsed.gate = true,
            "--multiplier" => {
                let v: f64 = parse_num(&mut it, "--multiplier")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(CliError::new("--multiplier must be a positive number"));
                }
                parsed.multiplier = Some(v);
            }
            "--power-model" => {
                let v = take_value(&mut it, "--power-model")?;
                if !matches!(v.as_str(), "analytic" | "linear" | "tree") {
                    return Err(CliError::new(format!(
                        "--power-model must be analytic, linear, or tree; got {v:?}"
                    )));
                }
                parsed.power_model = v;
            }
            "--baseline" => parsed.baseline = Some(take_value(&mut it, "--baseline")?),
            "--compare" => {
                let a = take_value(&mut it, "--compare")?;
                let b = it.next().cloned().ok_or_else(|| {
                    CliError::new("--compare requires two directories: <dir-a> <dir-b>")
                })?;
                if a.starts_with('-') || b.starts_with('-') {
                    return Err(CliError::new(
                        "--compare requires two directories: <dir-a> <dir-b>",
                    ));
                }
                parsed.compare = Some((a, b));
            }
            other if other.starts_with('-') => {
                return Err(CliError::new(format!("unknown option {other:?}")))
            }
            positional => {
                if parsed.target.is_some() {
                    return Err(CliError::new(format!(
                        "unexpected extra argument {positional:?}"
                    )));
                }
                parsed.target = Some(positional.to_owned());
            }
        }
    }

    // Per-command positional requirements.
    let needs_target = matches!(
        parsed.command,
        Command::Characterize
            | Command::Predict
            | Command::Govern
            | Command::Export
            | Command::Replay
            | Command::Repro
            | Command::ServeBench
            | Command::Metrics
    );
    if needs_target && parsed.target.is_none() {
        return Err(CliError::new(format!(
            "{cmd} requires an argument; run `livephase help`"
        )));
    }
    if parsed.command == Command::Export && parsed.out.is_none() {
        return Err(CliError::new("export requires --out <file>"));
    }
    if parsed.command == Command::Lint && parsed.target.is_some() {
        return Err(CliError::new(
            "lint takes no argument; it scans the enclosing workspace",
        ));
    }
    if parsed.command == Command::Bench && parsed.target.is_some() {
        return Err(CliError::new(
            "bench takes no argument; use --areas to select a subset",
        ));
    }
    if parsed.command == Command::PowerZoo && parsed.target.is_some() {
        return Err(CliError::new(
            "power-zoo takes no argument; use --seed to vary the run",
        ));
    }
    if parsed.compare.is_some() && parsed.command != Command::Bench {
        return Err(CliError::new("--compare only applies to bench"));
    }
    if parsed.baseline.is_some() && parsed.command != Command::Lint {
        return Err(CliError::new("--baseline only applies to lint"));
    }
    Ok(parsed)
}

fn take_value(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
}

fn parse_num<T: std::str::FromStr>(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    take_value(it, flag)?
        .parse()
        .map_err(|e| CliError::new(format!("{flag}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_a_full_command() {
        let p = parse(&argv(
            "predict applu_in --seed 7 --length 100 --predictor gpht:4:64",
        ))
        .unwrap();
        assert_eq!(p.command, Command::Predict);
        assert_eq!(p.target.as_deref(), Some("applu_in"));
        assert_eq!(p.seed, 7);
        assert_eq!(p.length, Some(100));
        assert_eq!(p.predictor, "gpht:4:64");
    }

    #[test]
    fn defaults_apply() {
        let p = parse(&argv("govern swim_in")).unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.policy, "gpht");
        assert_eq!(p.length, None);
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn rejects_unknown_command_and_option() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("list --frobnicate")).is_err());
    }

    #[test]
    fn rejects_missing_requirements() {
        assert!(parse(&argv("predict")).is_err());
        assert!(parse(&argv("export applu_in")).is_err());
        assert!(parse(&argv("predict a b")).is_err());
        assert!(parse(&argv("predict applu_in --seed")).is_err());
        assert!(parse(&argv("predict applu_in --seed banana")).is_err());
        assert!(parse(&argv("predict applu_in --length 0")).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let p = parse(&argv(
            "serve --port 9626 --shards 2 --max-conns 16 --exit-after-conns 3 --read-timeout-ms 250",
        ))
        .unwrap();
        assert_eq!(p.command, Command::Serve);
        assert_eq!(p.port, 9626);
        assert_eq!(p.shards, 2);
        assert_eq!(p.max_conns, 16);
        assert_eq!(p.exit_after_conns, Some(3));
        assert_eq!(p.read_timeout_ms, 250);
        // Defaults when flags are absent.
        let p = parse(&argv("serve")).unwrap();
        assert_eq!(p.port, 0);
        assert_eq!(p.shards, 4);
        assert_eq!(p.exit_after_conns, None);
    }

    #[test]
    fn parses_serve_bench() {
        let p = parse(&argv(
            "serve-bench 127.0.0.1:9626 --conns 4 --window 32 --bench applu_in,swim_in --no-check",
        ))
        .unwrap();
        assert_eq!(p.command, Command::ServeBench);
        assert_eq!(p.target.as_deref(), Some("127.0.0.1:9626"));
        assert_eq!(p.conns, 4);
        assert_eq!(p.window, 32);
        assert_eq!(p.bench, vec!["applu_in".to_owned(), "swim_in".to_owned()]);
        assert!(p.no_check);
    }

    #[test]
    fn parses_serve_log_json_and_metrics() {
        let p = parse(&argv("serve --log-json")).unwrap();
        assert!(p.log_json);
        assert!(!parse(&argv("serve")).unwrap().log_json);
        let p = parse(&argv("metrics 127.0.0.1:9626")).unwrap();
        assert_eq!(p.command, Command::Metrics);
        assert_eq!(p.target.as_deref(), Some("127.0.0.1:9626"));
        assert!(parse(&argv("metrics")).is_err(), "address is required");
    }

    #[test]
    fn rejects_bad_serve_arguments() {
        assert!(parse(&argv("serve-bench")).is_err(), "address is required");
        assert!(parse(&argv("serve --shards 0")).is_err());
        assert!(parse(&argv("serve --max-conns 0")).is_err());
        assert!(parse(&argv("serve --port 70000")).is_err());
        assert!(parse(&argv("serve-bench 1.2.3.4:5 --conns 0")).is_err());
        assert!(parse(&argv("serve-bench 1.2.3.4:5 --window 0")).is_err());
        assert!(parse(&argv("serve --read-timeout-ms 0")).is_err());
        assert!(parse(&argv("serve --max-outbound 0")).is_err());
        assert!(parse(&argv("serve --sndbuf 0")).is_err());
    }

    #[test]
    fn parses_serve_mode_flags() {
        let p = parse(&argv("serve")).unwrap();
        assert!(!p.reactor, "the reactor flag defaults off");
        assert_eq!(p.max_outbound_bytes, 256 * 1024);
        assert_eq!(p.sndbuf, None);
        let p = parse(&argv("serve --reactor --max-outbound 65536 --sndbuf 8192")).unwrap();
        assert!(p.reactor);
        assert_eq!(p.max_outbound_bytes, 65_536);
        assert_eq!(p.sndbuf, Some(8_192));
        let p = parse(&argv("serve-bench 127.0.0.1:9626 --conns 5000 --reactor")).unwrap();
        assert!(p.reactor, "serve-bench --reactor selects many-conn mode");
        assert!(
            parse(&argv("serve --blocking")).is_err(),
            "the removed blocking engine is no longer a flag"
        );
    }

    #[test]
    fn parses_tenants() {
        let p = parse(&argv(
            "tenants --tenants 64 --cores 8 --budget 75 --noisy 8 --length 4 \
             --quantum 7000000 --arbiter priority --mix applu_in,mcf_inp --metrics",
        ))
        .unwrap();
        assert_eq!(p.command, Command::Tenants);
        assert_eq!(p.tenants, 64);
        assert_eq!(p.cores, 8);
        assert_eq!(p.budget_w, Some(75.0));
        assert_eq!(p.noisy, 8);
        assert_eq!(p.length, Some(4));
        assert_eq!(p.quantum_uops, Some(7_000_000));
        assert_eq!(p.arbiter, "priority");
        assert_eq!(p.mix, vec!["applu_in".to_owned(), "mcf_inp".to_owned()]);
        assert!(p.metrics);
        // Defaults when flags are absent.
        let p = parse(&argv("tenants")).unwrap();
        assert_eq!(p.tenants, 8);
        assert_eq!(p.cores, 2);
        assert_eq!(p.budget_w, None);
        assert_eq!(p.arbiter, "waterfill");
        assert!(p.mix.is_empty() && !p.metrics);
        // Degenerate values are rejected at parse time.
        assert!(parse(&argv("tenants --tenants 0")).is_err());
        assert!(parse(&argv("tenants --cores 0")).is_err());
        assert!(parse(&argv("tenants --budget 0")).is_err());
        assert!(parse(&argv("tenants --budget nan")).is_err());
        assert!(parse(&argv("tenants --quantum 0")).is_err());
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(!e.to_string().is_empty());
        assert!(e.message().contains("frobnicate"));
        assert_eq!(e.code(), 2, "usage errors exit 2");
        assert_eq!(CliError::gate("report").code(), 1, "gate failures exit 1");
    }

    #[test]
    fn parses_bench() {
        let p = parse(&argv("bench")).unwrap();
        assert_eq!(p.command, Command::Bench);
        assert!(p.areas.is_empty());
        assert_eq!(p.iters, 30);
        assert_eq!(p.warmup, 3);
        assert!(!p.json && !p.profile && !p.gate);
        assert_eq!(p.multiplier, None);
        let p = parse(&argv(
            "bench --areas wire_encode,engine_step --iters 10 --warmup 1 \
             --json --profile --gate --multiplier 2 --out results",
        ))
        .unwrap();
        assert_eq!(
            p.areas,
            vec!["wire_encode".to_owned(), "engine_step".to_owned()]
        );
        assert_eq!(p.iters, 10);
        assert_eq!(p.warmup, 1);
        assert!(p.json && p.profile && p.gate);
        assert_eq!(p.multiplier, Some(2.0));
        assert_eq!(p.out.as_deref(), Some("results"));
        assert!(
            parse(&argv("bench extra")).is_err(),
            "bench takes no target"
        );
        assert!(parse(&argv("bench --iters 0")).is_err());
        assert!(parse(&argv("bench --multiplier 0")).is_err());
        assert!(parse(&argv("bench --multiplier nan")).is_err());
    }

    #[test]
    fn parses_power_model_flag() {
        let p = parse(&argv("repro power_cap --power-model linear")).unwrap();
        assert_eq!(p.power_model, "linear");
        assert_eq!(parse(&argv("tenants")).unwrap().power_model, "analytic");
        let p = parse(&argv("power-zoo --seed 7 --power-model tree")).unwrap();
        assert_eq!(p.command, Command::PowerZoo);
        assert_eq!(p.seed, 7);
        assert_eq!(p.power_model, "tree");
        assert!(parse(&argv("serve --power-model perceptron")).is_err());
        assert!(parse(&argv("power-zoo extra")).is_err());
    }

    #[test]
    fn parses_bench_compare() {
        let p = parse(&argv("bench --compare results/a results/b")).unwrap();
        assert_eq!(
            p.compare,
            Some(("results/a".to_owned(), "results/b".to_owned()))
        );
        assert!(parse(&argv("bench --compare results/a")).is_err());
        assert!(parse(&argv("bench --compare results/a --json")).is_err());
        assert!(
            parse(&argv("lint --compare a b")).is_err(),
            "--compare is bench-only"
        );
    }

    #[test]
    fn parses_lint() {
        let p = parse(&argv("lint")).unwrap();
        assert_eq!(p.command, Command::Lint);
        assert!(!p.json);
        let p = parse(&argv("lint --json")).unwrap();
        assert!(p.json);
        assert!(parse(&argv("lint extra")).is_err(), "lint takes no target");
    }

    #[test]
    fn parses_lint_baseline() {
        let p = parse(&argv("lint --json --baseline results/lint/baseline.json")).unwrap();
        assert_eq!(p.baseline.as_deref(), Some("results/lint/baseline.json"));
        assert_eq!(parse(&argv("lint")).unwrap().baseline, None);
        assert!(parse(&argv("lint --baseline")).is_err(), "value required");
        assert!(
            parse(&argv("bench --baseline x.json")).is_err(),
            "--baseline is lint-only"
        );
    }
}
