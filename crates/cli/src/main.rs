//! The `livephase` command-line entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match livephase_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
