//! The `livephase` command-line entry point.
//!
//! Exit codes: 0 on success; 1 when a gate command (`lint`) completed
//! and found violations, with the report on stdout; 2 for usage, I/O,
//! and other operational errors, reported on stderr.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match livephase_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            if e.code() == 1 {
                // A gate failure's message is the report itself.
                println!("{e}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(e.code());
        }
    }
}
