//! Regenerates Figure 10 of the paper and verifies its shape claims.
use livephase_experiments::{fig10, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig10::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig10", &fig10::check(&fig)));
}
