//! Runs every ablation study (design-choice probes beyond the paper's
//! published figures) and verifies their expected shapes.

use livephase_experiments::ablations::{
    confidence, family_tour, gphr_depth, granularity, oracle_gap, overheads, pht_organization,
    sampling_domain, selector, upc_pitfall,
};
use livephase_experiments::{report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let mut failures = 0;

    let a = gphr_depth::run(seed);
    println!("{a}");
    failures += report_violations("ablation:gphr_depth", &gphr_depth::check(&a));

    let a = upc_pitfall::run(seed);
    println!("{a}");
    failures += report_violations("ablation:upc_pitfall", &upc_pitfall::check(&a));

    let a = oracle_gap::run(seed);
    println!("{a}");
    failures += report_violations("ablation:oracle_gap", &oracle_gap::check(&a));

    let a = overheads::run(seed);
    println!("{a}");
    failures += report_violations("ablation:overheads", &overheads::check(&a));

    let a = granularity::run(seed);
    println!("{a}");
    failures += report_violations("ablation:granularity", &granularity::check(&a));

    let a = selector::run(seed);
    println!("{a}");
    failures += report_violations("ablation:selector", &selector::check(&a));

    let a = pht_organization::run(seed);
    println!("{a}");
    failures += report_violations("ablation:pht_organization", &pht_organization::check(&a));

    let a = confidence::run(seed);
    println!("{a}");
    failures += report_violations("ablation:confidence", &confidence::check(&a));

    let a = sampling_domain::run(seed);
    println!("{a}");
    failures += report_violations("ablation:sampling_domain", &sampling_domain::check(&a));

    let a = family_tour::run(seed);
    println!("{a}");
    failures += report_violations("ablation:family_tour", &family_tour::check(&a));

    std::process::exit(i32::from(failures > 0));
}
