//! Regenerates Figure 06 of the paper and verifies its shape claims.
use livephase_experiments::{fig06, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig06::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig06", &fig06::check(&fig)));
}
