//! Regenerates Figure 04 of the paper and verifies its shape claims.
use livephase_experiments::{fig04, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig04::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig04", &fig04::check(&fig)));
}
