//! Regenerates Figure 12 of the paper and verifies its shape claims.
use livephase_experiments::{fig12, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig12::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig12", &fig12::check(&fig)));
}
