//! Regenerates Figure 05 of the paper and verifies its shape claims.
use livephase_experiments::{fig05, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig05::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig05", &fig05::check(&fig)));
}
