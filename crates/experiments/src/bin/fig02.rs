//! Regenerates Figure 02 of the paper and verifies its shape claims.
use livephase_experiments::{fig02, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig02::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig02", &fig02::check(&fig)));
}
