//! Regenerates Figure 11 of the paper and verifies its shape claims.
use livephase_experiments::{fig11, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig11::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig11", &fig11::check(&fig)));
}
