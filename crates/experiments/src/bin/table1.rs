//! Regenerates Table 1 of the paper and verifies its shape claims.
use livephase_experiments::{report_violations, table1};

fn main() {
    let t = table1::run();
    println!("{t}");
    std::process::exit(report_violations("table1", &table1::check(&t)));
}
