//! Regenerates Figure 03 of the paper and verifies its shape claims.
use livephase_experiments::{fig03, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig03::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig03", &fig03::check(&fig)));
}
