//! Regenerates Figure 13 of the paper and verifies its shape claims.
use livephase_experiments::{fig13, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig13::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig13", &fig13::check(&fig)));
}
