//! Runs the extension experiments: the applications the paper names but
//! does not evaluate (thermal management, power capping, multiprogrammed
//! operation, duration prediction).

use livephase_experiments::extensions::{
    adaptive_sampling, dtm, duration, multiprogram, power_cap,
};
use livephase_experiments::{report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let mut failures = 0;

    let e = dtm::run(seed);
    println!("{e}");
    failures += report_violations("extension:dtm", &dtm::check(&e));

    let e = power_cap::run(seed);
    println!("{e}");
    failures += report_violations("extension:power_cap", &power_cap::check(&e));

    let e = multiprogram::run(seed);
    println!("{e}");
    failures += report_violations("extension:multiprogram", &multiprogram::check(&e));

    let e = duration::run(seed);
    println!("{e}");
    failures += report_violations("extension:duration", &duration::check(&e));

    let e = adaptive_sampling::run(seed);
    println!("{e}");
    failures += report_violations("extension:adaptive_sampling", &adaptive_sampling::check(&e));

    std::process::exit(i32::from(failures > 0));
}
