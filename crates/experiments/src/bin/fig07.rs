//! Regenerates Figure 07 of the paper and verifies its shape claims.
use livephase_experiments::{fig07, report_violations, seed_from_args};

fn main() {
    let seed = seed_from_args();
    let fig = fig07::run(seed);
    println!("{fig}");
    std::process::exit(report_violations("fig07", &fig07::check(&fig)));
}
