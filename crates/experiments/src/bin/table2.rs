//! Regenerates Table 2 of the paper and verifies its shape claims.
use livephase_experiments::{report_violations, table2};

fn main() {
    let t = table2::run();
    println!("{t}");
    std::process::exit(report_violations("table2", &table2::check(&t)));
}
