//! Figure 11 — runtime-phase-prediction-guided dynamic power management
//! results: normalized BIPS, power and EDP for every benchmark.

use crate::format::{pct, Table};
use crate::runs::{measure_all, Outcome};
use crate::ShapeViolations;
use livephase_workloads::{benchmark, Quadrant};
use std::fmt;

/// The Figure 11 sweep: one outcome per benchmark, sorted by decreasing
/// normalized EDP under GPHT management (the paper's x-axis order).
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// All benchmark outcomes.
    pub outcomes: Vec<Outcome>,
}

impl Figure11 {
    /// Looks up one benchmark's outcome.
    #[must_use]
    pub fn outcome(&self, name: &str) -> Option<&Outcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// Mean EDP improvement (%) over a set of benchmark names.
    #[must_use]
    pub fn mean_edp_improvement(&self, names: &[&str]) -> f64 {
        let vals: Vec<f64> = names
            .iter()
            .filter_map(|n| self.outcome(n))
            .map(|o| o.gpht_vs_baseline().edp_improvement_pct())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Runs the full-suite management sweep.
#[must_use]
pub fn run(seed: u64) -> Figure11 {
    let mut outcomes = measure_all(seed);
    outcomes.sort_by(|a, b| {
        let ea = a.gpht_vs_baseline().edp_ratio;
        let eb = b.gpht_vs_baseline().edp_ratio;
        eb.total_cmp(&ea)
    });
    Figure11 { outcomes }
}

/// Benchmarks with "non-negligible variability and power savings
/// potential": everything outside the stable, CPU-bound Q1 core. This is
/// the set the paper averages to 18 % EDP improvement.
#[must_use]
pub fn improvable_set(fig: &Figure11) -> Vec<&str> {
    fig.outcomes
        .iter()
        .filter(|o| benchmark(&o.name).is_some_and(|s| s.quadrant() != Quadrant::Q1))
        .map(|o| o.name.as_str())
        .collect()
}

/// The paper's claims about Figure 11.
#[must_use]
pub fn check(fig: &Figure11) -> ShapeViolations {
    let mut v = Vec::new();

    if fig.outcomes.len() != 33 {
        v.push(format!("expected 33 outcomes, got {}", fig.outcomes.len()));
    }

    // Q2 trivially-memory-bound pair: >60% EDP improvement.
    for name in ["swim_in", "mcf_inp"] {
        match fig.outcome(name) {
            Some(o) => {
                let e = o.gpht_vs_baseline().edp_improvement_pct();
                if e < 50.0 {
                    v.push(format!("{name}: EDP improvement {e:.1}% should be >60%"));
                }
            }
            None => v.push(format!("{name} missing")),
        }
    }

    // equake: the best Q3 improvement, ~34%.
    if let Some(o) = fig.outcome("equake_in") {
        let e = o.gpht_vs_baseline().edp_improvement_pct();
        if !(20.0..=45.0).contains(&e) {
            v.push(format!("equake EDP improvement {e:.1}% should be ~34%"));
        }
    }

    // Q1 stability: stable CPU-bound runs see little change and little
    // degradation.
    for name in ["crafty_in", "eon_cook", "sixtrack_in", "gzip_random"] {
        if let Some(o) = fig.outcome(name) {
            let c = o.gpht_vs_baseline();
            if c.edp_improvement_pct().abs() > 10.0 {
                v.push(format!(
                    "{name}: Q1 EDP change {:.1}% should be small",
                    c.edp_improvement_pct()
                ));
            }
            if c.perf_degradation_pct() > 3.0 {
                v.push(format!(
                    "{name}: Q1 degradation {:.1}% should be negligible",
                    c.perf_degradation_pct()
                ));
            }
        }
    }

    // Averages: ~18% EDP improvement at ~4% degradation over the
    // improvable set (we accept the right ballpark).
    let set = improvable_set(fig);
    let mean_edp = fig.mean_edp_improvement(&set);
    if !(12.0..=40.0).contains(&mean_edp) {
        v.push(format!(
            "mean EDP improvement over Q2-Q4 is {mean_edp:.1}%, expected ~18-27%"
        ));
    }
    let mean_deg: f64 = set
        .iter()
        .filter_map(|n| fig.outcome(n))
        .map(|o| o.gpht_vs_baseline().perf_degradation_pct())
        .sum::<f64>()
        / set.len() as f64;
    if mean_deg > 9.0 {
        v.push(format!("mean degradation {mean_deg:.1}% should be ~4-5%"));
    }
    v
}

impl Figure11 {
    /// The sweep as a normalized-metrics table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "BIPS %".into(),
            "Power %".into(),
            "EDP %".into(),
            "EDP gain %".into(),
            "pred acc %".into(),
        ]);
        for o in &self.outcomes {
            let c = o.gpht_vs_baseline();
            t.row(vec![
                o.name.clone(),
                pct(c.bips_ratio),
                pct(c.power_ratio),
                pct(c.edp_ratio),
                format!("{:.1}", c.edp_improvement_pct()),
                pct(o.gpht.prediction.accuracy()),
            ]);
        }
        t
    }
}

impl fmt::Display for Figure11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Figure 11. GPHT-guided dynamic power management, normalized to \
             the baseline unmanaged system (100% = baseline).\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
