//! Figure 5 — GPHT prediction accuracy for different numbers of PHT
//! entries.
//!
//! The paper varies the PHT from 1024 entries down to 1 on the 18
//! less-predictable benchmarks and finds: 128 entries ≈ 1024 entries,
//! observable degradation at 64, and convergence to last-value at 1 (the
//! tag virtually never matches, so the predictor always falls back).

use crate::format::{pct, Table};
use crate::predictors::accuracy_on;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig, LastValue};
use livephase_workloads::spec;
use std::fmt;

/// The benchmarks shown in the paper's Figure 5, in its x-axis order.
pub const FIGURE5_BENCHMARKS: [&str; 18] = [
    "gzip_log",
    "mcf_inp",
    "gcc_200",
    "gcc_scilab",
    "wupwise_ref",
    "gap_ref",
    "gcc_integrate",
    "gcc_expr",
    "ammp_in",
    "gcc_166",
    "parser_ref",
    "apsi_ref",
    "bzip2_program",
    "mgrid_in",
    "bzip2_source",
    "bzip2_graphic",
    "applu_in",
    "equake_in",
];

/// The PHT sizes swept, as in the paper.
pub const PHT_SIZES: [usize; 4] = [1024, 128, 64, 1];

/// Accuracy of each configuration on one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// Last-value accuracy (the convergence floor).
    pub last_value: f64,
    /// `(pht_entries, accuracy)`, largest table first.
    pub gpht: Vec<(usize, f64)>,
}

impl BenchmarkRow {
    /// GPHT accuracy at a PHT size.
    #[must_use]
    pub fn at(&self, pht_entries: usize) -> Option<f64> {
        self.gpht
            .iter()
            .find(|&&(n, _)| n == pht_entries)
            .map(|&(_, a)| a)
    }
}

/// The Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// One row per benchmark, in the paper's order.
    pub rows: Vec<BenchmarkRow>,
}

/// Runs the PHT-size sweep.
#[must_use]
pub fn run(seed: u64) -> Figure5 {
    let rows = FIGURE5_BENCHMARKS
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let last_value = accuracy_on(&mut LastValue::new(), &trace).accuracy();
            let gpht = PHT_SIZES
                .iter()
                .map(|&entries| {
                    let mut p = Gpht::new(GphtConfig {
                        gphr_depth: 8,
                        pht_entries: entries,
                    });
                    (entries, accuracy_on(&mut p, &trace).accuracy())
                })
                .collect();
            BenchmarkRow {
                name: (*name).to_owned(),
                last_value,
                gpht,
            }
        })
        .collect();
    Figure5 { rows }
}

/// The paper's claims: 128 ≈ 1024; 64 observably worse on the variable
/// runs; 1 entry ≈ last value.
#[must_use]
pub fn check(fig: &Figure5) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &fig.rows {
        let a1024 = r.at(1024).unwrap_or(0.0);
        let a128 = r.at(128).unwrap_or(0.0);
        let a1 = r.at(1).unwrap_or(0.0);
        if (a128 - a1024).abs() > 0.03 {
            v.push(format!(
                "{}: PHT 128 ({a128:.3}) should track PHT 1024 ({a1024:.3})",
                r.name
            ));
        }
        if (a1 - r.last_value).abs() > 0.02 {
            v.push(format!(
                "{}: PHT 1 ({a1:.3}) should converge to last value ({:.3})",
                r.name, r.last_value
            ));
        }
    }
    // Observable degradation with 64 entries on the most variable runs.
    let mut degraded = 0;
    for name in spec::variable_six() {
        if let Some(r) = fig.rows.iter().find(|r| r.name == name) {
            let a128 = r.at(128).unwrap_or(0.0);
            let a64 = r.at(64).unwrap_or(0.0);
            if a128 - a64 > 0.01 {
                degraded += 1;
            }
        }
    }
    if degraded < 3 {
        v.push(format!(
            "PHT 64 should observably degrade on the variable benchmarks \
             (only {degraded}/6 degraded)"
        ));
    }
    v
}

impl Figure5 {
    /// The sweep as an accuracy table (percent).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut header = vec!["benchmark".to_owned(), "LastValue".to_owned()];
        header.extend(PHT_SIZES.iter().map(|n| format!("PHT:{n}")));
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![r.name.clone(), pct(r.last_value)];
            row.extend(PHT_SIZES.iter().map(|&n| pct(r.at(n).unwrap_or(0.0))));
            t.row(row);
        }
        t
    }
}

impl fmt::Display for Figure5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Figure 5. GPHT prediction accuracy (%) for different number of \
             PHT entries (GPHR depth 8).\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.rows.len(), 18);
    }
}
