//! Plain-text table rendering shared by the experiment drivers.

use std::fmt::Write as _;

/// A simple fixed-width ASCII table builder.
///
/// ```
/// use livephase_experiments::format::Table;
/// let mut t = Table::new(vec!["bench".into(), "acc %".into()]);
/// t.row(vec!["applu_in".into(), "92.1".into()]);
/// let s = t.render();
/// assert!(s.contains("applu_in"));
/// assert!(s.contains("acc %"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // First column left-aligned, the rest right-aligned
                // (labels left, numbers right).
                if i == 0 {
                    let _ = write!(out, "{c:<w$}", w = width[i]);
                } else {
                    let _ = write!(out, "{c:>w$}", w = width[i]);
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (no quoting — cells must not contain
    /// commas, which is true of all experiment outputs).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |row: &[String]| row.join(",");
        let _ = writeln!(out, "{}", esc(&self.header));
        for row in &self.rows {
            let _ = writeln!(out, "{}", esc(row));
        }
        out
    }
}

/// Renders a numeric series as a unicode sparkline (8 levels), scaled to
/// the series' own min/max. Empty series render as an empty string;
/// constant series render at the lowest level.
///
/// ```
/// use livephase_experiments::format::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0]);
/// assert_eq!(s.chars().count(), 6);
/// ```
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = series.iter().copied().fold(f64::INFINITY, f64::min);
    let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    series
        .iter()
        .map(|&v| {
            if span <= 0.0 {
                LEVELS[0]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

/// Formats a fraction as a percentage with one decimal, e.g. `92.3`.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "10.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with(" 1.0"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x".into(), "1".into()]);
        assert_eq!(t.to_csv(), "a,b\nx,1\n");
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.923), "92.3");
        assert_eq!(num(1.23456, 2), "1.23");
    }

    #[test]
    fn sparkline_scales_and_degenerates() {
        let s = sparkline(&[0.0, 7.0]);
        assert_eq!(s, "▁█");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]).chars().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
