//! Figure 4 — phase prediction accuracies for all experimented prediction
//! techniques over all 33 SPEC runs.

use crate::format::{pct, Table};
use crate::predictors::{accuracy_on, figure4_lineup};
use crate::ShapeViolations;
use livephase_governor::par_map;
use livephase_workloads::{registry, spec};
use std::fmt;

/// Accuracy of every predictor on one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// `(predictor name, accuracy in [0,1])`, in Figure 4 legend order.
    pub accuracies: Vec<(String, f64)>,
}

impl BenchmarkRow {
    /// Accuracy of a named predictor.
    #[must_use]
    pub fn accuracy_of(&self, predictor: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(n, _)| n == predictor)
            .map(|&(_, a)| a)
    }
}

/// The full Figure 4 data set.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// One row per benchmark, sorted by decreasing last-value accuracy
    /// (the paper's x-axis ordering).
    pub rows: Vec<BenchmarkRow>,
}

impl Figure4 {
    /// Looks up a benchmark row.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&BenchmarkRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Evaluates the Figure 4 line-up over the whole registry, one worker
/// thread per benchmark (each is seeded independently, so the parallel
/// sweep matches the sequential one row-for-row).
#[must_use]
pub fn run(seed: u64) -> Figure4 {
    let specs = registry();
    let mut rows: Vec<BenchmarkRow> = par_map(&specs, |spec| {
        let trace = spec.generate(seed);
        let accuracies = figure4_lineup()
            .iter_mut()
            .map(|p| {
                let stats = accuracy_on(p.as_mut(), &trace);
                (p.name(), stats.accuracy())
            })
            .collect();
        BenchmarkRow {
            name: spec.name().to_owned(),
            accuracies,
        }
    });
    rows.sort_by(|a, b| {
        let la = a.accuracy_of("LastValue").unwrap_or(0.0);
        let lb = b.accuracy_of("LastValue").unwrap_or(0.0);
        lb.total_cmp(&la)
    });
    Figure4 { rows }
}

/// The paper's headline claims about Figure 4.
#[must_use]
pub fn check(fig: &Figure4) -> ShapeViolations {
    let mut v = Vec::new();
    let gpht = "GPHT_8_1024";

    // "above 90% prediction accuracies for many of the experimented
    // benchmarks".
    let above_90 = fig
        .rows
        .iter()
        .filter(|r| r.accuracy_of(gpht).unwrap_or(0.0) > 0.90)
        .count();
    if above_90 < 20 {
        v.push(format!("GPHT > 90% on only {above_90}/33 benchmarks"));
    }

    // GPHT never loses badly to last value (worst case it reverts to it).
    for r in &fig.rows {
        let g = r.accuracy_of(gpht).unwrap_or(0.0);
        let l = r.accuracy_of("LastValue").unwrap_or(0.0);
        if g < l - 0.03 {
            v.push(format!(
                "{}: GPHT {:.3} below LastValue {:.3}",
                r.name, g, l
            ));
        }
    }

    // applu: last value mispredicts > 53%... wait, the paper says "more
    // than 53% mispredictions" for last value and "< 8%" for GPHT: > 6x.
    if let Some(r) = fig.row("applu_in") {
        let g_miss = 1.0 - r.accuracy_of(gpht).unwrap_or(0.0);
        let l_miss = 1.0 - r.accuracy_of("LastValue").unwrap_or(1.0);
        if l_miss < 0.45 {
            v.push(format!(
                "applu LastValue misprediction {l_miss:.2} should be >0.45"
            ));
        }
        if g_miss > 0.12 {
            v.push(format!(
                "applu GPHT misprediction {g_miss:.2} should be <0.12"
            ));
        }
        if l_miss / g_miss.max(1e-9) < 5.0 {
            v.push(format!(
                "applu misprediction reduction {:.1}x should be >5x",
                l_miss / g_miss.max(1e-9)
            ));
        }
    } else {
        v.push("applu_in missing".to_owned());
    }

    // Average misprediction reduction over the variable six: ~2.4x vs the
    // best statistical predictors.
    let mut ratio_sum = 0.0;
    let mut n = 0.0;
    for name in spec::variable_six() {
        if let Some(r) = fig.row(name) {
            let g_miss = 1.0 - r.accuracy_of(gpht).unwrap_or(0.0);
            let stat_miss: f64 = r
                .accuracies
                .iter()
                .filter(|(name, _)| name != gpht)
                .map(|&(_, a)| 1.0 - a)
                .fold(f64::INFINITY, f64::min);
            ratio_sum += stat_miss / g_miss.max(1e-9);
            n += 1.0;
        }
    }
    let avg_ratio = ratio_sum / n;
    if avg_ratio < 2.0 {
        v.push(format!(
            "variable-six misprediction reduction {avg_ratio:.2}x should be ~2.4x (>2x)"
        ));
    }

    // The variable six occupy the bottom of the last-value ordering.
    let tail: Vec<&str> = fig.rows[fig.rows.len() - 8..]
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    for name in spec::variable_six() {
        if !tail.contains(&name) {
            v.push(format!("{name} should be among the least LV-predictable"));
        }
    }
    v
}

impl Figure4 {
    /// The full data set as an accuracy table (percent).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut header = vec!["benchmark".to_owned()];
        if let Some(first) = self.rows.first() {
            header.extend(first.accuracies.iter().map(|(n, _)| n.clone()));
        }
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![r.name.clone()];
            row.extend(r.accuracies.iter().map(|&(_, a)| pct(a)));
            t.row(row);
        }
        t
    }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Figure 4. Phase prediction accuracies (%) for experimented \
             prediction techniques.\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.rows.len(), 33);
    }
}
