//! Shared plumbing for the dynamic-management experiments: every benchmark
//! executed under the three systems the paper compares.
//!
//! The sweep streams each benchmark straight into the platform
//! ([`BenchmarkSpec::stream`]) — no trace is materialized — and fans the
//! registry over worker threads with [`par_map`], which preserves registry
//! order and per-benchmark seeding, so the parallel sweep is
//! element-for-element identical to the sequential loop it replaced.

use livephase_governor::{par_map, NormalizedComparison, RunReport, Session};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::{registry, spec, BenchmarkSpec};

/// Looks up a registered benchmark by name.
///
/// Experiment drivers only ever name registry benchmarks, so an unknown
/// name is a programming error; this wraps the lookup-and-panic that
/// every driver used to hand-roll.
///
/// # Panics
///
/// Panics if `name` is not in the workload registry.
#[must_use]
pub fn require_benchmark(name: &str) -> BenchmarkSpec {
    spec::benchmark(name).unwrap_or_else(|| panic!("benchmark {name:?} is not registered"))
}

/// One benchmark's outcomes under baseline, reactive and GPHT management.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Benchmark name.
    pub name: String,
    /// The unmanaged run (always 1500 MHz).
    pub baseline: RunReport,
    /// Last-value reactive management.
    pub reactive: RunReport,
    /// GPHT(8, 128) proactive management — the deployed system.
    pub gpht: RunReport,
}

impl Outcome {
    /// Runs one benchmark spec under the three systems on its own
    /// Pentium M platform.
    #[must_use]
    pub fn measure(spec: &BenchmarkSpec, seed: u64) -> Self {
        let platform = PlatformConfig::pentium_m();
        Self::measure_in(&Session::new(&platform), spec, seed)
    }

    /// Runs one benchmark spec under the three systems in an existing
    /// session. Each system pulls its own stream of the spec — the
    /// workload is generated interval-by-interval, three times, and never
    /// lives in memory whole.
    #[must_use]
    pub fn measure_in(session: &Session<'_>, spec: &BenchmarkSpec, seed: u64) -> Self {
        Self {
            name: spec.name().to_owned(),
            baseline: session.baseline(spec.stream(seed)),
            reactive: session.reactive(spec.stream(seed)),
            gpht: session.gpht(spec.stream(seed)),
        }
    }

    /// GPHT management normalized to baseline.
    #[must_use]
    pub fn gpht_vs_baseline(&self) -> NormalizedComparison {
        self.gpht.compare_to(&self.baseline)
    }

    /// Reactive management normalized to baseline.
    #[must_use]
    pub fn reactive_vs_baseline(&self) -> NormalizedComparison {
        self.reactive.compare_to(&self.baseline)
    }
}

/// Measures every registered benchmark (the Figure 11 sweep), in parallel,
/// in registry order.
#[must_use]
pub fn measure_all(seed: u64) -> Vec<Outcome> {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let specs = registry();
    par_map(&specs, |spec| Outcome::measure_in(&session, spec, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_covers_three_systems() {
        let spec = require_benchmark("swim_in").with_length(100);
        let o = Outcome::measure(&spec, 1);
        assert_eq!(o.baseline.policy, "Baseline");
        assert!(o.reactive.policy.contains("Reactive"));
        assert!(o.gpht.policy.contains("GPHT"));
        // swim: memory-bound -> both managed systems save a lot of EDP.
        assert!(o.gpht_vs_baseline().edp_improvement_pct() > 30.0);
        assert!(o.reactive_vs_baseline().edp_improvement_pct() > 30.0);
    }

    #[test]
    fn measure_in_shares_the_session_platform() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let spec = require_benchmark("swim_in").with_length(60);
        let shared = Outcome::measure_in(&session, &spec, 1);
        let owned = Outcome::measure(&spec, 1);
        assert_eq!(shared.baseline, owned.baseline);
        assert_eq!(shared.reactive, owned.reactive);
        assert_eq!(shared.gpht, owned.gpht);
    }
}
