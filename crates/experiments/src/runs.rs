//! Shared plumbing for the dynamic-management experiments: every benchmark
//! executed under the three systems the paper compares.

use livephase_governor::{Manager, NormalizedComparison, RunReport};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::{registry, BenchmarkSpec};

/// One benchmark's outcomes under baseline, reactive and GPHT management.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Benchmark name.
    pub name: String,
    /// The unmanaged run (always 1500 MHz).
    pub baseline: RunReport,
    /// Last-value reactive management.
    pub reactive: RunReport,
    /// GPHT(8, 128) proactive management — the deployed system.
    pub gpht: RunReport,
}

impl Outcome {
    /// Runs one benchmark spec under the three systems.
    #[must_use]
    pub fn measure(spec: &BenchmarkSpec, seed: u64) -> Self {
        let trace = spec.generate(seed);
        let platform = PlatformConfig::pentium_m();
        Self {
            name: spec.name().to_owned(),
            baseline: Manager::baseline().run(&trace, platform.clone()),
            reactive: Manager::reactive().run(&trace, platform.clone()),
            gpht: Manager::gpht_deployed().run(&trace, platform),
        }
    }

    /// GPHT management normalized to baseline.
    #[must_use]
    pub fn gpht_vs_baseline(&self) -> NormalizedComparison {
        self.gpht.compare_to(&self.baseline)
    }

    /// Reactive management normalized to baseline.
    #[must_use]
    pub fn reactive_vs_baseline(&self) -> NormalizedComparison {
        self.reactive.compare_to(&self.baseline)
    }
}

/// Measures every registered benchmark (the Figure 11 sweep).
#[must_use]
pub fn measure_all(seed: u64) -> Vec<Outcome> {
    registry()
        .iter()
        .map(|spec| Outcome::measure(spec, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_workloads::spec;

    #[test]
    fn outcome_covers_three_systems() {
        let spec = spec::benchmark("swim_in").unwrap().with_length(100);
        let o = Outcome::measure(&spec, 1);
        assert_eq!(o.baseline.policy, "Baseline");
        assert!(o.reactive.policy.contains("Reactive"));
        assert!(o.gpht.policy.contains("GPHT"));
        // swim: memory-bound -> both managed systems save a lot of EDP.
        assert!(o.gpht_vs_baseline().edp_improvement_pct() > 30.0);
        assert!(o.reactive_vs_baseline().edp_improvement_pct() > 30.0);
    }
}
