//! Table 1 — definition of phases based on Mem/Uop rates.

use crate::format::Table;
use crate::ShapeViolations;
use livephase_core::PhaseMap;
use std::fmt;

/// The rendered Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The phase map under test.
    pub map: PhaseMap,
}

/// Builds the paper's Table 1.
#[must_use]
pub fn run() -> Table1 {
    Table1 {
        map: PhaseMap::pentium_m(),
    }
}

/// Verifies the shape claims: six phases, the exact published boundaries.
#[must_use]
pub fn check(t: &Table1) -> ShapeViolations {
    let mut v = Vec::new();
    if t.map.phase_count() != 6 {
        v.push(format!("expected 6 phases, got {}", t.map.phase_count()));
    }
    let expected = [0.005, 0.010, 0.015, 0.020, 0.030];
    if t.map.boundaries() != expected {
        v.push(format!(
            "boundaries {:?} differ from Table 1 {:?}",
            t.map.boundaries(),
            expected
        ));
    }
    v
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec!["Mem/Uop".into(), "Phase #".into()]);
        for phase in self.map.phases() {
            let (lo, hi) = self.map.interval(phase);
            let range = if lo == 0.0 {
                format!("< {hi:.3}")
            } else if hi.is_infinite() {
                format!("> {lo:.3}")
            } else {
                format!("[{lo:.3},{hi:.3})")
            };
            let label = match phase.get() {
                1 => format!("{phase} (highly cpu-bound)"),
                p if usize::from(p) == self.map.phase_count() => {
                    format!("{phase} (highly memory-bound)")
                }
                _ => phase.to_string(),
            };
            t.row(vec![range, label]);
        }
        write!(
            f,
            "Table 1. Definition of phases based on Mem/Uop rates.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_checks_clean() {
        let t = run();
        assert!(check(&t).is_empty());
        let s = t.to_string();
        assert!(s.contains("highly cpu-bound"));
        assert!(s.contains("highly memory-bound"));
        assert!(s.contains("< 0.005"));
        assert!(s.contains("> 0.030"));
    }
}
