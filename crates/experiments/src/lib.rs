//! # livephase-experiments
//!
//! One driver per table and figure of the MICRO 2006 paper. Each module
//! exposes a `run(seed)` entry point returning a printable result whose
//! `Display` output mirrors the rows/series the paper reports, plus a
//! `check(..)` routine asserting the *shape* claims the paper makes about
//! that artifact (who wins, by roughly what factor, where the crossovers
//! fall). The `repro-all` binary executes everything and regenerates the
//! data behind `EXPERIMENTS.md`.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`]  | Table 1 — Mem/Uop phase definitions |
//! | [`table2`]  | Table 2 — phase → DVFS translation |
//! | [`fig02`]   | Figure 2 — applu trace: actual vs LastValue vs GPHT |
//! | [`fig03`]   | Figure 3 — benchmark stability/savings quadrants |
//! | [`fig04`]   | Figure 4 — prediction accuracy, 6 predictors × 33 runs |
//! | [`fig05`]   | Figure 5 — GPHT accuracy vs PHT size |
//! | [`fig06`]   | Figure 6 — (UPC, Mem/Uop) space + IPCxMEM grid |
//! | [`fig07`]   | Figure 7 — metric behaviour across 6 frequencies |
//! | [`fig10`]   | Figure 10 — applu under management, with DAQ power |
//! | [`fig11`]   | Figure 11 — normalized BIPS/power/EDP, all runs |
//! | [`fig12`]   | Figure 12 — GPHT vs reactive EDP/degradation |
//! | [`fig13`]   | Figure 13 — performance-bounded conservative phases |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod extensions;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod format;
pub mod power_zoo;
pub mod predictors;
pub mod runs;
pub mod table1;
pub mod table2;

/// The seed every experiment uses unless overridden, so published numbers
/// are reproducible bit-for-bit.
pub const DEFAULT_SEED: u64 = 42;

/// Outcome of an experiment's shape checks: the list of violated claims
/// (empty = all of the paper's qualitative claims hold).
pub type ShapeViolations = Vec<String>;

/// Seed for an experiment binary: the first CLI argument if present,
/// otherwise [`DEFAULT_SEED`].
///
/// # Panics
///
/// Panics with a usage message when the argument is not an integer.
#[must_use]
pub fn seed_from_args() -> u64 {
    match std::env::args().nth(1) {
        None => DEFAULT_SEED,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("usage: <bin> [seed]; got {s:?}")),
    }
}

/// Prints an experiment's shape-check outcome and returns the exit code
/// (0 = every claim held), letting each binary double as an acceptance
/// test.
#[must_use]
pub fn report_violations(artifact: &str, violations: &[String]) -> i32 {
    if violations.is_empty() {
        println!("[{artifact}] all of the paper's shape claims hold");
        0
    } else {
        for v in violations {
            eprintln!("[{artifact}] SHAPE VIOLATION: {v}");
        }
        1
    }
}
