//! Figure 2 — actual and predicted phases for the `applu` benchmark.
//!
//! The paper's running example: a sample execution region of `applu` with
//! its Mem/Uop variation, the classified phases, and the predictions of
//! both the GPHT(8, 1024) and last-value predictors. GPHT "almost
//! perfectly" matches the phases while last value mispredicts more than a
//! third of them.

use crate::format::{num, Table};
use crate::predictors::sample_stream;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{evaluate_trace, EvaluationTrace, Gpht, GphtConfig, LastValue, PhaseMap};
use std::fmt;

/// The Figure 2 data: full-trace evaluations of the two predictors.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// GPHT(8, 1024) evaluation trace.
    pub gpht: EvaluationTrace,
    /// Last-value evaluation trace.
    pub last_value: EvaluationTrace,
    /// The interval window rendered by `Display` (mirrors the paper's
    /// 28–32 G-cycle excerpt).
    pub window: std::ops::Range<usize>,
}

/// Runs both predictors over the full `applu` trace.
///
/// # Panics
///
/// Panics if `applu_in` is missing from the registry.
#[must_use]
pub fn run(seed: u64) -> Figure2 {
    let trace = require_benchmark("applu_in").generate(seed);
    let map = PhaseMap::pentium_m();
    let stream = sample_stream(&trace, &map);
    let gpht = evaluate_trace(
        &mut Gpht::new(GphtConfig::REFERENCE),
        stream.iter().copied(),
    );
    let last_value = evaluate_trace(&mut LastValue::new(), stream.iter().copied());
    // A mid-execution window, past predictor warm-up, like the paper's.
    let end = stream.len().min(400);
    let start = end.saturating_sub(120);
    Figure2 {
        gpht,
        last_value,
        window: start..end,
    }
}

/// The paper's claims about this figure.
#[must_use]
pub fn check(fig: &Figure2) -> ShapeViolations {
    let mut v = Vec::new();
    let g = fig.gpht.stats.accuracy();
    let l = fig.last_value.stats.accuracy();
    if g < 0.85 {
        v.push(format!("GPHT accuracy {g:.3} should be ~0.92 (>0.85)"));
    }
    if l > 0.55 {
        v.push(format!(
            "last value accuracy {l:.3} should be <0.47 (applu mispredicts >53%)"
        ));
    }
    let reduction = (1.0 - l) / (1.0 - g).max(1e-9);
    if reduction < 5.0 {
        v.push(format!(
            "misprediction reduction {reduction:.1}x should exceed 5x (paper: >6x)"
        ));
    }
    // The two traces must describe the same observation stream.
    if fig.gpht.observed.len() != fig.last_value.observed.len() {
        v.push("predictors saw different streams".to_owned());
    }
    v
}

impl fmt::Display for Figure2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "interval".into(),
            "Mem/Uop".into(),
            "actual".into(),
            "GPHT_8_1024".into(),
            "LastValue".into(),
        ]);
        for i in self.window.clone() {
            let obs = &self.gpht.observed[i];
            t.row(vec![
                i.to_string(),
                num(obs.rate.get(), 4),
                obs.phase.to_string(),
                self.gpht.predicted[i].to_string(),
                self.last_value.predicted[i].to_string(),
            ]);
        }
        writeln!(
            f,
            "Figure 2. Actual and predicted phases for applu benchmark \
             (window {:?} of {} intervals).\n\n{}",
            self.window,
            self.gpht.observed.len(),
            t.render()
        )?;
        let rates: Vec<f64> = self
            .window
            .clone()
            .map(|i| self.gpht.observed[i].rate.get())
            .collect();
        let actual: Vec<f64> = self
            .window
            .clone()
            .map(|i| f64::from(self.gpht.observed[i].phase.get()))
            .collect();
        let gpht: Vec<f64> = self
            .window
            .clone()
            .map(|i| f64::from(self.gpht.predicted[i].get()))
            .collect();
        writeln!(f, "Mem/Uop  {}", crate::format::sparkline(&rates))?;
        writeln!(f, "actual   {}", crate::format::sparkline(&actual))?;
        writeln!(f, "GPHT     {}", crate::format::sparkline(&gpht))?;
        writeln!(
            f,
            "\nfull-trace accuracy: GPHT_8_1024 {} | LastValue {}",
            self.gpht.stats, self.last_value.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn display_has_window_rows() {
        let fig = run(1);
        let s = fig.to_string();
        assert!(s.contains("GPHT_8_1024"));
        assert!(s.contains("full-trace accuracy"));
        assert!(s.lines().count() > 100);
    }
}
