//! Phase prediction on multiprogrammed mixes.
//!
//! The deployed system monitors whatever the OS runs. When several
//! programs timeslice the core, the PMI handler sees their phase streams
//! spliced together. This experiment quantifies the damage and the fix:
//!
//! * a shared GPHT sees cross-program garbage in its history register;
//! * a pid-indexed family of GPHTs ([`PerProcess`]) recovers most of each
//!   program's isolated predictability, since the handler knows the pid.

use crate::format::{pct, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{evaluate, Gpht, GphtConfig, LastValue, PerProcess, PhaseMap, PhaseSample};
use livephase_workloads::{multiprogram, Job};
use std::fmt;

/// The mix used: three variable benchmarks, round-robin.
pub const MIX: [&str; 3] = ["applu_in", "equake_in", "mgrid_in"];

/// Accuracy of one prediction scheme on the mix.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme label.
    pub scheme: String,
    /// Next-phase accuracy over the interleaved stream.
    pub accuracy: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct MultiprogramExperiment {
    /// Scheduler timeslice, in sampling intervals.
    pub timeslice: usize,
    /// Context switches in the schedule.
    pub context_switches: usize,
    /// Accuracy per scheme.
    pub rows: Vec<SchemeRow>,
    /// Mean isolated (single-program) GPHT accuracy, for reference.
    pub isolated_gpht: f64,
}

/// Builds the mix and evaluates the three schemes.
#[must_use]
pub fn run(seed: u64) -> MultiprogramExperiment {
    let timeslice = 7;
    let jobs: Vec<Job> = MIX
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Job::new(
                u32::try_from(i + 1).expect("small"),
                require_benchmark(name).with_length(800).generate(seed),
            )
        })
        .collect();
    let mix = multiprogram::round_robin(&jobs, timeslice, "mix3");
    let map = PhaseMap::pentium_m();

    let samples: Vec<(u32, PhaseSample)> = mix
        .iter()
        .map(|(pid, w)| {
            (
                pid,
                PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())),
            )
        })
        .collect();

    // Shared predictors over the splice.
    let shared_gpht = evaluate(
        &mut Gpht::new(GphtConfig::DEPLOYED),
        samples.iter().map(|&(_, s)| s),
    )
    .accuracy();
    let shared_lv = evaluate(&mut LastValue::new(), samples.iter().map(|&(_, s)| s)).accuracy();

    // Per-process family: score each pid's own stream, exactly as a
    // pid-aware handler would.
    let mut family = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
    let mut pending: std::collections::HashMap<u32, livephase_core::PhaseId> =
        std::collections::HashMap::new();
    let mut total = 0u64;
    let mut correct = 0u64;
    for &(pid, s) in &samples {
        if let Some(&prev) = pending.get(&pid) {
            total += 1;
            if prev == s.phase {
                correct += 1;
            }
        }
        pending.insert(pid, family.next(pid, s));
    }
    let per_process = correct as f64 / total as f64;

    // Isolated reference: each program alone.
    let isolated: f64 = jobs
        .iter()
        .map(|j| {
            let stream = j
                .trace
                .iter()
                .map(|w| PhaseSample::new(w.mem_uop(), map.classify(w.mem_uop())));
            evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream).accuracy()
        })
        .sum::<f64>()
        / jobs.len() as f64;

    MultiprogramExperiment {
        timeslice,
        context_switches: mix.context_switches(),
        rows: vec![
            SchemeRow {
                scheme: "shared LastValue".into(),
                accuracy: shared_lv,
            },
            SchemeRow {
                scheme: "shared GPHT_8_128".into(),
                accuracy: shared_gpht,
            },
            SchemeRow {
                scheme: "per-process GPHT_8_128".into(),
                accuracy: per_process,
            },
        ],
        isolated_gpht: isolated,
    }
}

/// Per-process must recover (nearly) the isolated accuracy and beat the
/// shared predictor, which in turn beats last value.
#[must_use]
pub fn check(e: &MultiprogramExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    let acc = |name: &str| {
        e.rows
            .iter()
            .find(|r| r.scheme.starts_with(name))
            .map_or(0.0, |r| r.accuracy)
    };
    let lv = acc("shared LastValue");
    let shared = acc("shared GPHT");
    let pp = acc("per-process");
    if shared < lv {
        v.push(format!(
            "shared GPHT ({shared:.3}) should beat LastValue ({lv:.3})"
        ));
    }
    if pp < shared + 0.02 {
        v.push(format!(
            "per-process ({pp:.3}) should clearly beat shared ({shared:.3})"
        ));
    }
    if pp < e.isolated_gpht - 0.05 {
        v.push(format!(
            "per-process ({pp:.3}) should approach isolated accuracy ({:.3})",
            e.isolated_gpht
        ));
    }
    v
}

impl fmt::Display for MultiprogramExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec!["scheme".into(), "accuracy %".into()]);
        for r in &self.rows {
            t.row(vec![r.scheme.clone(), pct(r.accuracy)]);
        }
        write!(
            f,
            "Extension: multiprogrammed mix of {:?} (round-robin, timeslice \
             {}, {} context switches).\n\n{}\nisolated single-program GPHT \
             reference: {}%",
            MIX,
            self.timeslice,
            self.context_switches,
            t.render(),
            pct(self.isolated_gpht)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiprogram_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
