//! Duration-guided adaptive sampling: fewer interrupts for stable phases.
//!
//! The companion duration-prediction work exists so a manager can *skip
//! re-evaluation* while a long phase persists. With the platform's PMI
//! window re-armable from the handler, the manager stretches the next
//! window (up to 4x the 100 M-uop base) whenever its duration predictor
//! expects the current phase to continue — cutting handler invocations on
//! stable workloads at (near) zero efficiency cost.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_governor::{par_map, AdaptiveSampling, ManagerConfig, Session};
use livephase_pmsim::PlatformConfig;
use std::fmt;

/// One benchmark's plain-vs-adaptive comparison.
#[derive(Debug, Clone)]
pub struct SamplingRow {
    /// Benchmark name.
    pub name: String,
    /// Handler invocations under fixed 100 M-uop sampling.
    pub plain_pmis: usize,
    /// Handler invocations under adaptive sampling.
    pub adaptive_pmis: usize,
    /// EDP improvement vs baseline, fixed sampling (%).
    pub plain_edp_pct: f64,
    /// EDP improvement vs baseline, adaptive sampling (%).
    pub adaptive_edp_pct: f64,
}

impl SamplingRow {
    /// Interrupt-rate reduction factor.
    #[must_use]
    pub fn pmi_reduction(&self) -> f64 {
        self.plain_pmis as f64 / self.adaptive_pmis.max(1) as f64
    }
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct AdaptiveSamplingExperiment {
    /// One row per probed benchmark.
    pub rows: Vec<SamplingRow>,
}

/// The probe set: a stable run (long phases: big wins expected), the
/// paper's variable example (short phases: little to skip), and a
/// mid-pack run.
pub const BENCHMARKS: [&str; 3] = ["swim_in", "applu_in", "gzip_log"];

/// Runs each benchmark with fixed and adaptive sampling.
#[must_use]
pub fn run(seed: u64) -> AdaptiveSamplingExperiment {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let adaptive_session = session.clone().with_config(ManagerConfig {
        adaptive_sampling: Some(AdaptiveSampling::pentium_m()),
        ..ManagerConfig::pentium_m()
    });
    let rows = par_map(&BENCHMARKS, |name| {
        let bench = require_benchmark(name).with_length(600);
        let baseline = session.baseline(bench.stream(seed));
        let plain = session.gpht(bench.stream(seed));
        let adaptive = adaptive_session.run_policy(
            Box::new(livephase_governor::Proactive::gpht_deployed()),
            bench.stream(seed),
        );
        SamplingRow {
            name: (*name).to_owned(),
            plain_pmis: plain.intervals.len(),
            adaptive_pmis: adaptive.intervals.len(),
            plain_edp_pct: plain.compare_to(&baseline).edp_improvement_pct(),
            adaptive_edp_pct: adaptive.compare_to(&baseline).edp_improvement_pct(),
        }
    });
    AdaptiveSamplingExperiment { rows }
}

/// Stable workloads shed most interrupts at near-zero EDP cost; variable
/// workloads must not be hurt.
#[must_use]
pub fn check(e: &AdaptiveSamplingExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    let find = |n: &str| e.rows.iter().find(|r| r.name == n);
    if let Some(swim) = find("swim_in") {
        // The first (long) run must complete at 1x before durations are
        // learnable, so over 600 intervals the ceiling is ~2.5-3x.
        if swim.pmi_reduction() < 2.0 {
            v.push(format!(
                "swim (flat phases) should shed most interrupts, got {:.1}x",
                swim.pmi_reduction()
            ));
        }
        if (swim.plain_edp_pct - swim.adaptive_edp_pct).abs() > 2.0 {
            v.push(format!(
                "swim: adaptive sampling changed EDP by {:.1} points",
                (swim.plain_edp_pct - swim.adaptive_edp_pct).abs()
            ));
        }
    }
    for r in &e.rows {
        if r.adaptive_edp_pct < r.plain_edp_pct - 4.0 {
            v.push(format!(
                "{}: adaptive sampling costs {:.1} EDP points",
                r.name,
                r.plain_edp_pct - r.adaptive_edp_pct
            ));
        }
        if r.adaptive_pmis > r.plain_pmis {
            v.push(format!("{}: adaptive sampling added interrupts?", r.name));
        }
    }
    v
}

impl fmt::Display for AdaptiveSamplingExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "PMIs fixed".into(),
            "PMIs adaptive".into(),
            "reduction".into(),
            "EDP fixed %".into(),
            "EDP adaptive %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.plain_pmis.to_string(),
                r.adaptive_pmis.to_string(),
                format!("{:.1}x", r.pmi_reduction()),
                num(r.plain_edp_pct, 1),
                num(r.adaptive_edp_pct, 1),
            ]);
        }
        write!(
            f,
            "Extension: duration-guided adaptive sampling (PMI window \
             stretched up to 4x through predicted-stable phases).\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_sampling_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(e.rows.len(), 3);
    }
}
