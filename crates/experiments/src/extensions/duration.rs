//! Phase-duration prediction (the companion IEEE Micro work, ref \[14\]).
//!
//! Evaluates the run-length predictors on the registered benchmarks:
//! mean absolute error (in sampling intervals) of predicting each run's
//! duration at the moment it starts, against the trivial "always 1"
//! baseline a duration-oblivious manager implicitly assumes.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{DurationPredictor, DurationScheme, PhaseMap, RunLengthEncoder};
use std::fmt;

/// One benchmark's duration-prediction errors.
#[derive(Debug, Clone)]
pub struct DurationRow {
    /// Benchmark name.
    pub name: String,
    /// Completed runs observed.
    pub runs: usize,
    /// Mean run length, in intervals.
    pub mean_length: f64,
    /// MAE of the last-duration scheme.
    pub mae_last: f64,
    /// MAE of the windowed-mean scheme (window 8).
    pub mae_window: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct DurationExperiment {
    /// Rows over a mixed benchmark selection.
    pub rows: Vec<DurationRow>,
}

/// The probed benchmarks: patterned runs where duration is learnable.
pub const BENCHMARKS: [&str; 5] = [
    "applu_in",
    "equake_in",
    "mgrid_in",
    "bzip2_source",
    "gzip_log",
];

/// Streams each benchmark through both duration schemes.
#[must_use]
pub fn run(seed: u64) -> DurationExperiment {
    let map = PhaseMap::pentium_m();
    let rows = BENCHMARKS
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let phases: Vec<_> = trace.iter().map(|w| map.classify(w.mem_uop())).collect();

            // Collect ground-truth runs.
            let mut enc = RunLengthEncoder::new();
            let mut runs = Vec::new();
            for &p in &phases {
                if let Some(r) = enc.observe(p) {
                    runs.push(r);
                }
            }
            if let Some(r) = enc.finish() {
                runs.push(r);
            }

            // Score each scheme: when a run *starts*, ask for its duration.
            let score = |scheme: DurationScheme| {
                let mut pred = DurationPredictor::new(scheme);
                let mut err_sum = 0.0;
                let mut scored = 0u64;
                let mut prev_phase = None;
                for (i, &p) in phases.iter().enumerate() {
                    if prev_phase != Some(p) {
                        // A run of `p` starts at interval i: find its true
                        // length and score the standing prediction.
                        let true_len = phases[i..].iter().take_while(|&&q| q == p).count() as u64;
                        if let Some(guess) = pred.predict_duration(p) {
                            err_sum += (guess as f64 - true_len as f64).abs();
                            scored += 1;
                        }
                    }
                    pred.observe(p);
                    prev_phase = Some(p);
                }
                if scored == 0 {
                    f64::NAN
                } else {
                    err_sum / scored as f64
                }
            };

            let mean_length = runs.iter().map(|r| r.length as f64).sum::<f64>() / runs.len() as f64;
            DurationRow {
                name: (*name).to_owned(),
                runs: runs.len(),
                mean_length,
                mae_last: score(DurationScheme::LastDuration),
                mae_window: score(DurationScheme::WindowedMean { window: 8 }),
            }
        })
        .collect();
    DurationExperiment { rows }
}

/// Durations must be predictable on patterned workloads: both schemes
/// should beat the "always 1 interval" strawman handily.
#[must_use]
pub fn check(e: &DurationExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &e.rows {
        // The strawman's MAE is (mean_length - 1).
        let strawman = r.mean_length - 1.0;
        if strawman > 1.0 {
            if r.mae_last > strawman {
                v.push(format!(
                    "{}: last-duration MAE {:.2} worse than the strawman {:.2}",
                    r.name, r.mae_last, strawman
                ));
            }
            if r.mae_window > strawman {
                v.push(format!(
                    "{}: windowed MAE {:.2} worse than the strawman {:.2}",
                    r.name, r.mae_window, strawman
                ));
            }
        }
        if r.runs < 50 {
            v.push(format!(
                "{}: only {} runs — trace too short",
                r.name, r.runs
            ));
        }
    }
    // On quasi-periodic workloads the MAE should be around one interval.
    let applu = e.rows.iter().find(|r| r.name == "applu_in");
    if let Some(r) = applu {
        if r.mae_last > 1.5 {
            v.push(format!(
                "applu run lengths are near-deterministic; MAE {:.2} too high",
                r.mae_last
            ));
        }
    }
    v
}

impl fmt::Display for DurationExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "runs".into(),
            "mean len".into(),
            "MAE last".into(),
            "MAE window8".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.runs.to_string(),
                num(r.mean_length, 1),
                num(r.mae_last, 2),
                num(r.mae_window, 2),
            ]);
        }
        write!(
            f,
            "Extension: phase-duration prediction (MAE in sampling \
             intervals, scored at run start).\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(e.rows.len(), 5);
    }
}
