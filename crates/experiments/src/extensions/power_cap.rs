//! Bounding power consumption with phase predictions.
//!
//! Sweeps the cap from generous to tight on a mixed-behaviour workload and
//! verifies the cap is honoured while performance degrades gracefully.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig};
use livephase_governor::{par_map, PowerCap, PowerEstimator, Session};
use livephase_pmsim::{PlatformConfig, PowerModelKind};
use std::fmt;

/// Caps swept, in watts.
pub const CAPS: [f64; 4] = [12.0, 9.0, 6.0, 3.5];

/// One cap's outcome.
#[derive(Debug, Clone)]
pub struct CapRow {
    /// The configured cap, W.
    pub cap_w: f64,
    /// Measured average power, W.
    pub avg_power_w: f64,
    /// Measured peak interval power, W.
    pub peak_power_w: f64,
    /// Whole-run BIPS.
    pub bips: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct PowerCapExperiment {
    /// Uncapped (baseline) power and BIPS for reference.
    pub uncapped_power_w: f64,
    /// Uncapped BIPS.
    pub uncapped_bips: f64,
    /// One row per swept cap, loosest first.
    pub rows: Vec<CapRow>,
}

/// Runs applu under each cap with the default (analytic) estimator.
#[must_use]
pub fn run(seed: u64) -> PowerCapExperiment {
    run_with_model(seed, &PowerModelKind::default())
}

/// Runs applu under each cap with the given power backend pricing the
/// policy's estimator. The platform physics stays analytic — only the
/// capping policy's beliefs about per-setting power change — so the
/// measured cap/throughput trade-off isolates the estimator's quality.
#[must_use]
pub fn run_with_model(seed: u64, model: &PowerModelKind) -> PowerCapExperiment {
    let trace = require_benchmark("applu_in")
        .with_length(400)
        .generate(seed);
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let baseline = session.baseline(&trace);

    let rows = par_map(&CAPS, |&cap_w| {
        let report = session.run_policy(
            Box::new(PowerCap::new(
                Gpht::new(GphtConfig::DEPLOYED),
                PowerEstimator::for_platform(&PlatformConfig {
                    power: model.clone(),
                    ..PlatformConfig::pentium_m()
                }),
                cap_w,
            )),
            &trace,
        );
        let peak = report
            .intervals
            .iter()
            .map(livephase_governor::IntervalLog::power_w)
            .fold(0.0, f64::max);
        CapRow {
            cap_w,
            avg_power_w: report.average_power_w(),
            peak_power_w: peak,
            bips: report.bips(),
        }
    });
    PowerCapExperiment {
        uncapped_power_w: baseline.average_power_w(),
        uncapped_bips: baseline.bips(),
        rows,
    }
}

/// Every cap is honoured on average (mispredicted intervals may peak
/// past it briefly — one interval at most, like any reactive guard), and
/// tighter caps trade monotonically more performance.
#[must_use]
pub fn check(e: &PowerCapExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &e.rows {
        if r.avg_power_w > r.cap_w * 1.02 {
            v.push(format!(
                "cap {} W: average power {:.2} W breaks the bound",
                r.cap_w, r.avg_power_w
            ));
        }
    }
    for w in e.rows.windows(2) {
        if w[1].bips > w[0].bips + 1e-9 {
            v.push(format!(
                "tighter cap {} W should not run faster than {} W",
                w[1].cap_w, w[0].cap_w
            ));
        }
        if w[1].avg_power_w > w[0].avg_power_w + 1e-9 {
            v.push("power must fall with the cap".into());
        }
    }
    // The loosest cap should barely constrain the run.
    if let Some(first) = e.rows.first() {
        if first.bips < e.uncapped_bips * 0.90 {
            v.push(format!(
                "a {} W cap on a ~{:.1} W workload should be nearly free",
                first.cap_w, e.uncapped_power_w
            ));
        }
    }
    v
}

impl fmt::Display for PowerCapExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "cap [W]".into(),
            "avg power [W]".into(),
            "peak power [W]".into(),
            "BIPS".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                num(r.cap_w, 1),
                num(r.avg_power_w, 2),
                num(r.peak_power_w, 2),
                num(r.bips, 2),
            ]);
        }
        write!(
            f,
            "Extension: bounding power consumption (applu; uncapped: \
             {:.2} W at {:.2} BIPS).\n\n{}",
            self.uncapped_power_w,
            self.uncapped_bips,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_cap_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(e.rows.len(), CAPS.len());
    }
}
