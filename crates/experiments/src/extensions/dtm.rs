//! Dynamic thermal management, driven by the same phase predictions.
//!
//! Runs a hot (CPU-bound) workload three ways: unmanaged, energy-managed
//! (the Table 2 mapping, which barely slows CPU-bound code and therefore
//! barely cools it), and under the predictive [`ThermalAware`] policy with
//! a 65 °C junction limit.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig};
use livephase_governor::{ManagerConfig, PowerEstimator, Session, ThermalAware, TranslationTable};
use livephase_pmsim::{PlatformConfig, ThermalModel};
use std::fmt;

/// One system's thermal outcome.
#[derive(Debug, Clone)]
pub struct ThermalRow {
    /// System label.
    pub system: String,
    /// Peak junction temperature, °C.
    pub peak_c: f64,
    /// Whole-run BIPS.
    pub bips: f64,
    /// Average power, W.
    pub power_w: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct DtmExperiment {
    /// The junction limit given to the thermal policy.
    pub limit_c: f64,
    /// Outcomes: unmanaged, energy-managed, thermally-managed.
    pub rows: Vec<ThermalRow>,
}

/// Runs the three systems on a long CPU-bound workload.
#[must_use]
pub fn run(seed: u64) -> DtmExperiment {
    let limit_c = 65.0;
    let bench = require_benchmark("crafty_in").with_length(900);
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform).with_config(ManagerConfig {
        thermal: Some(ThermalModel::pentium_m()),
        ..ManagerConfig::pentium_m()
    });

    let unmanaged = session.run_policy(
        Box::new(livephase_governor::Baseline::new()),
        bench.stream(seed),
    );

    let energy = session.run_policy(
        Box::new(livephase_governor::Proactive::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
        )),
        bench.stream(seed),
    );

    let dtm = session.run_policy(
        Box::new(ThermalAware::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
            PowerEstimator::pentium_m(),
            ThermalModel::pentium_m(),
            limit_c,
        )),
        bench.stream(seed),
    );

    let row = |system: &str, r: &livephase_governor::RunReport| ThermalRow {
        system: system.to_owned(),
        peak_c: r.peak_temperature_c.expect("thermal tracked"),
        bips: r.bips(),
        power_w: r.average_power_w(),
    };
    DtmExperiment {
        limit_c,
        rows: vec![
            row("unmanaged", &unmanaged),
            row("energy (Table 2)", &energy),
            row("thermal-aware", &dtm),
        ],
    }
}

/// The unmanaged run must overheat; the thermal policy must hold the
/// limit while keeping as much performance as the limit allows.
#[must_use]
pub fn check(e: &DtmExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    let find = |name: &str| e.rows.iter().find(|r| r.system.starts_with(name));
    let (Some(un), Some(energy), Some(dtm)) = (find("unmanaged"), find("energy"), find("thermal"))
    else {
        return vec!["rows missing".into()];
    };
    if un.peak_c <= e.limit_c {
        v.push(format!(
            "unmanaged peak {:.1} C should exceed the {:.1} C limit",
            un.peak_c, e.limit_c
        ));
    }
    if energy.peak_c <= e.limit_c {
        v.push(format!(
            "energy management is not thermal management: CPU-bound code \
             should still exceed the limit ({:.1} C)",
            energy.peak_c
        ));
    }
    if dtm.peak_c > e.limit_c + 0.5 {
        v.push(format!(
            "thermal policy peak {:.1} C violates the {:.1} C limit",
            dtm.peak_c, e.limit_c
        ));
    }
    if dtm.bips >= un.bips {
        v.push("thermal throttling must cost some performance".into());
    }
    if dtm.bips < un.bips * 0.5 {
        v.push(format!(
            "thermal policy lost {:.0}% performance — should throttle \
             no more than the limit requires",
            (1.0 - dtm.bips / un.bips) * 100.0
        ));
    }
    v
}

impl fmt::Display for DtmExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "system".into(),
            "peak T [C]".into(),
            "BIPS".into(),
            "avg power [W]".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.system.clone(),
                num(r.peak_c, 1),
                num(r.bips, 2),
                num(r.power_w, 2),
            ]);
        }
        write!(
            f,
            "Extension: predictive dynamic thermal management \
             (crafty, {:.0} C junction limit).\n\n{}",
            self.limit_c,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtm_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
