//! Multi-tenant cluster governance under a power cap.
//!
//! The paper manages one program on one Pentium-M. This experiment runs
//! the deployed loop at datacenter shape: M tenant VMs multiplexed onto
//! K simulated cores by a credit scheduler with full counter
//! virtualization, their DVFS requests arbitrated under a cluster watt
//! budget ([`livephase_tenants`]). Three claims are checked:
//!
//! * **virtualization is lossless** — each tenant's prediction accuracy
//!   in the shared, capped cluster equals its solo uncapped run exactly
//!   (the counter streams are bit-identical, so scoring is too);
//! * **the cap holds** — measured epoch power never exceeds the budget,
//!   so cap-violation time is zero while the arbiter still has to deny
//!   requests (the budget genuinely binds);
//! * **capping re-times but never re-decides** — per-tenant execution
//!   time under the cap is no shorter than solo, and EDP moves the way
//!   the paper's thesis predicts (slowing memory-bound phases is cheap).

use crate::ShapeViolations;
use livephase_tenants::{run_scenario, ScenarioSpec};
use std::fmt;

/// One tenant's capped-cluster outcome against its solo uncapped oracle.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant id.
    pub tenant: u32,
    /// Benchmark the tenant runs.
    pub benchmark: String,
    /// Whether this tenant is an injected noisy neighbor.
    pub noisy: bool,
    /// EDP (J·s) in the capped, multiplexed cluster.
    pub capped_edp: f64,
    /// EDP (J·s) running solo and uncapped.
    pub solo_edp: f64,
    /// Execution time (s) in the capped cluster.
    pub capped_time_s: f64,
    /// Execution time (s) solo and uncapped.
    pub solo_time_s: f64,
    /// (scored, correct) prediction counts in the cluster.
    pub capped_score: (u64, u64),
    /// (scored, correct) prediction counts solo.
    pub solo_score: (u64, u64),
    /// Epochs in which the arbiter denied this tenant its request.
    pub denied_epochs: u64,
}

impl TenantRow {
    fn accuracy(score: (u64, u64)) -> f64 {
        if score.0 == 0 {
            1.0
        } else {
            score.1 as f64 / score.0 as f64
        }
    }
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct TenantsExperiment {
    /// Tenant count M.
    pub tenants: usize,
    /// Core count K.
    pub cores: usize,
    /// Cluster power budget in watts.
    pub budget_w: f64,
    /// Arbitration policy name.
    pub policy: String,
    /// Arbitration epochs the cluster ran.
    pub epochs: u64,
    /// Context switches across all cores.
    pub context_switches: u64,
    /// Seconds any epoch's measured power exceeded the budget.
    pub cap_violation_s: f64,
    /// Highest measured epoch power.
    pub peak_epoch_power_w: f64,
    /// Per-tenant outcomes.
    pub rows: Vec<TenantRow>,
}

/// Runs the capped cluster and every tenant's solo uncapped oracle.
#[must_use]
pub fn run(seed: u64) -> TenantsExperiment {
    let mut spec = ScenarioSpec::new(12, 4);
    spec.intervals = 8;
    spec.noisy = 2;
    // Four cores flat out draw ~52 W; 40 W forces the arbiter to deny.
    spec.budget_w = 40.0;
    spec.seed = seed;
    let capped = run_scenario(&spec).expect("capped cluster scenario runs");

    let rows = capped
        .tenants
        .iter()
        .map(|t| {
            let solo_report = run_scenario(&spec.solo(t.tenant)).expect("solo oracle runs");
            let solo = solo_report
                .tenants
                .first()
                .expect("solo run has one tenant");
            TenantRow {
                tenant: t.tenant,
                benchmark: t.benchmark.clone(),
                noisy: t.noisy,
                capped_edp: t.edp(),
                solo_edp: solo.edp(),
                capped_time_s: t.time_s,
                solo_time_s: solo.time_s,
                capped_score: (t.scored, t.correct),
                solo_score: (solo.scored, solo.correct),
                denied_epochs: t.denied_epochs,
            }
        })
        .collect();

    TenantsExperiment {
        tenants: capped.tenants.len(),
        cores: capped.cores,
        budget_w: capped.budget_w,
        policy: capped.policy.clone(),
        epochs: capped.epochs,
        context_switches: capped.context_switches,
        cap_violation_s: capped.cap_violation_s,
        peak_epoch_power_w: capped.peak_epoch_power_w,
        rows,
    }
}

/// The cap must hold with zero violation time while genuinely binding,
/// virtualization must keep per-tenant accuracy exactly equal to solo,
/// and capping may stretch but never shrink any tenant's time.
#[must_use]
pub fn check(e: &TenantsExperiment) -> ShapeViolations {
    let mut v = Vec::new();
    if e.cap_violation_s != 0.0 {
        v.push(format!(
            "measured power exceeded the {} W budget for {:.6} s",
            e.budget_w, e.cap_violation_s
        ));
    }
    if e.peak_epoch_power_w > e.budget_w + 1e-6 {
        v.push(format!(
            "peak epoch power {:.2} W exceeds the {} W budget",
            e.peak_epoch_power_w, e.budget_w
        ));
    }
    if e.rows.iter().map(|r| r.denied_epochs).sum::<u64>() == 0 {
        v.push("the budget never bound: no tenant was ever denied".to_owned());
    }
    for r in &e.rows {
        if r.capped_score != r.solo_score {
            v.push(format!(
                "tenant {}: cluster score {:?} != solo score {:?} \
                 (virtualization must be lossless)",
                r.tenant, r.capped_score, r.solo_score
            ));
        }
        if r.capped_time_s < r.solo_time_s * 0.999 {
            v.push(format!(
                "tenant {}: capped time {:.4} s beat solo time {:.4} s \
                 (grants only slow tenants down)",
                r.tenant, r.capped_time_s, r.solo_time_s
            ));
        }
    }
    v
}

impl fmt::Display for TenantsExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: {} tenants on {} cores under a {} W cap \
             ({} arbitration, {} epochs, {} context switches).",
            self.tenants,
            self.cores,
            self.budget_w,
            self.policy,
            self.epochs,
            self.context_switches
        )?;
        writeln!(
            f,
            "cap violation {:.3} s, peak epoch power {:.2} W\n",
            self.cap_violation_s, self.peak_epoch_power_w
        )?;
        writeln!(
            f,
            "{:>6}  {:<12} {:>5}  {:>10}  {:>10}  {:>7}  {:>7}  {:>6}",
            "tenant", "benchmark", "noisy", "EDP J.s", "solo EDP", "acc %", "solo %", "denied"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6}  {:<12} {:>5}  {:>10.2}  {:>10.2}  {:>7.1}  {:>7.1}  {:>6}",
                r.tenant,
                r.benchmark,
                if r.noisy { "yes" } else { "" },
                r.capped_edp,
                r.solo_edp,
                TenantRow::accuracy(r.capped_score) * 100.0,
                TenantRow::accuracy(r.solo_score) * 100.0,
                r.denied_epochs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_shape_holds() {
        let e = run(crate::DEFAULT_SEED);
        let violations = check(&e);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
