//! Extension experiments: the applications the paper names but does not
//! evaluate (Section 8's generality claims), demonstrated end to end.
//!
//! | Module | Claim exercised |
//! |--------|-----------------|
//! | [`dtm`] | "can be applied to ... dynamic thermal management" |
//! | [`power_cap`] | "... or bounding power consumption" |
//! | [`multiprogram`] | autonomous operation on *any* running applications, incl. timesliced mixes |
//! | [`duration`] | phase-duration prediction (the companion IEEE Micro work, ref \[14\]) |
//! | [`adaptive_sampling`] | duration predictions stretching the PMI window through stable phases |
//! | [`tenants`] | the whole loop at datacenter shape: M tenant VMs on K cores under a cluster power cap |

pub mod adaptive_sampling;
pub mod dtm;
pub mod duration;
pub mod multiprogram;
pub mod power_cap;
pub mod tenants;
