//! Figure 7 — observed UPC and Mem/Uop behaviour at six frequencies for
//! IPCxMEM grid configurations.
//!
//! The paper's Section 4 pivot: UPC depends strongly on the DVFS setting
//! for memory-bound code (up to ≈ 80 %) and not at all for CPU-bound code,
//! while Mem/Uop is virtually constant everywhere — which is why phases
//! are defined on Mem/Uop.
//!
//! The sweep here runs each configuration through the *full platform*
//! (CPU + counters), not just the timing equations: metrics come out of
//! the simulated PMCs exactly as the deployed monitor would read them.

use crate::format::{num, Table};
use crate::ShapeViolations;
use livephase_core::IntervalMetrics;
use livephase_pmsim::{Cpu, OperatingPointTable, PlatformConfig};
use livephase_workloads::{IpcxMemConfig, IpcxMemSuite};
use std::fmt;

/// The eleven legend configurations of the paper's Figure 7.
pub const LEGEND: [(f64, f64); 11] = [
    (1.9, 0.0000),
    (1.3, 0.0075),
    (0.9, 0.0125),
    (0.9, 0.0075),
    (0.9, 0.0000),
    (0.5, 0.0225),
    (0.5, 0.0025),
    (0.5, 0.0000),
    (0.1, 0.0475),
    (0.1, 0.0325),
    (0.1, 0.0000),
];

/// One configuration's metrics across all frequencies.
#[derive(Debug, Clone)]
pub struct ConfigSweep {
    /// The targeted coordinate.
    pub config: IpcxMemConfig,
    /// `(frequency MHz, UPC, Mem/Uop)` per setting, fastest first.
    pub by_frequency: Vec<(u32, f64, f64)>,
}

impl ConfigSweep {
    /// Relative UPC span across frequencies: `(max - min) / value@fastest`.
    #[must_use]
    pub fn upc_span(&self) -> f64 {
        let at_fastest = self.by_frequency.first().map_or(0.0, |&(_, u, _)| u);
        let max = self
            .by_frequency
            .iter()
            .map(|&(_, u, _)| u)
            .fold(0.0, f64::max);
        let min = self
            .by_frequency
            .iter()
            .map(|&(_, u, _)| u)
            .fold(f64::INFINITY, f64::min);
        if at_fastest == 0.0 {
            0.0
        } else {
            (max - min) / at_fastest
        }
    }

    /// Relative Mem/Uop span across frequencies.
    #[must_use]
    pub fn mem_uop_span(&self) -> f64 {
        let max = self
            .by_frequency
            .iter()
            .map(|&(_, _, m)| m)
            .fold(0.0, f64::max);
        let min = self
            .by_frequency
            .iter()
            .map(|&(_, _, m)| m)
            .fold(f64::INFINITY, f64::min);
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }
}

/// The Figure 7 sweep results.
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// One sweep per legend configuration.
    pub sweeps: Vec<ConfigSweep>,
}

/// Runs every legend configuration at every frequency through the platform.
#[must_use]
pub fn run(_seed: u64) -> Figure7 {
    let suite = IpcxMemSuite::pentium_m();
    let opps = OperatingPointTable::pentium_m();
    let sweeps = LEGEND
        .iter()
        .map(|&(upc, mem)| {
            let config = IpcxMemConfig {
                target_upc: upc,
                mem_uop: mem,
            };
            let trace = suite
                .trace(config, 4)
                .unwrap_or_else(|| panic!("legend point {} is achievable", config.name()));
            let by_frequency = opps
                .iter()
                .map(|(idx, opp)| {
                    let metrics = measure_at(&trace.intervals()[0], idx);
                    (
                        opp.frequency.mhz(),
                        metrics.upc().get(),
                        metrics.mem_uop().get(),
                    )
                })
                .collect();
            ConfigSweep {
                config,
                by_frequency,
            }
        })
        .collect();
    Figure7 { sweeps }
}

/// Executes one 100 M-uop interval at a pinned DVFS setting and reads the
/// simulated counters.
fn measure_at(work: &livephase_pmsim::IntervalWork, setting: usize) -> IntervalMetrics {
    let platform = PlatformConfig::pentium_m();
    let mut cpu = Cpu::new(&platform);
    cpu.set_dvfs(setting).expect("setting exists");
    // The DVFS transition stall happened before the interval starts;
    // re-base by reading intervals only from the PMI.
    cpu.push_work(*work);
    let pmi = cpu.run_to_pmi().expect("one full interval queued");
    pmi.metrics
}

/// The paper's claims: Mem/Uop virtually frequency-invariant everywhere;
/// CPU-bound UPC flat; memory-bound UPC rising toward ≈ 80 %.
#[must_use]
pub fn check(fig: &Figure7) -> ShapeViolations {
    let mut v = Vec::new();
    for s in &fig.sweeps {
        if s.mem_uop_span() > 0.01 {
            v.push(format!(
                "{}: Mem/Uop varies {:.1}% across frequencies (must be ~0)",
                s.config.name(),
                s.mem_uop_span() * 100.0
            ));
        }
        if s.config.mem_uop == 0.0 && s.upc_span() > 0.01 {
            v.push(format!(
                "{}: CPU-bound UPC varies {:.1}% (must be ~0)",
                s.config.name(),
                s.upc_span() * 100.0
            ));
        }
    }
    // The most memory-bound legend point moves the most, approaching 80%.
    let extreme = fig
        .sweeps
        .iter()
        .find(|s| s.config.target_upc == 0.1 && s.config.mem_uop == 0.0475);
    match extreme {
        Some(s) if s.upc_span() < 0.5 => v.push(format!(
            "most memory-bound UPC span {:.1}% should approach 80%",
            s.upc_span() * 100.0
        )),
        None => v.push("extreme legend point missing".to_owned()),
        _ => {}
    }
    // UPC monotonically rises as frequency falls for memory-flavoured
    // configurations.
    for s in &fig.sweeps {
        if s.config.mem_uop > 0.0 {
            for w in s.by_frequency.windows(2) {
                if w[1].1 < w[0].1 - 1e-9 {
                    v.push(format!(
                        "{}: UPC should not fall as frequency falls",
                        s.config.name()
                    ));
                    break;
                }
            }
        }
    }
    v
}

impl fmt::Display for Figure7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let freqs: Vec<u32> = self
            .sweeps
            .first()
            .map(|s| s.by_frequency.iter().map(|&(mhz, _, _)| mhz).collect())
            .unwrap_or_default();

        writeln!(
            f,
            "Figure 7. Observed UPC and Mem/Uop behavior at six frequencies \
             for IPCxMEM grid configurations.\n"
        )?;
        let mut header = vec!["config".to_owned()];
        header.extend(freqs.iter().map(|mhz| format!("{mhz}MHz")));
        let mut upc_t = Table::new(header.clone());
        let mut mem_t = Table::new(header);
        for s in &self.sweeps {
            let label = format!(
                "UPC={:.1}, Mem/Uop={:.4}",
                s.config.target_upc, s.config.mem_uop
            );
            let mut urow = vec![label.clone()];
            urow.extend(s.by_frequency.iter().map(|&(_, u, _)| num(u, 3)));
            upc_t.row(urow);
            let mut mrow = vec![label];
            mrow.extend(s.by_frequency.iter().map(|&(_, _, m)| num(m, 4)));
            mem_t.row(mrow);
        }
        writeln!(f, "UPC by frequency:\n{}", upc_t.render())?;
        writeln!(f, "Mem/Uop by frequency:\n{}", mem_t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.sweeps.len(), 11);
    }
}
