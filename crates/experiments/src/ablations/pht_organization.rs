//! PHT organization ablation: associative search vs direct-mapped hashing.
//!
//! The paper flags the cost of "associatively searching through a 1024
//! entry PHT" and answers by shrinking the table. The hardware-classic
//! alternative keeps the table and drops the search: hash the pattern to
//! one slot. This ablation measures the accuracy cost of conflict misses
//! (the Criterion `predictors` bench measures the latency win).

use crate::format::{pct, Table};
use crate::predictors::accuracy_on;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig, HashedGpht, HashedGphtConfig};
use livephase_workloads::spec;
use std::fmt;

/// One benchmark's organization comparison at equal storage (128 entries).
#[derive(Debug, Clone)]
pub struct OrganizationRow {
    /// Benchmark name.
    pub name: String,
    /// Fully-associative accuracy (128 entries).
    pub associative: f64,
    /// Direct-mapped (hashed) accuracy at equal storage (128 slots).
    pub hashed_equal: f64,
    /// Direct-mapped accuracy with 4x slots (512) — still far cheaper per
    /// sample than the associative search.
    pub hashed_4x: f64,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct PhtOrganizationAblation {
    /// One row per variable benchmark.
    pub rows: Vec<OrganizationRow>,
}

/// Compares the two organizations over the variable six.
#[must_use]
pub fn run(seed: u64) -> PhtOrganizationAblation {
    let rows = spec::variable_six()
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let associative = accuracy_on(&mut Gpht::new(GphtConfig::DEPLOYED), &trace).accuracy();
            let hashed_equal =
                accuracy_on(&mut HashedGpht::new(HashedGphtConfig::DEPLOYED), &trace).accuracy();
            let hashed_4x = accuracy_on(
                &mut HashedGpht::new(HashedGphtConfig {
                    gphr_depth: 8,
                    pht_entries: 512,
                }),
                &trace,
            )
            .accuracy();
            OrganizationRow {
                name: (*name).to_owned(),
                associative,
                hashed_equal,
                hashed_4x,
            }
        })
        .collect();
    PhtOrganizationAblation { rows }
}

/// The trade-off, quantified: at equal storage, direct mapping pays a
/// visible conflict-miss tax on working sets near capacity; spending the
/// saved comparators on 4x slots recovers associative accuracy while
/// staying O(1) per sample.
#[must_use]
pub fn check(a: &PhtOrganizationAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let mut taxed = 0;
    for r in &a.rows {
        if r.hashed_equal < r.associative - 0.10 {
            v.push(format!(
                "{}: equal-storage hashing ({:.3}) collapses vs associative ({:.3})",
                r.name, r.hashed_equal, r.associative
            ));
        }
        if r.associative - r.hashed_equal > 0.01 {
            taxed += 1;
        }
        if r.hashed_4x < r.associative - 0.03 {
            v.push(format!(
                "{}: 4x-slot hashing ({:.3}) should recover associative                  accuracy ({:.3})",
                r.name, r.hashed_4x, r.associative
            ));
        }
    }
    if taxed < 3 {
        v.push(format!(
            "conflict misses should visibly tax equal-storage hashing              (only {taxed}/6 affected)"
        ));
    }
    v
}

impl fmt::Display for PhtOrganizationAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "assoc 128 %".into(),
            "hashed 128 %".into(),
            "hashed 512 %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.associative),
                pct(r.hashed_equal),
                pct(r.hashed_4x),
            ]);
        }
        write!(
            f,
            "Ablation: PHT organization at equal storage (128 entries, \
             GPHR depth 8). Hashing trades the associative search for \
             rare conflict misses.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pht_organization_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), 6);
    }
}
