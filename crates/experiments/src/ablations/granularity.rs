//! Sampling-granularity ablation.
//!
//! The paper "experimented with various instruction granularities and used
//! 100 million instructions as a safe granularity". This ablation re-runs
//! the managed system at finer and coarser PMI granularities: finer
//! sampling sees each workload level as a long stable run (easier to
//! predict, more handler invocations); coarser sampling blurs adjacent
//! levels together (phases average out, opportunities vanish).

use crate::format::{num, pct, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_governor::{par_map, Session};
use livephase_pmsim::PlatformConfig;
use std::fmt;

/// Granularities swept, in retired uops per PMI.
pub const GRANULARITIES: [u64; 4] = [10_000_000, 50_000_000, 100_000_000, 500_000_000];

/// One granularity's outcome on applu.
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Uops per sampling interval.
    pub granularity: u64,
    /// Sampling intervals the run produced.
    pub intervals: usize,
    /// GPHT prediction accuracy.
    pub accuracy: f64,
    /// EDP improvement vs the baseline at the same granularity (%).
    pub edp_pct: f64,
    /// Performance degradation (%).
    pub deg_pct: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct GranularityAblation {
    /// One row per granularity, finest first.
    pub rows: Vec<GranularityRow>,
}

/// Runs applu managed vs baseline at each granularity.
#[must_use]
pub fn run(seed: u64) -> GranularityAblation {
    let trace = require_benchmark("applu_in")
        .with_length(400)
        .generate(seed);
    let rows = par_map(&GRANULARITIES, |&granularity| {
        let platform = PlatformConfig {
            pmi_granularity_uops: granularity,
            ..PlatformConfig::pentium_m()
        };
        let session = Session::new(&platform);
        let baseline = session.baseline(&trace);
        let managed = session.gpht(&trace);
        let c = managed.compare_to(&baseline);
        GranularityRow {
            granularity,
            intervals: managed.intervals.len(),
            accuracy: managed.prediction.accuracy(),
            edp_pct: c.edp_improvement_pct(),
            deg_pct: c.perf_degradation_pct(),
        }
    });
    GranularityAblation { rows }
}

/// Fine sampling must not *lose* EDP (it sees the same phases, more
/// often); very coarse sampling must blur phases and shrink the win.
#[must_use]
pub fn check(a: &GranularityAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let at = |g: u64| a.rows.iter().find(|r| r.granularity == g);
    let (Some(fine), Some(paper), Some(coarse)) =
        (at(10_000_000), at(100_000_000), at(500_000_000))
    else {
        return vec!["sweep incomplete".to_owned()];
    };
    if fine.accuracy < paper.accuracy - 0.02 {
        v.push(format!(
            "finer sampling should predict at least as well \
             ({:.3} vs {:.3})",
            fine.accuracy, paper.accuracy
        ));
    }
    if coarse.edp_pct > paper.edp_pct - 1.0 {
        v.push(format!(
            "5x coarser sampling should blur phases and shrink EDP \
             ({:.1}% vs {:.1}%)",
            coarse.edp_pct, paper.edp_pct
        ));
    }
    if fine.intervals <= paper.intervals {
        v.push("finer granularity must produce more intervals".to_owned());
    }
    v
}

impl fmt::Display for GranularityAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "uops/PMI".into(),
            "intervals".into(),
            "accuracy %".into(),
            "EDP gain %".into(),
            "deg %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}M", r.granularity / 1_000_000),
                r.intervals.to_string(),
                pct(r.accuracy),
                num(r.edp_pct, 1),
                num(r.deg_pct, 1),
            ]);
        }
        write!(
            f,
            "Ablation: PMI sampling granularity (applu under GPHT management).\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_ablation_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), GRANULARITIES.len());
    }
}
