//! Ablation studies on the design choices the paper (and `DESIGN.md`)
//! call out.
//!
//! These go beyond the published figures: each isolates one choice the
//! deployed system makes and quantifies what it buys.
//!
//! | Module | Design choice probed |
//! |--------|----------------------|
//! | [`gphr_depth`] | GPHR depth 8 (vs 1–32) |
//! | [`upc_pitfall`] | defining phases on Mem/Uop instead of UPC |
//! | [`oracle_gap`] | how much of perfect-prediction headroom GPHT captures |
//! | [`overheads`] | handler + DVFS-transition overheads at the 100 M-uop granularity |
//! | [`granularity`] | the 100 M-uop sampling granularity itself |
//! | [`selector`] | majority voting for windowed predictors |
//! | [`confidence`] | confidence-gating the GPHT (an optional extension) |
//! | [`pht_organization`] | associative search vs direct-mapped hashing at equal storage |
//! | [`sampling_domain`] | fixed-instruction vs fixed-time sampling under DVFS (Section 5.1) |

pub mod confidence;
pub mod family_tour;
pub mod gphr_depth;
pub mod granularity;
pub mod oracle_gap;
pub mod overheads;
pub mod pht_organization;
pub mod sampling_domain;
pub mod selector;
pub mod upc_pitfall;
