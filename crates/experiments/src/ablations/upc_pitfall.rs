//! The UPC pitfall, made concrete.
//!
//! Section 4 warns: "Directly using UPC in phase classification is not
//! reliable for dynamic management, as the resulting phases vary with
//! different power management settings." This ablation builds a UPC-based
//! phase map of the same arity as Table 1 and measures, over the IPCxMEM
//! grid, how many behaviours change phase when only the DVFS setting
//! changes — the self-defeating feedback a UPC-phased manager would chase.

use crate::format::{num, Table};
use crate::ShapeViolations;
use livephase_core::PhaseMap;
use livephase_pmsim::{OperatingPointTable, TimingModel};
use livephase_workloads::IpcxMemSuite;
use std::fmt;

/// One grid configuration's phase stability under DVFS.
#[derive(Debug, Clone)]
pub struct StabilityRow {
    /// Configuration label.
    pub config: String,
    /// Distinct UPC-phases observed across the six frequencies.
    pub upc_phases_seen: usize,
    /// Distinct Mem/Uop-phases observed across the six frequencies.
    pub mem_phases_seen: usize,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct UpcPitfall {
    /// One row per grid configuration.
    pub rows: Vec<StabilityRow>,
}

impl UpcPitfall {
    /// Fraction of configurations whose UPC-phase moves under DVFS.
    #[must_use]
    pub fn upc_unstable_fraction(&self) -> f64 {
        let unstable = self.rows.iter().filter(|r| r.upc_phases_seen > 1).count();
        unstable as f64 / self.rows.len() as f64
    }

    /// Fraction of configurations whose Mem/Uop-phase moves under DVFS.
    #[must_use]
    pub fn mem_unstable_fraction(&self) -> f64 {
        let unstable = self.rows.iter().filter(|r| r.mem_phases_seen > 1).count();
        unstable as f64 / self.rows.len() as f64
    }
}

/// Classifies every IPCxMEM grid configuration at all six frequencies
/// under both a UPC map and the Mem/Uop map.
#[must_use]
pub fn run(_seed: u64) -> UpcPitfall {
    let suite = IpcxMemSuite::pentium_m();
    let timing = TimingModel::pentium_m();
    let opps = OperatingPointTable::pentium_m();
    // A six-phase UPC partition spanning the observable range, mirroring
    // Table 1's arity.
    let upc_map = PhaseMap::new(vec![0.3, 0.6, 0.9, 1.2, 1.6]).expect("increasing");
    let mem_map = PhaseMap::pentium_m();

    let rows = suite
        .grid()
        .into_iter()
        .map(|cfg| {
            let level = suite.solve(cfg).expect("grid points are feasible");
            let work = level.interval(100_000_000, 1.25, level.mem_uop);
            let mut upc_phases = std::collections::BTreeSet::new();
            let mut mem_phases = std::collections::BTreeSet::new();
            for (_, opp) in opps.iter() {
                let upc = timing.upc(&work, opp.frequency);
                upc_phases.insert(upc_map.classify(upc.min(10.0)));
                mem_phases.insert(mem_map.classify(work.mem_uop()));
            }
            StabilityRow {
                config: cfg.name(),
                upc_phases_seen: upc_phases.len(),
                mem_phases_seen: mem_phases.len(),
            }
        })
        .collect();
    UpcPitfall { rows }
}

/// The paper's warning quantified: a substantial share of behaviours
/// change UPC-phase under DVFS alone, while none change Mem/Uop-phase.
#[must_use]
pub fn check(a: &UpcPitfall) -> ShapeViolations {
    let mut v = Vec::new();
    if a.mem_unstable_fraction() > 0.0 {
        v.push(format!(
            "{:.0}% of configs changed Mem/Uop phase under DVFS (must be 0)",
            a.mem_unstable_fraction() * 100.0
        ));
    }
    if a.upc_unstable_fraction() < 0.25 {
        v.push(format!(
            "only {:.0}% of configs changed UPC phase under DVFS — the pitfall \
             should be widespread",
            a.upc_unstable_fraction() * 100.0
        ));
    }
    v
}

impl fmt::Display for UpcPitfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "config".into(),
            "UPC phases seen".into(),
            "Mem/Uop phases seen".into(),
        ]);
        for r in self.rows.iter().filter(|r| r.upc_phases_seen > 1) {
            t.row(vec![
                r.config.clone(),
                r.upc_phases_seen.to_string(),
                r.mem_phases_seen.to_string(),
            ]);
        }
        writeln!(
            f,
            "Ablation: phase stability under DVFS alone (the Section 4 pitfall).\n\n\
             Configurations whose *UPC-defined* phase moves when only the \
             frequency changes:\n\n{}",
            t.render()
        )?;
        writeln!(
            f,
            "UPC-phased: {} of {} configurations unstable ({:.0}%).\n\
             Mem/Uop-phased: {} unstable.",
            self.rows.iter().filter(|r| r.upc_phases_seen > 1).count(),
            self.rows.len(),
            self.upc_unstable_fraction() * 100.0,
            num(self.mem_unstable_fraction() * self.rows.len() as f64, 0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upc_pitfall_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
