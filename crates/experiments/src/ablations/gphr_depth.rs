//! GPHR depth ablation: why the deployed predictor keeps 8 phases of
//! history.
//!
//! Too shallow a register cannot disambiguate positions inside repetitive
//! patterns; too deep a register dilutes the PHT with long tags that
//! rarely recur (and costs tag-compare time, see the Criterion bench).

use crate::format::{pct, Table};
use crate::predictors::accuracy_on;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig};
use livephase_workloads::spec;
use std::fmt;

/// The depths swept.
pub const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Accuracy of each depth on one benchmark (PHT fixed at 128 entries).
#[derive(Debug, Clone)]
pub struct DepthRow {
    /// Benchmark name.
    pub name: String,
    /// `(depth, accuracy)` pairs, shallow first.
    pub by_depth: Vec<(usize, f64)>,
}

impl DepthRow {
    /// Accuracy at a given depth.
    #[must_use]
    pub fn at(&self, depth: usize) -> Option<f64> {
        self.by_depth
            .iter()
            .find(|&&(d, _)| d == depth)
            .map(|&(_, a)| a)
    }
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct GphrDepthAblation {
    /// One row per variable benchmark.
    pub rows: Vec<DepthRow>,
}

/// Sweeps GPHR depth over the paper's "variable six".
#[must_use]
pub fn run(seed: u64) -> GphrDepthAblation {
    let rows = spec::variable_six()
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let by_depth = DEPTHS
                .iter()
                .map(|&depth| {
                    let mut g = Gpht::new(GphtConfig {
                        gphr_depth: depth,
                        pht_entries: 128,
                    });
                    (depth, accuracy_on(&mut g, &trace).accuracy())
                })
                .collect();
            DepthRow {
                name: (*name).to_owned(),
                by_depth,
            }
        })
        .collect();
    GphrDepthAblation { rows }
}

/// Depth 8 should be on the plateau: clearly better than depth 1–2,
/// and within noise of 16.
#[must_use]
pub fn check(a: &GphrDepthAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let mut better_than_shallow = 0;
    for r in &a.rows {
        let d8 = r.at(8).unwrap_or(0.0);
        let d1 = r.at(1).unwrap_or(0.0);
        let d16 = r.at(16).unwrap_or(0.0);
        if d8 > d1 + 0.05 {
            better_than_shallow += 1;
        }
        if d16 > d8 + 0.05 {
            v.push(format!(
                "{}: depth 16 ({d16:.3}) much better than 8 ({d8:.3}) — plateau broken",
                r.name
            ));
        }
    }
    if better_than_shallow < 4 {
        v.push(format!(
            "depth 8 should clearly beat depth 1 on the variable six \
             (only {better_than_shallow}/6)"
        ));
    }
    v
}

impl fmt::Display for GphrDepthAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut header = vec!["benchmark".to_owned()];
        header.extend(DEPTHS.iter().map(|d| format!("depth {d}")));
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![r.name.clone()];
            row.extend(r.by_depth.iter().map(|&(_, a)| pct(a)));
            t.row(row);
        }
        write!(
            f,
            "Ablation: GPHT accuracy (%) vs GPHR depth (PHT 128).\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_ablation_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), 6);
    }
}
