//! Confidence-gating ablation: does gating the GPHT behind a saturating
//! confidence counter reduce misprediction damage?
//!
//! On learnable workloads the gate should be transparent (GPHT stays
//! trusted); on hostile streams it bounds the damage toward the reactive
//! result. The interesting question is whether it costs anything where
//! GPHT is already good.

use crate::format::{num, pct, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{ConfidentPredictor, Gpht, GphtConfig};
use livephase_governor::{par_map, Proactive, Session, TranslationTable};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::spec;
use std::fmt;

/// One benchmark's gated-vs-plain comparison.
#[derive(Debug, Clone)]
pub struct ConfidenceRow {
    /// Benchmark name.
    pub name: String,
    /// Plain GPHT prediction accuracy.
    pub plain_acc: f64,
    /// Gated GPHT prediction accuracy.
    pub gated_acc: f64,
    /// Plain GPHT EDP improvement (%).
    pub plain_edp_pct: f64,
    /// Gated GPHT EDP improvement (%).
    pub gated_edp_pct: f64,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct ConfidenceAblation {
    /// One row per Figure 12 benchmark.
    pub rows: Vec<ConfidenceRow>,
}

/// Runs the Figure 12 set under plain and confidence-gated GPHT.
#[must_use]
pub fn run(seed: u64) -> ConfidenceAblation {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let rows = par_map(&spec::figure12_set(), |name| {
        let bench = require_benchmark(name);
        let baseline = session.baseline(bench.stream(seed));
        let plain = session.gpht(bench.stream(seed));
        let gated = session.run_policy(
            Box::new(Proactive::new(
                ConfidentPredictor::new(Gpht::new(GphtConfig::DEPLOYED), 2, 2),
                TranslationTable::pentium_m(),
            )),
            bench.stream(seed),
        );
        ConfidenceRow {
            name: (*name).to_owned(),
            plain_acc: plain.prediction.accuracy(),
            gated_acc: gated.prediction.accuracy(),
            plain_edp_pct: plain.compare_to(&baseline).edp_improvement_pct(),
            gated_edp_pct: gated.compare_to(&baseline).edp_improvement_pct(),
        }
    });
    ConfidenceAblation { rows }
}

/// The gate must be essentially free where GPHT is good.
#[must_use]
pub fn check(a: &ConfidenceAblation) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &a.rows {
        if r.gated_edp_pct < r.plain_edp_pct - 2.0 {
            v.push(format!(
                "{}: gating costs {:.1} EDP points",
                r.name,
                r.plain_edp_pct - r.gated_edp_pct
            ));
        }
        if r.gated_acc < r.plain_acc - 0.05 {
            v.push(format!(
                "{}: gating costs {:.1} accuracy points",
                r.name,
                (r.plain_acc - r.gated_acc) * 100.0
            ));
        }
    }
    v
}

impl fmt::Display for ConfidenceAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "acc plain %".into(),
            "acc gated %".into(),
            "EDP plain %".into(),
            "EDP gated %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.plain_acc),
                pct(r.gated_acc),
                num(r.plain_edp_pct, 1),
                num(r.gated_edp_pct, 1),
            ]);
        }
        write!(
            f,
            "Ablation: confidence-gated GPHT (2-bit counter, threshold 2) \
             vs plain GPHT.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_ablation_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), 8);
    }
}
