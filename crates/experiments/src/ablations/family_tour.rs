//! The complete predictor-family tour: every predictor family in the
//! repository over the variable six, in one table.
//!
//! Beyond the paper's Figure 4 line-up this includes the first-order
//! Markov baseline (one level of context), the direct-mapped GPHT, and
//! the confidence-gated GPHT — placing the paper's proposal inside the
//! broader design space.

use crate::format::{pct, Table};
use crate::predictors::accuracy_on;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{
    ConfidentPredictor, Gpht, GphtConfig, HashedGpht, HashedGphtConfig, LastValue, MarkovPredictor,
    Predictor,
};
use livephase_workloads::spec;
use std::fmt;

/// Builds the tour line-up (fresh instances).
#[must_use]
pub fn lineup() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(MarkovPredictor::new()),
        Box::new(Gpht::new(GphtConfig::DEPLOYED)),
        Box::new(HashedGpht::new(HashedGphtConfig::DEPLOYED)),
        Box::new(ConfidentPredictor::new(
            Gpht::new(GphtConfig::DEPLOYED),
            2,
            2,
        )),
    ]
}

/// One benchmark's per-family accuracy.
#[derive(Debug, Clone)]
pub struct TourRow {
    /// Benchmark name.
    pub name: String,
    /// `(predictor name, accuracy)` in line-up order.
    pub accuracies: Vec<(String, f64)>,
}

impl TourRow {
    /// Accuracy of a named family.
    #[must_use]
    pub fn accuracy_of(&self, predictor: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(n, _)| n == predictor)
            .map(|&(_, a)| a)
    }
}

/// The tour result.
#[derive(Debug, Clone)]
pub struct FamilyTour {
    /// One row per variable benchmark.
    pub rows: Vec<TourRow>,
}

/// Evaluates the tour over the variable six.
#[must_use]
pub fn run(seed: u64) -> FamilyTour {
    let rows = spec::variable_six()
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let accuracies = lineup()
                .iter_mut()
                .map(|p| (p.name(), accuracy_on(p.as_mut(), &trace).accuracy()))
                .collect();
            TourRow {
                name: (*name).to_owned(),
                accuracies,
            }
        })
        .collect();
    FamilyTour { rows }
}

/// The family ordering the design space predicts: pattern history (GPHT
/// variants) ≥ one-level context (Markov) ≥ no context (last value), on
/// every variable benchmark.
#[must_use]
pub fn check(t: &FamilyTour) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &t.rows {
        let lv = r.accuracy_of("LastValue").unwrap_or(0.0);
        let markov = r.accuracy_of("Markov1").unwrap_or(0.0);
        let gpht = r.accuracy_of("GPHT_8_128").unwrap_or(0.0);
        let gated = r.accuracy_of("Confident_2(GPHT_8_128)").unwrap_or(0.0);
        // Margin: on long-dwell irregular benchmarks (applu-like) a
        // one-level context model can trail last-value by a few points
        // depending on the jitter stream; the family ordering only has to
        // hold to within noise.
        if markov < lv - 0.06 {
            v.push(format!(
                "{}: Markov ({markov:.3}) should not lose to last value ({lv:.3})",
                r.name
            ));
        }
        if gpht < markov - 0.02 {
            v.push(format!(
                "{}: GPHT ({gpht:.3}) should beat one-level context ({markov:.3})",
                r.name
            ));
        }
        if gated < gpht - 0.05 {
            v.push(format!(
                "{}: gating ({gated:.3}) should be nearly free over GPHT ({gpht:.3})",
                r.name
            ));
        }
    }
    v
}

impl FamilyTour {
    /// The tour as an accuracy table (percent).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut header = vec!["benchmark".to_owned()];
        if let Some(first) = self.rows.first() {
            header.extend(first.accuracies.iter().map(|(n, _)| n.clone()));
        }
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut row = vec![r.name.clone()];
            row.extend(r.accuracies.iter().map(|&(_, a)| pct(a)));
            t.row(row);
        }
        t
    }
}

impl fmt::Display for FamilyTour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ablation: the predictor-family tour (accuracy %, variable six).\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_tour_shape_holds() {
        let t = run(crate::DEFAULT_SEED);
        let violations = check(&t);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(t.rows.len(), 6);
        assert_eq!(lineup().len(), 5);
    }
}
