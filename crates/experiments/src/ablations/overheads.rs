//! Overhead sensitivity: the paper's "no observable overheads" claim,
//! stress-tested.
//!
//! The deployed system's per-PMI costs (≈ 10 µs handler, ≈ 50 µs DVFS
//! switch) are invisible against ≈ 100 ms sampling intervals. This
//! ablation sweeps both costs upward until they *do* show, locating the
//! safety margin of the 100 M-uop design point.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig};
use livephase_governor::policy::Proactive;
use livephase_governor::TranslationTable;
use livephase_governor::{par_map, Manager, ManagerConfig};
use livephase_pmsim::PlatformConfig;
use std::fmt;

/// One overhead configuration's outcome.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Handler execution cost per PMI, in seconds.
    pub handler_s: f64,
    /// DVFS transition stall, in seconds.
    pub transition_s: f64,
    /// Measured EDP improvement over the *zero-overhead baseline run* (%).
    pub edp_pct: f64,
    /// Fraction of wall time spent in overheads (%).
    pub overhead_share_pct: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct OverheadAblation {
    /// One row per configuration, mildest first.
    pub rows: Vec<OverheadRow>,
}

/// The (handler, transition) grid swept, in seconds.
pub const SWEEP: [(f64, f64); 5] = [
    (0.0, 0.0),
    (10e-6, 50e-6),   // the deployed values
    (100e-6, 500e-6), // 10x
    (1e-3, 5e-3),     // 100x
    (5e-3, 20e-3),    // pathological
];

/// Runs applu under GPHT management with each overhead configuration.
#[must_use]
pub fn run(seed: u64) -> OverheadAblation {
    let trace = require_benchmark("applu_in")
        .with_length(400)
        .generate(seed);
    // Baseline measured with zero overheads: the reference is the ideal
    // unmanaged machine.
    let base_platform = PlatformConfig {
        dvfs_transition_s: 0.0,
        ..PlatformConfig::pentium_m()
    };
    let baseline = Manager::new(
        Box::new(livephase_governor::Baseline::new()),
        ManagerConfig {
            handler_overhead_s: 0.0,
            ..ManagerConfig::pentium_m()
        },
    )
    .run(&trace, &base_platform);

    let rows = par_map(&SWEEP, |&(handler_s, transition_s)| {
        let platform = PlatformConfig {
            dvfs_transition_s: transition_s,
            ..PlatformConfig::pentium_m()
        };
        let report = Manager::new(
            Box::new(Proactive::new(
                Gpht::new(GphtConfig::DEPLOYED),
                TranslationTable::pentium_m(),
            )),
            ManagerConfig {
                handler_overhead_s: handler_s,
                ..ManagerConfig::pentium_m()
            },
        )
        .run(&trace, &platform);
        let c = report.compare_to(&baseline);
        let overhead_s = handler_s * report.intervals.len() as f64
            + transition_s * report.dvfs_transitions as f64;
        OverheadRow {
            handler_s,
            transition_s,
            edp_pct: c.edp_improvement_pct(),
            overhead_share_pct: 100.0 * overhead_s / report.totals.time_s,
        }
    });
    OverheadAblation { rows }
}

/// The deployed overheads must be invisible (≈ the zero-overhead result);
/// the pathological end must visibly hurt.
#[must_use]
pub fn check(a: &OverheadAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let zero = a.rows[0].edp_pct;
    let deployed = a.rows[1].edp_pct;
    let worst = a.rows.last().expect("non-empty").edp_pct;
    if (deployed - zero).abs() > 0.5 {
        v.push(format!(
            "deployed overheads shift EDP by {:.2} points — should be invisible",
            (deployed - zero).abs()
        ));
    }
    if a.rows[1].overhead_share_pct > 0.2 {
        v.push(format!(
            "deployed overhead share {:.3}% should be ~0.05%",
            a.rows[1].overhead_share_pct
        ));
    }
    if zero - worst < 2.0 {
        v.push(format!(
            "pathological overheads should visibly erode EDP \
             (zero {zero:.1}% vs worst {worst:.1}%)"
        ));
    }
    v
}

impl fmt::Display for OverheadAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "handler".into(),
            "transition".into(),
            "EDP gain %".into(),
            "overhead share %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{:.0} us", r.handler_s * 1e6),
                format!("{:.0} us", r.transition_s * 1e6),
                num(r.edp_pct, 1),
                num(r.overhead_share_pct, 3),
            ]);
        }
        write!(
            f,
            "Ablation: PMI-handler and DVFS-transition overhead sensitivity \
             (applu, 100 M-uop sampling).\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ablation_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), SWEEP.len());
    }
}
