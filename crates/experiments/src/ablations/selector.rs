//! Windowed-selector ablation: why majority voting.
//!
//! The paper mentions the fixed-window reduction "can be a simple
//! averaging function, an exponential moving average or a selector, based
//! on population counts". Phases are *categories*, not magnitudes —
//! averaging phase ids interpolates across the Mem/Uop axis and lands the
//! manager on settings no observed behaviour asked for. This ablation
//! quantifies that.

use crate::format::{pct, Table};
use crate::predictors::accuracy_on;
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{FixedWindow, Selector};
use std::fmt;

/// One benchmark's per-selector accuracy (window fixed at 8).
#[derive(Debug, Clone)]
pub struct SelectorRow {
    /// Benchmark name.
    pub name: String,
    /// Majority-vote accuracy.
    pub majority: f64,
    /// Arithmetic-mean accuracy.
    pub mean: f64,
    /// EMA (α = 0.5) accuracy.
    pub ema: f64,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct SelectorAblation {
    /// One row per benchmark from a mixed stable/variable selection.
    pub rows: Vec<SelectorRow>,
}

/// The probed benchmarks: variable runs, where the selectors differ.
pub const BENCHMARKS: [&str; 6] = [
    "applu_in",
    "equake_in",
    "mgrid_in",
    "bzip2_source",
    "swim_in",
    "crafty_in",
];

/// Evaluates the three selectors over the probe set.
#[must_use]
pub fn run(seed: u64) -> SelectorAblation {
    let rows = BENCHMARKS
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).generate(seed);
            let acc = |sel: Selector| accuracy_on(&mut FixedWindow::new(8, sel), &trace).accuracy();
            SelectorRow {
                name: (*name).to_owned(),
                majority: acc(Selector::Majority),
                mean: acc(Selector::Mean),
                ema: acc(Selector::Ema { alpha: 0.5 }),
            }
        })
        .collect();
    SelectorAblation { rows }
}

/// Majority wins in aggregate and never loses badly; on staircase-shaped
/// workloads (mgrid's V-cycles) interpolation can edge ahead by a little,
/// which is allowed — adjacent phases are adjacent rates there.
#[must_use]
pub fn check(a: &SelectorAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let mut clear_win = false;
    for r in &a.rows {
        if r.majority < r.mean - 0.06 || r.majority < r.ema - 0.06 {
            v.push(format!(
                "{}: majority ({:.3}) lost badly to mean ({:.3}) or EMA ({:.3})",
                r.name, r.majority, r.mean, r.ema
            ));
        }
        if r.majority > r.mean + 0.05 || r.majority > r.ema + 0.05 {
            clear_win = true;
        }
    }
    let n = a.rows.len() as f64;
    let avg_majority: f64 = a.rows.iter().map(|r| r.majority).sum::<f64>() / n;
    let avg_mean: f64 = a.rows.iter().map(|r| r.mean).sum::<f64>() / n;
    let avg_ema: f64 = a.rows.iter().map(|r| r.ema).sum::<f64>() / n;
    if avg_majority < avg_mean || avg_majority < avg_ema {
        v.push(format!(
            "majority ({avg_majority:.3}) should win in aggregate over \
             mean ({avg_mean:.3}) and EMA ({avg_ema:.3})"
        ));
    }
    if !clear_win {
        v.push("majority should clearly beat interpolation somewhere".to_owned());
    }
    v
}

impl fmt::Display for SelectorAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "majority %".into(),
            "mean %".into(),
            "EMA(0.5) %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                pct(r.majority),
                pct(r.mean),
                pct(r.ema),
            ]);
        }
        write!(
            f,
            "Ablation: fixed-window selector (window 8). Phases are \
             categories; interpolating their ids invents behaviours.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_ablation_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
