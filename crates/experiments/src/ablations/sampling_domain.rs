//! Why sample at fixed *instruction* counts rather than fixed *time*?
//!
//! Section 5.1: "To eliminate the effect of timing variations, we monitor
//! phases at fixed instruction granularities with the PMI." This ablation
//! makes the alternative concrete: re-slice the same workload at fixed
//! wall-clock windows and observe that the resulting phase sequence
//! *changes with the DVFS setting* (slower clock → fewer instructions per
//! window → different blending of behaviours), while instruction-domain
//! slicing yields the identical sequence at every frequency. A phase
//! predictor fed time-domain samples would be chasing its own governor.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::PhaseMap;
use livephase_pmsim::{Frequency, TimingModel};
use livephase_workloads::WorkloadTrace;
use std::fmt;

/// Re-slices a trace into fixed wall-clock windows at a given frequency
/// and returns the per-window Mem/Uop series.
#[must_use]
pub fn time_sliced_mem_uop(
    trace: &WorkloadTrace,
    timing: &TimingModel,
    frequency: Frequency,
    window_s: f64,
) -> Vec<f64> {
    assert!(window_s > 0.0, "window must be positive");
    let mut windows = Vec::new();
    let mut acc_uops = 0.0f64;
    let mut acc_mem = 0.0f64;
    let mut budget = window_s;
    for work in trace {
        let exec = timing.execute(work, frequency);
        let mut remaining_frac = 1.0f64;
        let interval_s = exec.seconds;
        while remaining_frac > 0.0 {
            let slice_s = (remaining_frac * interval_s).min(budget);
            let frac = slice_s / interval_s;
            acc_uops += work.uops as f64 * frac;
            acc_mem += work.mem_transactions as f64 * frac;
            remaining_frac -= frac;
            budget -= slice_s;
            if budget <= 1e-12 {
                windows.push(if acc_uops > 0.0 {
                    acc_mem / acc_uops
                } else {
                    0.0
                });
                acc_uops = 0.0;
                acc_mem = 0.0;
                budget = window_s;
            }
        }
    }
    windows
}

/// One benchmark's sequence stability under the two sampling domains.
#[derive(Debug, Clone)]
pub struct DomainRow {
    /// Benchmark name.
    pub name: String,
    /// Fraction of instruction-domain samples whose phase differs between
    /// 1500 MHz and 600 MHz slicing (always zero: same uop boundaries).
    pub instr_domain_divergence: f64,
    /// Fraction of time-domain windows whose phase differs between the
    /// two frequencies (compared over the overlapping prefix).
    pub time_domain_divergence: f64,
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct SamplingDomainAblation {
    /// One row per probed benchmark.
    pub rows: Vec<DomainRow>,
}

/// The probe set: variable workloads, where window blending bites.
pub const BENCHMARKS: [&str; 4] = ["applu_in", "equake_in", "mgrid_in", "bzip2_source"];

/// Compares the two sampling domains at 1500 vs 600 MHz.
#[must_use]
pub fn run(seed: u64) -> SamplingDomainAblation {
    let timing = TimingModel::pentium_m();
    let map = PhaseMap::pentium_m();
    // ~ one 100 M-uop interval of wall time at full speed.
    let window_s = 0.08;
    let rows = BENCHMARKS
        .iter()
        .map(|name| {
            let trace = require_benchmark(name).with_length(400).generate(seed);

            // Instruction domain: the sample boundaries *are* the uop
            // boundaries, so the Mem/Uop sequence is frequency-independent
            // by construction; divergence is identically zero.
            let instr: Vec<u8> = trace
                .iter()
                .map(|w| map.classify(w.mem_uop()).get())
                .collect();
            let _ = &instr; // sequence identical at any frequency
            let instr_domain_divergence = 0.0;

            let fast = time_sliced_mem_uop(&trace, &timing, Frequency::from_mhz(1500), window_s);
            let slow = time_sliced_mem_uop(&trace, &timing, Frequency::from_mhz(600), window_s);
            let n = fast.len().min(slow.len());
            let diverged = (0..n)
                .filter(|&i| map.classify(fast[i]) != map.classify(slow[i]))
                .count();
            DomainRow {
                name: (*name).to_owned(),
                instr_domain_divergence,
                time_domain_divergence: diverged as f64 / n.max(1) as f64,
            }
        })
        .collect();
    SamplingDomainAblation { rows }
}

/// Instruction-domain sampling must be frequency-invariant; time-domain
/// sampling must visibly diverge on variable workloads.
#[must_use]
pub fn check(a: &SamplingDomainAblation) -> ShapeViolations {
    let mut v = Vec::new();
    let mut diverging = 0;
    for r in &a.rows {
        if r.instr_domain_divergence != 0.0 {
            v.push(format!(
                "{}: instruction-domain sampling diverged under DVFS",
                r.name
            ));
        }
        if r.time_domain_divergence > 0.05 {
            diverging += 1;
        }
    }
    if diverging < 3 {
        v.push(format!(
            "time-domain sampling should diverge under DVFS on variable \
             workloads (only {diverging}/4 diverged >5%)"
        ));
    }
    v
}

impl fmt::Display for SamplingDomainAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "instr-domain divergence %".into(),
            "time-domain divergence %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                num(r.instr_domain_divergence * 100.0, 1),
                num(r.time_domain_divergence * 100.0, 1),
            ]);
        }
        write!(
            f,
            "Ablation: sampling domain under DVFS (phase sequence at \
             1500 MHz vs 600 MHz). Fixed-instruction sampling is invariant; \
             fixed-time sampling chases the governor.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_domain_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), 4);
    }

    #[test]
    fn time_slicing_conserves_windows() {
        let trace = require_benchmark("swim_in").with_length(50).generate(1);
        let timing = TimingModel::pentium_m();
        let windows = time_sliced_mem_uop(&trace, &timing, Frequency::from_mhz(1500), 0.05);
        assert!(!windows.is_empty());
        // swim is flat: every window sees the same Mem/Uop (within noise).
        let min = windows.iter().copied().fold(f64::INFINITY, f64::min);
        let max = windows.iter().copied().fold(0.0f64, f64::max);
        assert!(max - min < 0.005, "flat workload, flat windows");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let trace = require_benchmark("swim_in").with_length(2).generate(1);
        let _ = time_sliced_mem_uop(
            &trace,
            &TimingModel::pentium_m(),
            Frequency::from_mhz(1500),
            0.0,
        );
    }
}
