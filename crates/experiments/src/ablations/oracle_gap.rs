//! How much of the perfect-prediction headroom does the GPHT capture?
//!
//! Runs the Figure 12 benchmark set under an [`Oracle`] policy that knows
//! the actual next phase, and reports GPHT's EDP gain as a fraction of the
//! oracle's.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::PhaseMap;
use livephase_governor::{par_map, Oracle, Session, TranslationTable};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::spec;
use std::fmt;

/// One benchmark's oracle-vs-GPHT comparison.
#[derive(Debug, Clone)]
pub struct OracleRow {
    /// Benchmark name.
    pub name: String,
    /// GPHT EDP improvement (%).
    pub gpht_edp_pct: f64,
    /// Oracle EDP improvement (%).
    pub oracle_edp_pct: f64,
}

impl OracleRow {
    /// GPHT's share of the oracle headroom (1.0 = fully captured).
    #[must_use]
    pub fn capture(&self) -> f64 {
        if self.oracle_edp_pct.abs() < 1e-9 {
            1.0
        } else {
            self.gpht_edp_pct / self.oracle_edp_pct
        }
    }
}

/// The ablation result.
#[derive(Debug, Clone)]
pub struct OracleGap {
    /// Rows over the Figure 12 set.
    pub rows: Vec<OracleRow>,
}

/// Measures GPHT vs oracle over the Figure 12 set.
#[must_use]
pub fn run(seed: u64) -> OracleGap {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let map = PhaseMap::pentium_m();
    let rows = par_map(&spec::figure12_set(), |name| {
        let bench = require_benchmark(name);
        // The oracle needs the whole future, so this one driver still
        // materializes the trace.
        let trace = bench.generate(seed);
        let baseline = session.baseline(&trace);
        let gpht = session.gpht(&trace);
        let oracle = session.run_policy(
            Box::new(Oracle::from_trace(
                &trace,
                &map,
                TranslationTable::pentium_m(),
            )),
            &trace,
        );
        OracleRow {
            name: (*name).to_owned(),
            gpht_edp_pct: gpht.compare_to(&baseline).edp_improvement_pct(),
            oracle_edp_pct: oracle.compare_to(&baseline).edp_improvement_pct(),
        }
    });
    OracleGap { rows }
}

/// The GPHT should capture the bulk of the oracle headroom on learnable
/// workloads and never exceed it by more than noise.
#[must_use]
pub fn check(a: &OracleGap) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &a.rows {
        if r.gpht_edp_pct > r.oracle_edp_pct + 1.0 {
            v.push(format!(
                "{}: GPHT ({:.1}%) beats the oracle ({:.1}%)?",
                r.name, r.gpht_edp_pct, r.oracle_edp_pct
            ));
        }
    }
    let captures: Vec<f64> = a.rows.iter().map(OracleRow::capture).collect();
    let mean = captures.iter().sum::<f64>() / captures.len() as f64;
    if mean < 0.7 {
        v.push(format!(
            "GPHT captures only {:.0}% of oracle headroom on average",
            mean * 100.0
        ));
    }
    v
}

impl fmt::Display for OracleGap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "EDP gain GPHT %".into(),
            "EDP gain Oracle %".into(),
            "captured".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                num(r.gpht_edp_pct, 1),
                num(r.oracle_edp_pct, 1),
                format!("{:.0}%", r.capture() * 100.0),
            ]);
        }
        write!(
            f,
            "Ablation: GPHT vs a perfect next-phase oracle.\n\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_gap_shape_holds() {
        let a = run(crate::DEFAULT_SEED);
        let violations = check(&a);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(a.rows.len(), 8);
    }
}
