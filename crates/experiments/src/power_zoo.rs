//! The power-model zoo: train learned backends on DAQ measurements,
//! validate them on held-out workloads, and race them through the
//! power-capping policy.
//!
//! The pipeline mirrors what the paper's logging machine makes possible:
//! the DAQ rig attributes measured watts to each 100 M-uop sampling
//! interval (bit-0 parallel-port protocol), the kernel log records PMC
//! features for the same intervals, and zipping the two yields labelled
//! training data "for free" on any running workload. We fit the
//! [`LinearModel`] and [`TreeModel`] backends on four benchmarks, then
//! score all backends — plus a naive frequency-only baseline — on four
//! *held-out* benchmarks the fit never saw.
//!
//! Everything is a pure function of the seed: workload generation, DAQ
//! noise, and both fits are deterministic, so the printed table (and the
//! CI gate built on it) is reproducible bit for bit.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_core::{Gpht, GphtConfig};
use livephase_daq::DaqSystem;
use livephase_governor::{par_map, PowerCap, PowerEstimator, Session};
use livephase_pmsim::{
    LinearModel, OperatingPointTable, PlatformConfig, PowerInput, PowerModel, PowerModelKind,
    TrainingRecord, TreeModel,
};
use std::fmt;

/// Benchmarks the learned models are fitted on.
pub const TRAIN_SET: [&str; 4] = ["applu_in", "bzip2_program", "swim_in", "mcf_inp"];

/// Benchmarks the fit never sees; all accuracy numbers come from here.
pub const HELDOUT_SET: [&str; 4] = ["equake_in", "mgrid_in", "crafty_in", "gzip_log"];

/// Sampling intervals captured per benchmark: enough phase diversity to
/// cover the operating-point/counter space while keeping the 40 us DAQ
/// stream (25 k samples per interval-second) tractable.
const INTERVALS: usize = 120;

/// Held-out MAPE ceiling for the learned backends, gating CI. Calibrated
/// from the committed seed-42 run (linear ≈ 3 %, tree ≈ 6 %) with slack
/// for cross-toolchain float drift — a regression in the fit pipeline
/// blows well past this before any legitimate change does.
pub const MAPE_GATE_PCT: f64 = 8.0;

/// Cap used for the EDP race, in watts — the middle of the
/// `power_cap` experiment's sweep, tight enough that estimator
/// differences actually change decisions.
const RACE_CAP_W: f64 = 9.0;

/// Held-out accuracy of one backend.
#[derive(Debug, Clone)]
pub struct BackendEval {
    /// Backend name (`analytic` | `linear` | `tree` | `naive-freq`).
    pub name: String,
    /// Mean absolute error on held-out records, W.
    pub mae_w: f64,
    /// Mean absolute percentage error on held-out records.
    pub mape_pct: f64,
}

/// One backend's outcome in the capped EDP race.
#[derive(Debug, Clone)]
pub struct EdpRow {
    /// Backend whose estimator priced the cap decisions.
    pub name: String,
    /// Whole-run energy-delay product, J·s.
    pub edp_js: f64,
    /// EDP delta versus the analytic-estimator run, percent
    /// (negative = better than analytic).
    pub delta_pct: f64,
    /// Measured average power of the capped run, W.
    pub avg_power_w: f64,
}

/// The complete zoo evaluation.
#[derive(Debug, Clone)]
pub struct PowerZoo {
    /// Labelled records harvested from the training benchmarks.
    pub train_records: usize,
    /// Labelled records harvested from the held-out benchmarks.
    pub heldout_records: usize,
    /// Held-out accuracy per backend, naive baseline last.
    pub evals: Vec<BackendEval>,
    /// Capped EDP race, analytic first.
    pub edp: Vec<EdpRow>,
    /// The fitted linear backend.
    pub linear: LinearModel,
    /// The fitted tree backend.
    pub tree: TreeModel,
}

/// Harvests labelled training records from one benchmark: run it under
/// GPHT management with waveform recording, measure the waveform through
/// the DAQ chain, and zip the per-interval PMC features with the
/// phase-aligned power measurements.
fn harvest(name: &str, seed: u64) -> Vec<TrainingRecord> {
    let bench = require_benchmark(name).with_length(INTERVALS);
    let platform = PlatformConfig::pentium_m().with_power_trace();
    let session = Session::new(&platform);
    let report = session.gpht(bench.stream(seed));
    let trace = report.power_trace.as_ref().expect("waveform recorded");
    let log = DaqSystem::pentium_m(seed).measure(trace);
    let features: Vec<(livephase_pmsim::OperatingPoint, PowerInput)> = report
        .intervals
        .iter()
        .filter_map(|iv| {
            let opp = platform.opp_table.get(iv.dvfs_index)?;
            Some((opp, PowerInput::from_counters(iv.mem_uop, iv.upc)))
        })
        .collect();
    log.training_records(&features).collect()
}

/// Harvests and concatenates records for a benchmark set, in set order.
fn harvest_set(names: &[&str], seed: u64) -> Vec<TrainingRecord> {
    par_map(names, |name| harvest(name, seed))
        .into_iter()
        .flatten()
        .collect()
}

/// The naive frequency-only baseline: predicts the training set's mean
/// measured power at the record's operating point, ignoring counters.
#[derive(Debug, Clone)]
struct NaiveFreq {
    /// `(sum, count)` per operating-point index.
    per_op: Vec<(f64, u64)>,
    table: OperatingPointTable,
}

impl NaiveFreq {
    fn fit(records: &[TrainingRecord]) -> Self {
        let table = OperatingPointTable::pentium_m();
        let mut per_op = vec![(0.0f64, 0u64); table.len()];
        for rec in records {
            if let Some(idx) = table.index_of(rec.opp.frequency) {
                if let Some(slot) = per_op.get_mut(idx) {
                    slot.0 += rec.measured_w;
                    slot.1 += 1;
                }
            }
        }
        Self { per_op, table }
    }

    fn predict(&self, rec: &TrainingRecord) -> f64 {
        self.table
            .index_of(rec.opp.frequency)
            .and_then(|idx| self.per_op.get(idx))
            .filter(|(_, n)| *n > 0)
            .map_or(0.0, |(sum, n)| sum / *n as f64)
    }
}

/// MAE and MAPE of `predict` over held-out records.
fn score(
    name: &str,
    records: &[TrainingRecord],
    predict: impl Fn(&TrainingRecord) -> f64,
) -> BackendEval {
    let mut abs = 0.0;
    let mut pct = 0.0;
    let mut n = 0u64;
    for rec in records {
        if rec.measured_w <= 0.0 {
            continue;
        }
        let err = (predict(rec) - rec.measured_w).abs();
        abs += err;
        pct += err / rec.measured_w;
        n += 1;
    }
    let n = n.max(1) as f64;
    BackendEval {
        name: name.to_owned(),
        mae_w: abs / n,
        mape_pct: 100.0 * pct / n,
    }
}

/// Runs applu under a [`RACE_CAP_W`]-watt power cap with the given
/// backend pricing the estimator, on the unmodified analytic platform
/// (physics stays physics; only the policy's beliefs change).
fn race_edp(kind: &PowerModelKind, seed: u64) -> (f64, f64) {
    let trace = require_benchmark("applu_in")
        .with_length(400)
        .generate(seed);
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let estimator = PowerEstimator::for_platform(&PlatformConfig {
        power: kind.clone(),
        ..PlatformConfig::pentium_m()
    });
    let report = session.run_policy(
        Box::new(PowerCap::new(
            Gpht::new(GphtConfig::DEPLOYED),
            estimator,
            RACE_CAP_W,
        )),
        &trace,
    );
    (report.edp(), report.average_power_w())
}

/// Trains, validates, and races the zoo.
///
/// # Panics
///
/// Panics if a benchmark is missing or a fit fails — both impossible for
/// the committed benchmark sets, whose harvests are well-posed by
/// construction.
#[must_use]
pub fn run(seed: u64) -> PowerZoo {
    let train = harvest_set(&TRAIN_SET, seed);
    let heldout = harvest_set(&HELDOUT_SET, seed);

    let linear = LinearModel::fit(&train).expect("training harvest is well-posed");
    let tree = TreeModel::fit(&train).expect("training harvest is well-posed");
    let naive = NaiveFreq::fit(&train);
    let analytic = PowerModelKind::default();

    let evals = vec![
        score("analytic", &heldout, |r| analytic.power(r.opp, &r.input)),
        score("linear", &heldout, |r| linear.power(r.opp, &r.input)),
        score("tree", &heldout, |r| tree.power(r.opp, &r.input)),
        score("naive-freq", &heldout, |r| naive.predict(r)),
    ];

    let backends = [
        ("analytic".to_owned(), analytic),
        ("linear".to_owned(), PowerModelKind::Linear(linear.clone())),
        ("tree".to_owned(), PowerModelKind::Tree(tree.clone())),
    ];
    let raced = par_map(&backends, |(name, kind)| {
        let (edp, avg) = race_edp(kind, seed);
        (name.clone(), edp, avg)
    });
    let analytic_edp = raced.first().map_or(1.0, |(_, edp, _)| *edp);
    let edp = raced
        .into_iter()
        .map(|(name, edp_js, avg_power_w)| EdpRow {
            name,
            edp_js,
            delta_pct: 100.0 * (edp_js / analytic_edp - 1.0),
            avg_power_w,
        })
        .collect();

    PowerZoo {
        train_records: train.len(),
        heldout_records: heldout.len(),
        evals,
        edp,
        linear,
        tree,
    }
}

/// Resolves a `--power-model` name to a backend, training the learned
/// ones on the committed training set at `seed`. Returns `None` for an
/// unknown name.
#[must_use]
pub fn model(kind: &str, seed: u64) -> Option<PowerModelKind> {
    match kind {
        "analytic" => Some(PowerModelKind::default()),
        "linear" | "tree" => {
            let train = harvest_set(&TRAIN_SET, seed);
            match kind {
                "linear" => LinearModel::fit(&train).ok().map(PowerModelKind::Linear),
                _ => TreeModel::fit(&train).ok().map(PowerModelKind::Tree),
            }
        }
        _ => None,
    }
}

/// The zoo's acceptance claims.
#[must_use]
pub fn check(zoo: &PowerZoo) -> ShapeViolations {
    let mut v = Vec::new();
    let eval = |name: &str| zoo.evals.iter().find(|e| e.name == name);
    let (Some(linear), Some(tree), Some(naive)) =
        (eval("linear"), eval("tree"), eval("naive-freq"))
    else {
        v.push("missing backend evaluations".into());
        return v;
    };
    for learned in [linear, tree] {
        if learned.mape_pct > MAPE_GATE_PCT {
            v.push(format!(
                "{}: held-out MAPE {:.2}% exceeds the {MAPE_GATE_PCT}% gate",
                learned.name, learned.mape_pct
            ));
        }
        if learned.mae_w >= naive.mae_w {
            v.push(format!(
                "{}: MAE {:.3} W does not beat the frequency-only baseline ({:.3} W)",
                learned.name, learned.mae_w, naive.mae_w
            ));
        }
    }
    for row in &zoo.edp {
        if row.avg_power_w > RACE_CAP_W * 1.02 {
            v.push(format!(
                "{}-estimator capped run averaged {:.2} W against a {RACE_CAP_W} W cap",
                row.name, row.avg_power_w
            ));
        }
    }
    if zoo.train_records < 100 || zoo.heldout_records < 100 {
        v.push(format!(
            "harvest too small: {} train / {} held-out records",
            zoo.train_records, zoo.heldout_records
        ));
    }
    v
}

impl fmt::Display for PowerZoo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Power-model zoo: trained on {:?} ({} records), validated on \
             held-out {:?} ({} records).\n",
            TRAIN_SET, self.train_records, HELDOUT_SET, self.heldout_records
        )?;
        let mut t = Table::new(vec![
            "backend".into(),
            "held-out MAE [W]".into(),
            "held-out MAPE [%]".into(),
        ]);
        for e in &self.evals {
            t.row(vec![e.name.clone(), num(e.mae_w, 3), num(e.mape_pct, 2)]);
        }
        writeln!(f, "{}", t.render())?;
        let mut t = Table::new(vec![
            "estimator backend".into(),
            format!("EDP @ {RACE_CAP_W} W cap [J*s]"),
            "vs analytic [%]".into(),
            "avg power [W]".into(),
        ]);
        for r in &self.edp {
            t.row(vec![
                r.name.clone(),
                num(r.edp_js, 3),
                num(r.delta_pct, 2),
                num(r.avg_power_w, 2),
            ]);
        }
        writeln!(f, "{}", t.render())?;
        let w = self.linear.weights();
        writeln!(
            f,
            "linear coefficients: bias {:.4}, V^2f {:.4}, V^3 {:.4}, \
             Mem/Uop {:.4}, UPC {:.4}; tree: {} leaves",
            w[0],
            w[1],
            w[2],
            w[3],
            w[4],
            self.tree.leaf_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_shape_holds() {
        let zoo = run(crate::DEFAULT_SEED);
        println!("{zoo}");
        let violations = check(&zoo);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(zoo.evals.len(), 4);
        assert_eq!(zoo.edp.len(), 3);
    }

    #[test]
    fn zoo_is_deterministic() {
        let a = run(crate::DEFAULT_SEED);
        let b = run(crate::DEFAULT_SEED);
        assert_eq!(a.linear, b.linear, "linear fit must be pure in the seed");
        assert_eq!(a.tree, b.tree, "tree fit must be pure in the seed");
        assert_eq!(format!("{a}"), format!("{b}"), "report must be pure");
    }

    #[test]
    fn cli_model_resolution() {
        assert!(model("analytic", 1).is_some());
        assert!(model("nope", 1).is_none());
        let m = model("linear", crate::DEFAULT_SEED).expect("trains");
        assert_eq!(m.kind_name(), "linear");
    }
}
