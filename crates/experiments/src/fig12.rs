//! Figure 12 — EDP improvement and performance degradation with GPHT vs
//! last-value (reactive) management for the Q2/Q3/Q4 benchmarks.

use crate::format::{num, Table};
use crate::runs::{require_benchmark, Outcome};
use crate::ShapeViolations;
use livephase_governor::{par_map, Session};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::spec;
use std::fmt;

/// One benchmark's head-to-head comparison.
#[derive(Debug, Clone)]
pub struct Head2Head {
    /// Benchmark name.
    pub name: String,
    /// Reactive EDP improvement (%).
    pub reactive_edp_pct: f64,
    /// GPHT EDP improvement (%).
    pub gpht_edp_pct: f64,
    /// Reactive performance degradation (%).
    pub reactive_deg_pct: f64,
    /// GPHT performance degradation (%).
    pub gpht_deg_pct: f64,
}

/// The Figure 12 comparison set.
#[derive(Debug, Clone)]
pub struct Figure12 {
    /// Rows in the paper's x-axis order.
    pub rows: Vec<Head2Head>,
}

impl Figure12 {
    /// Looks up one row.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&Head2Head> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Measures the Figure 12 benchmark set under both managed systems, one
/// worker per benchmark on a shared platform.
#[must_use]
pub fn run(seed: u64) -> Figure12 {
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let rows = par_map(&spec::figure12_set(), |name| {
        let bench = require_benchmark(name);
        let o = Outcome::measure_in(&session, &bench, seed);
        let r = o.reactive_vs_baseline();
        let g = o.gpht_vs_baseline();
        Head2Head {
            name: (*name).to_owned(),
            reactive_edp_pct: r.edp_improvement_pct(),
            gpht_edp_pct: g.edp_improvement_pct(),
            reactive_deg_pct: r.perf_degradation_pct(),
            gpht_deg_pct: g.perf_degradation_pct(),
        }
    });
    Figure12 { rows }
}

/// The paper's claims about proactive vs reactive management.
#[must_use]
pub fn check(fig: &Figure12) -> ShapeViolations {
    let mut v = Vec::new();

    // GPHT EDP never loses to reactive; clearly better on the variable Q3.
    for r in &fig.rows {
        if r.gpht_edp_pct < r.reactive_edp_pct - 1.5 {
            v.push(format!(
                "{}: GPHT EDP {:.1}% below reactive {:.1}%",
                r.name, r.gpht_edp_pct, r.reactive_edp_pct
            ));
        }
    }
    for name in ["applu_in", "equake_in", "mgrid_in"] {
        if let Some(r) = fig.row(name) {
            if r.gpht_edp_pct < r.reactive_edp_pct + 2.0 {
                v.push(format!(
                    "{name}: GPHT ({:.1}%) should clearly beat reactive ({:.1}%)",
                    r.gpht_edp_pct, r.reactive_edp_pct
                ));
            }
            if r.gpht_deg_pct > r.reactive_deg_pct + 1.0 {
                v.push(format!(
                    "{name}: GPHT degradation {:.1}% should not exceed reactive {:.1}%",
                    r.gpht_deg_pct, r.reactive_deg_pct
                ));
            }
        } else {
            v.push(format!("{name} missing"));
        }
    }

    // swim: virtually no variability — both systems nearly identical.
    if let Some(r) = fig.row("swim_in") {
        if (r.gpht_edp_pct - r.reactive_edp_pct).abs() > 3.0 {
            v.push(format!(
                "swim: GPHT {:.1}% vs reactive {:.1}% should be ~equal",
                r.gpht_edp_pct, r.reactive_edp_pct
            ));
        }
    }

    // Averages: the paper reports 27% (GPHT) vs 20% (reactive) EDP
    // improvement — i.e. a clear multi-point gap — with comparable or
    // lower degradation.
    let n = fig.rows.len() as f64;
    let avg_g: f64 = fig.rows.iter().map(|r| r.gpht_edp_pct).sum::<f64>() / n;
    let avg_r: f64 = fig.rows.iter().map(|r| r.reactive_edp_pct).sum::<f64>() / n;
    if avg_g - avg_r < 2.0 {
        v.push(format!(
            "average GPHT EDP gain {avg_g:.1}% should exceed reactive {avg_r:.1}% by ~7 points"
        ));
    }
    let avg_gd: f64 = fig.rows.iter().map(|r| r.gpht_deg_pct).sum::<f64>() / n;
    let avg_rd: f64 = fig.rows.iter().map(|r| r.reactive_deg_pct).sum::<f64>() / n;
    if avg_gd > avg_rd + 1.0 {
        v.push(format!(
            "average GPHT degradation {avg_gd:.1}% should be <= reactive {avg_rd:.1}%"
        ));
    }
    v
}

impl Figure12 {
    /// The head-to-head comparison as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "EDP gain LV %".into(),
            "EDP gain GPHT %".into(),
            "deg LV %".into(),
            "deg GPHT %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                num(r.reactive_edp_pct, 1),
                num(r.gpht_edp_pct, 1),
                num(r.reactive_deg_pct, 1),
                num(r.gpht_deg_pct, 1),
            ]);
        }
        t
    }
}

impl fmt::Display for Figure12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Figure 12. EDP improvement and performance degradation with \
             GPHT and last-value (reactive) management.\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.rows.len(), 8);
    }
}
