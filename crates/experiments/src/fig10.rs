//! Figure 10 — overall operation of the framework on `applu`, compared to
//! the baseline system, with power measured through the DAQ rig.
//!
//! Three panels in the paper: (top) Mem/Uop and actual/predicted phases of
//! the baseline and managed runs — near-identical Mem/Uop curves
//! demonstrate DVFS invariance on the live system; (middle) per-phase
//! power, whose gap is the saving; (bottom) BIPS, whose gap is the small
//! performance cost.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_daq::DaqSystem;
use livephase_governor::{RunReport, Session};
use livephase_pmsim::PlatformConfig;
use std::fmt;

/// The Figure 10 data: the two instrumented runs plus DAQ measurements.
#[derive(Debug, Clone)]
pub struct Figure10 {
    /// Baseline (unmanaged) run.
    pub baseline: RunReport,
    /// GPHT-managed run.
    pub managed: RunReport,
    /// DAQ-measured per-phase power for the baseline run.
    pub baseline_daq: livephase_daq::DaqLog,
    /// DAQ-measured per-phase power for the managed run.
    pub managed_daq: livephase_daq::DaqLog,
}

/// Runs `applu` under both systems with waveform recording and measures
/// both waveforms through the DAQ chain.
///
/// # Panics
///
/// Panics if `applu_in` is missing or waveforms were not recorded.
#[must_use]
pub fn run(seed: u64) -> Figure10 {
    // A shorter applu slice keeps the 40 us DAQ stream manageable while
    // covering dozens of phase swings.
    let bench = require_benchmark("applu_in").with_length(600);
    let platform = PlatformConfig::pentium_m().with_power_trace();
    let session = Session::new(&platform);
    let baseline = session.baseline(bench.stream(seed));
    let managed = session.gpht(bench.stream(seed));
    let daq = DaqSystem::pentium_m(seed);
    let baseline_daq = daq.measure(baseline.power_trace.as_ref().expect("recorded"));
    let managed_daq = daq.measure(managed.power_trace.as_ref().expect("recorded"));
    Figure10 {
        baseline,
        managed,
        baseline_daq,
        managed_daq,
    }
}

/// The paper's claims about the live system.
#[must_use]
pub fn check(fig: &Figure10) -> ShapeViolations {
    let mut v = Vec::new();

    // (i) Mem/Uop is identical between the two real runs (DVFS-invariant
    // phases, resilient to system variation).
    let n = fig
        .baseline
        .intervals
        .len()
        .min(fig.managed.intervals.len());
    let mean_delta: f64 = (0..n)
        .map(|i| (fig.baseline.intervals[i].mem_uop - fig.managed.intervals[i].mem_uop).abs())
        .sum::<f64>()
        / n as f64;
    if mean_delta > 5e-4 {
        v.push(format!(
            "Mem/Uop curves diverge (mean |delta| {mean_delta:.5}); must be DVFS-invariant"
        ));
    }

    // (ii) GPHT predicts well on this highly variable run.
    if fig.managed.prediction.accuracy() < 0.85 {
        v.push(format!(
            "managed-run GPHT accuracy {:.3} should be ~0.9",
            fig.managed.prediction.accuracy()
        ));
    }

    // (iii) Power savings with modest slowdown.
    let c = fig.managed.compare_to(&fig.baseline);
    if c.power_savings_pct() < 10.0 {
        v.push(format!(
            "power savings {:.1}% should be substantial",
            c.power_savings_pct()
        ));
    }
    if c.perf_degradation_pct() > 12.0 {
        v.push(format!(
            "performance degradation {:.1}% should stay small",
            c.perf_degradation_pct()
        ));
    }
    if c.edp_improvement_pct() < 10.0 {
        v.push(format!(
            "EDP improvement {:.1}% should be >15% territory",
            c.edp_improvement_pct()
        ));
    }

    // (iv) The external measurement path agrees with ground truth.
    for (name, daq, truth) in [
        ("baseline", &fig.baseline_daq, &fig.baseline),
        ("managed", &fig.managed_daq, &fig.managed),
    ] {
        let err = (daq.total_energy_j() - truth.totals.energy_j).abs() / truth.totals.energy_j;
        if err > 0.03 {
            v.push(format!("{name}: DAQ energy off by {:.1}%", err * 100.0));
        }
        // One DAQ phase per sampling interval (bit-0 protocol).
        let measured = daq.phases().len();
        let expected = truth.intervals.len();
        if measured.abs_diff(expected) > 2 {
            v.push(format!(
                "{name}: DAQ attributed {measured} phases, handler ran {expected}"
            ));
        }
    }

    // (v) The "no observable overheads" claim, read off the measurement
    // rig itself: samples caught inside the PMI handler (bit 1 high) must
    // be a vanishing share of the capture.
    let handler: u64 = fig
        .managed_daq
        .phases()
        .iter()
        .map(|p| p.handler_samples)
        .sum();
    let share = handler as f64 / fig.managed_daq.samples_taken().max(1) as f64;
    if share > 0.005 {
        v.push(format!(
            "handler execution covers {:.2}% of DAQ samples; the paper's \
             overheads are invisible at this granularity",
            share * 100.0
        ));
    }
    v
}

impl fmt::Display for Figure10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10. Overall operation of the framework on applu vs the \
             baseline system.\n"
        )?;
        let mut t = Table::new(vec![
            "interval".into(),
            "Mem/Uop base".into(),
            "Mem/Uop GPHT".into(),
            "actual".into(),
            "pred".into(),
            "P base [W]".into(),
            "P GPHT [W]".into(),
            "BIPS base".into(),
            "BIPS GPHT".into(),
        ]);
        let n = self
            .baseline
            .intervals
            .len()
            .min(self.managed.intervals.len());
        let window = n.saturating_sub(60)..n;
        for i in window {
            let b = &self.baseline.intervals[i];
            let m = &self.managed.intervals[i];
            t.row(vec![
                i.to_string(),
                num(b.mem_uop, 4),
                num(m.mem_uop, 4),
                m.phase.to_string(),
                m.predicted.map_or_else(|| "-".into(), |p| p.to_string()),
                num(b.power_w(), 2),
                num(m.power_w(), 2),
                num(b.bips(), 2),
                num(m.bips(), 2),
            ]);
        }
        writeln!(f, "{}", t.render())?;
        let n = self
            .baseline
            .intervals
            .len()
            .min(self.managed.intervals.len());
        let series = |f_: fn(&livephase_governor::IntervalLog) -> f64, r: &RunReport| {
            r.intervals[..n].iter().map(f_).collect::<Vec<f64>>()
        };
        writeln!(
            f,
            "power base {}",
            crate::format::sparkline(
                &series(livephase_governor::IntervalLog::power_w, &self.baseline)
                    [n.saturating_sub(100)..]
            )
        )?;
        writeln!(
            f,
            "power GPHT {}",
            crate::format::sparkline(
                &series(livephase_governor::IntervalLog::power_w, &self.managed)
                    [n.saturating_sub(100)..]
            )
        )?;
        let c = self.managed.compare_to(&self.baseline);
        writeln!(
            f,
            "whole-run: power {:.2} -> {:.2} W (DAQ: {:.2} -> {:.2} W), \
             BIPS {:.2} -> {:.2}, EDP improvement {:.1}%, degradation {:.1}%",
            self.baseline.average_power_w(),
            self.managed.average_power_w(),
            self.baseline_daq.average_power_w(),
            self.managed_daq.average_power_w(),
            self.baseline.bips(),
            self.managed.bips(),
            c.edp_improvement_pct(),
            c.perf_degradation_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
