//! Figure 13 — power/performance results for conservative phase
//! definitions that bound performance degradation by 5 %.
//!
//! Section 6.3: the deployed system is reconfigured — same GPHT, new phase
//! boundaries and DVFS look-up table derived from the IPCxMEM
//! characterization — so that worst-case slowdown stays under 5 %. The
//! five benchmarks that previously degraded more than 5 % all fall well
//! under the bound, at the cost of roughly halving the EDP gains.

use crate::format::{num, Table};
use crate::runs::require_benchmark;
use crate::ShapeViolations;
use livephase_governor::{par_map, ConservativeDerivation, Session, TranslationTable};
use livephase_pmsim::PlatformConfig;
use std::fmt;

/// The benchmarks of the paper's Figure 13 (those with > 5 % degradation
/// under the original definitions), in its x-axis order.
pub const FIGURE13_BENCHMARKS: [&str; 5] =
    ["mcf_inp", "applu_in", "equake_in", "swim_in", "mgrid_in"];

/// One benchmark's conservative-management results.
#[derive(Debug, Clone)]
pub struct ConservativeRow {
    /// Benchmark name.
    pub name: String,
    /// Performance degradation (%) under conservative definitions.
    pub deg_pct: f64,
    /// Power savings (%).
    pub power_savings_pct: f64,
    /// Energy savings (%).
    pub energy_savings_pct: f64,
    /// EDP improvement (%) under conservative definitions.
    pub edp_pct: f64,
    /// EDP improvement (%) under the original Table 1/2 definitions, for
    /// the ">2x reduction" comparison.
    pub original_edp_pct: f64,
}

/// The Figure 13 results plus the derived artifacts.
#[derive(Debug, Clone)]
pub struct Figure13 {
    /// Per-benchmark rows.
    pub rows: Vec<ConservativeRow>,
    /// The derived conservative phase boundaries.
    pub boundaries: Vec<f64>,
    /// The derived phase → setting table.
    pub table: TranslationTable,
}

/// Derives the 5 %-bounded configuration and measures the five benchmarks.
#[must_use]
pub fn run(seed: u64) -> Figure13 {
    let derivation = ConservativeDerivation::pentium_m();
    let (map, table) = derivation.derive(0.05);
    let platform = PlatformConfig::pentium_m();
    let session = Session::new(&platform);
    let rows = par_map(&FIGURE13_BENCHMARKS, |name| {
        let bench = require_benchmark(name);
        let baseline = session.baseline(bench.stream(seed));
        let original = session.gpht(bench.stream(seed));
        let conservative = session.run(derivation.manager(0.05), bench.stream(seed));
        let c = conservative.compare_to(&baseline);
        let o = original.compare_to(&baseline);
        ConservativeRow {
            name: (*name).to_owned(),
            deg_pct: c.perf_degradation_pct(),
            power_savings_pct: c.power_savings_pct(),
            energy_savings_pct: c.energy_savings_pct(),
            edp_pct: c.edp_improvement_pct(),
            original_edp_pct: o.edp_improvement_pct(),
        }
    });
    Figure13 {
        rows,
        boundaries: map.boundaries().to_vec(),
        table,
    }
}

/// The paper's claims: every degradation lands well under the 5 % bound,
/// savings remain positive, and aggregate EDP gains shrink roughly 2x.
#[must_use]
pub fn check(fig: &Figure13) -> ShapeViolations {
    let mut v = Vec::new();
    for r in &fig.rows {
        if r.deg_pct > 5.0 {
            v.push(format!(
                "{}: degradation {:.1}% violates the 5% bound",
                r.name, r.deg_pct
            ));
        }
        if r.edp_pct < 0.0 {
            v.push(format!("{}: EDP got worse ({:.1}%)", r.name, r.edp_pct));
        }
        if r.power_savings_pct < 0.0 {
            v.push(format!(
                "{}: power savings {:.1}% should be positive",
                r.name, r.power_savings_pct
            ));
        }
    }
    // EDP gains of the previously-degrading Q3 benchmarks shrink >= ~2x.
    let shrunk: Vec<&ConservativeRow> = fig
        .rows
        .iter()
        .filter(|r| ["applu_in", "equake_in", "mgrid_in"].contains(&r.name.as_str()))
        .collect();
    let orig: f64 = shrunk.iter().map(|r| r.original_edp_pct).sum();
    let cons: f64 = shrunk.iter().map(|r| r.edp_pct).sum();
    if cons > orig / 1.5 {
        v.push(format!(
            "Q3 EDP gains should shrink ~2x under the bound (orig {orig:.1}%, cons {cons:.1}%)"
        ));
    }
    v
}

impl Figure13 {
    /// The per-benchmark results as a table.
    #[must_use]
    pub fn results_table(&self) -> Table {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "perf deg %".into(),
            "power sav %".into(),
            "energy sav %".into(),
            "EDP gain %".into(),
            "EDP gain (orig) %".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                num(r.deg_pct, 1),
                num(r.power_savings_pct, 1),
                num(r.energy_savings_pct, 1),
                num(r.edp_pct, 1),
                num(r.original_edp_pct, 1),
            ]);
        }
        t
    }
}

impl fmt::Display for Figure13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13. Power/performance results for conservative phase \
             definitions bounding performance degradation by 5%.\n"
        )?;
        writeln!(
            f,
            "derived boundaries (Mem/Uop): {:?}\nderived phase -> setting: {:?}\n",
            self.boundaries,
            self.table.settings()
        )?;
        write!(f, "{}", self.results_table().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.rows.len(), 5);
    }
}
