//! The standard predictor line-up of the paper's Section 3.2 and shared
//! evaluation plumbing.

use livephase_core::{
    evaluate, FixedWindow, Gpht, GphtConfig, LastValue, PhaseMap, PhaseSample, PredictionStats,
    Predictor, PredictorSpecError, Selector, VariableWindow,
};
use livephase_engine::{DecisionEngine, EngineConfig, Sample};
use livephase_workloads::{counter_samples, WorkloadTrace};

/// Builds the six predictors compared in Figure 4, in the paper's legend
/// order: fixed windows 8 and 128, variable windows (128, 0.005) and
/// (128, 0.030), GPHT(8, 1024), last value.
#[must_use]
pub fn figure4_lineup() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(FixedWindow::new(8, Selector::Majority)),
        Box::new(FixedWindow::new(128, Selector::Majority)),
        Box::new(VariableWindow::new(128, 0.005)),
        Box::new(VariableWindow::new(128, 0.030)),
        Box::new(Gpht::new(GphtConfig::REFERENCE)),
        Box::new(LastValue::new()),
    ]
}

/// Converts a workload trace into the phase-sample stream a live monitor
/// would observe under `map`.
#[must_use]
pub fn sample_stream(trace: &WorkloadTrace, map: &PhaseMap) -> Vec<PhaseSample> {
    trace
        .iter()
        .map(|w| {
            let rate = w.mem_uop();
            PhaseSample::new(rate, map.classify(rate))
        })
        .collect()
}

/// Evaluates one predictor over a trace under the Table 1 phase map.
#[must_use]
pub fn accuracy_on(predictor: &mut dyn Predictor, trace: &WorkloadTrace) -> PredictionStats {
    let map = PhaseMap::pentium_m();
    evaluate(predictor, sample_stream(trace, &map))
}

/// Evaluates a predictor spec over a trace through the deployment
/// pipeline itself: the trace's counter stream is batched through a
/// [`DecisionEngine`] — the same classify → score → predict path the
/// governor and the serve shards run — and the engine's own scoring is
/// returned. Agrees exactly with [`accuracy_on`] for the equivalent
/// predictor (the engine scores the same stream the same way).
///
/// # Errors
///
/// Returns the spec error if `predictor_spec` does not parse.
pub fn engine_accuracy_on(
    predictor_spec: &str,
    trace: &WorkloadTrace,
) -> Result<PredictionStats, PredictorSpecError> {
    let mut engine = DecisionEngine::from_spec(EngineConfig::pentium_m(), predictor_spec)?;
    let samples: Vec<Sample> = counter_samples(trace)
        .map(|s| Sample {
            pid: 0,
            uops: s.uops,
            mem_transactions: s.mem_transactions,
        })
        .collect();
    let mut decisions = Vec::with_capacity(samples.len());
    engine.step_many(&samples, &mut decisions);
    Ok(engine.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::require_benchmark;

    #[test]
    fn lineup_matches_figure4_legend() {
        let names: Vec<String> = figure4_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "FixWindow_8",
                "FixWindow_128",
                "VarWindow_128_0.005",
                "VarWindow_128_0.03",
                "GPHT_8_1024",
                "LastValue",
            ]
        );
    }

    #[test]
    fn stream_classifies_each_interval() {
        let trace = require_benchmark("swim_in").with_length(20).generate(1);
        let stream = sample_stream(&trace, &PhaseMap::pentium_m());
        assert_eq!(stream.len(), 20);
        // swim is phase 5 (0.020..0.030) nearly everywhere.
        let p5 = stream.iter().filter(|s| s.phase.get() == 5).count();
        assert!(p5 >= 18, "{p5}/20 intervals at phase 5");
    }

    #[test]
    fn accuracy_on_runs_end_to_end() {
        let trace = require_benchmark("crafty_in").with_length(100).generate(1);
        let mut lv = LastValue::new();
        let stats = accuracy_on(&mut lv, &trace);
        assert_eq!(stats.total, 99);
        assert!(stats.accuracy() > 0.9);
    }

    #[test]
    fn engine_scoring_agrees_with_evaluate() {
        // The harness's offline scoring and the deployment pipeline's
        // own scoring are the same code path; their numbers must agree
        // exactly, predictor family by predictor family.
        let trace = require_benchmark("applu_in").with_length(150).generate(7);
        for (spec, mut predictor) in [
            (
                "lastvalue",
                Box::new(LastValue::new()) as Box<dyn Predictor>,
            ),
            ("gpht:8:1024", Box::new(Gpht::new(GphtConfig::REFERENCE))),
            (
                "fixwindow:8",
                Box::new(FixedWindow::new(8, Selector::Majority)),
            ),
        ] {
            let offline = accuracy_on(predictor.as_mut(), &trace);
            let deployed = engine_accuracy_on(spec, &trace).unwrap();
            assert_eq!(deployed, offline, "{spec} diverged");
        }
        assert!(engine_accuracy_on("bogus", &trace).is_err());
    }
}
