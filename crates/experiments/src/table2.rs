//! Table 2 — translation of phases to DVFS settings.

use crate::format::Table;
use crate::ShapeViolations;
use livephase_core::PhaseMap;
use livephase_governor::TranslationTable;
use livephase_pmsim::OperatingPointTable;
use std::fmt;

/// The rendered Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Phase definitions (Table 1).
    pub map: PhaseMap,
    /// Phase → setting mapping.
    pub table: TranslationTable,
    /// The platform's operating points.
    pub opps: OperatingPointTable,
}

/// Builds the paper's Table 2.
#[must_use]
pub fn run() -> Table2 {
    Table2 {
        map: PhaseMap::pentium_m(),
        table: TranslationTable::pentium_m(),
        opps: OperatingPointTable::pentium_m(),
    }
}

/// Verifies the published (frequency, voltage) pairs and the monotone
/// phase → setting mapping.
#[must_use]
pub fn check(t: &Table2) -> ShapeViolations {
    let mut v = Vec::new();
    let published = [
        (1500u32, 1484u32),
        (1400, 1452),
        (1200, 1356),
        (1000, 1228),
        (800, 1116),
        (600, 956),
    ];
    if t.opps.len() != published.len() {
        v.push(format!("expected 6 settings, got {}", t.opps.len()));
    }
    for (i, (mhz, mv)) in published.iter().enumerate() {
        if let Some(p) = t.opps.get(i) {
            if p.frequency.mhz() != *mhz || p.voltage.mv() != *mv {
                v.push(format!(
                    "setting {i}: {p} differs from ({mhz} MHz, {mv} mV)"
                ));
            }
        }
    }
    if !t.table.covers(&t.map) {
        v.push("translation table does not cover the phase map".to_owned());
    }
    if t.table.settings() != [0, 1, 2, 3, 4, 5] {
        v.push(format!(
            "mapping {:?} differs from the identity mapping of Table 2",
            t.table.settings()
        ));
    }
    v
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = Table::new(vec![
            "Mem/Uop".into(),
            "Phase #".into(),
            "DVFS Setting".into(),
        ]);
        for phase in self.map.phases() {
            let (lo, hi) = self.map.interval(phase);
            let range = if lo == 0.0 {
                format!("< {hi:.3}")
            } else if hi.is_infinite() {
                format!("> {lo:.3}")
            } else {
                format!("[{lo:.3},{hi:.3})")
            };
            let opp = self
                .opps
                .get(self.table.setting_for(phase))
                .expect("table2 settings are valid");
            out.row(vec![range, phase.to_string(), opp.to_string()]);
        }
        write!(
            f,
            "Table 2. Translation of phases to DVFS settings.\n\n{}",
            out.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_checks_clean() {
        let t = run();
        assert!(check(&t).is_empty());
        let s = t.to_string();
        assert!(s.contains("(1500 MHz, 1484 mV)"));
        assert!(s.contains("(600 MHz, 956 mV)"));
    }

    #[test]
    fn check_flags_wrong_mapping() {
        let mut t = run();
        t.table = TranslationTable::new(vec![0, 0, 0, 0, 0, 0], 6).unwrap();
        assert!(!check(&t).is_empty());
    }
}
