//! Figure 3 — benchmark categories based on stability and power-saving
//! potential.
//!
//! For every SPEC run, plots (average Mem/Uop, % samples with
//! ΔMem/Uop > 0.005) and assigns the quadrant the paper discusses:
//! Q1 stable/low-savings, Q2 stable/high-savings, Q3 variable/high,
//! Q4 variable/low.

use crate::format::{num, Table};
use crate::ShapeViolations;
use livephase_workloads::{registry, Quadrant, TraceStats};
use std::fmt;

/// Quadrant thresholds used to classify the measured coordinates. The
/// paper's quadrants are drawn visually; these splits reproduce its
/// assignments — it calls apsi and ammp (variation 13–17 %) "Q1
/// applications ... with relatively higher variability", so the variation
/// split sits at 20 %, and applu (the least memory-bound Q3 member)
/// anchors the savings split just below 0.01 Mem/Uop.
pub const VARIATION_SPLIT_PCT: f64 = 20.0;
/// See [`VARIATION_SPLIT_PCT`].
pub const SAVINGS_SPLIT_MEM_UOP: f64 = 0.008;

/// One benchmark's Figure 3 coordinate.
#[derive(Debug, Clone)]
pub struct Point {
    /// Benchmark name.
    pub name: String,
    /// The quadrant the calibration targets (from the spec).
    pub intended: Quadrant,
    /// Measured stats.
    pub stats: TraceStats,
}

impl Point {
    /// The quadrant the *measured* coordinate falls into.
    #[must_use]
    pub fn measured_quadrant(&self) -> Quadrant {
        let variable = self.stats.sample_variation_pct > VARIATION_SPLIT_PCT;
        let savings = self.stats.mean_mem_uop > SAVINGS_SPLIT_MEM_UOP;
        match (variable, savings) {
            (false, false) => Quadrant::Q1,
            (false, true) => Quadrant::Q2,
            (true, true) => Quadrant::Q3,
            (true, false) => Quadrant::Q4,
        }
    }
}

/// The full Figure 3 scatter.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// All 33 benchmark coordinates.
    pub points: Vec<Point>,
}

/// Characterizes every registered benchmark.
#[must_use]
pub fn run(seed: u64) -> Figure3 {
    let points = registry()
        .into_iter()
        .map(|spec| {
            let stats = spec.generate(seed).characterize();
            Point {
                name: spec.name().to_owned(),
                intended: spec.quadrant(),
                stats,
            }
        })
        .collect();
    Figure3 { points }
}

/// Shape claims: the named anchors of the paper's Figure 3 land in their
/// quadrants, with equake the most variable and mcf the most memory-bound.
#[must_use]
pub fn check(fig: &Figure3) -> ShapeViolations {
    let mut v = Vec::new();
    let find = |name: &str| fig.points.iter().find(|p| p.name == name);

    for (name, want) in [
        ("swim_in", Quadrant::Q2),
        ("mcf_inp", Quadrant::Q2),
        ("applu_in", Quadrant::Q3),
        ("equake_in", Quadrant::Q3),
        ("mgrid_in", Quadrant::Q3),
        ("bzip2_source", Quadrant::Q4),
        ("crafty_in", Quadrant::Q1),
        ("sixtrack_in", Quadrant::Q1),
    ] {
        match find(name) {
            Some(p) if p.measured_quadrant() == want => {}
            Some(p) => v.push(format!(
                "{name}: measured {} (mean {:.4}, var {:.1}%), expected {want}",
                p.measured_quadrant(),
                p.stats.mean_mem_uop,
                p.stats.sample_variation_pct
            )),
            None => v.push(format!("{name} missing from registry")),
        }
    }

    if let (Some(equake), Some(applu)) = (find("equake_in"), find("applu_in")) {
        if equake.stats.sample_variation_pct <= applu.stats.sample_variation_pct {
            v.push("equake should be more variable than applu".to_owned());
        }
        if applu.stats.sample_variation_pct < 35.0 {
            v.push(format!(
                "applu variation {:.1}% should be ~47%",
                applu.stats.sample_variation_pct
            ));
        }
    }
    if let Some(mcf) = find("mcf_inp") {
        if mcf.stats.mean_mem_uop < 0.09 {
            v.push(format!(
                "mcf mean Mem/Uop {:.3} should exceed 0.09 (broken axis)",
                mcf.stats.mean_mem_uop
            ));
        }
    }
    // Most of SPEC hugs the origin (Q1).
    let q1 = fig
        .points
        .iter()
        .filter(|p| p.measured_quadrant() == Quadrant::Q1)
        .count();
    if q1 < 20 {
        v.push(format!(
            "only {q1} Q1 benchmarks; most of SPEC should be Q1"
        ));
    }
    v
}

impl Figure3 {
    /// The scatter as a table, sorted by decreasing variation.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "benchmark".into(),
            "mean Mem/Uop".into(),
            "variation %".into(),
            "quadrant".into(),
        ]);
        let mut sorted: Vec<&Point> = self.points.iter().collect();
        sorted.sort_by(|a, b| {
            b.stats
                .sample_variation_pct
                .total_cmp(&a.stats.sample_variation_pct)
        });
        for p in sorted {
            t.row(vec![
                p.name.clone(),
                num(p.stats.mean_mem_uop, 4),
                num(p.stats.sample_variation_pct, 1),
                p.measured_quadrant().to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Figure 3. Benchmark categories based on stability and power \
             saving potentials.\n\n{}",
            self.table().render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert_eq!(fig.points.len(), 33);
    }

    #[test]
    fn display_lists_all_benchmarks() {
        let fig = run(1);
        let s = fig.to_string();
        assert!(s.contains("applu_in"));
        assert!(s.contains("mcf_inp"));
        assert_eq!(s.lines().count(), 33 + 4);
    }
}
