//! Figure 6 — observed (UPC, Mem/Uop) pairs for all experimented
//! applications, the achievable-UPC boundary, and the IPCxMEM grid.

use crate::format::{num, Table};
use crate::ShapeViolations;
use livephase_pmsim::{Frequency, TimingModel};
use livephase_workloads::{registry, IpcxMemSuite};
use std::fmt;

/// One observed behaviour-space point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacePoint {
    /// Micro-ops per cycle at the reference frequency.
    pub upc: f64,
    /// Memory transactions per micro-op.
    pub mem_uop: f64,
}

/// The Figure 6 data set.
#[derive(Debug, Clone)]
pub struct Figure6 {
    /// The SPEC sample cloud (one point per distinct benchmark level,
    /// observed at 1500 MHz).
    pub spec_points: Vec<(String, SpacePoint)>,
    /// The IPCxMEM grid configurations (achievable coordinates).
    pub grid: Vec<SpacePoint>,
    /// Samples of the achievable-UPC frontier ("SPEC boundary").
    pub boundary: Vec<SpacePoint>,
}

/// Computes the cloud, grid and boundary.
#[must_use]
pub fn run(seed: u64) -> Figure6 {
    let timing = TimingModel::pentium_m();
    let f_ref = Frequency::from_mhz(1500);
    let suite = IpcxMemSuite::pentium_m();

    let mut spec_points = Vec::new();
    for spec in registry() {
        // Sample the realized per-interval behaviour (noise included).
        let trace = spec.generate(seed);
        for w in trace.iter().step_by(97) {
            spec_points.push((
                spec.name().to_owned(),
                SpacePoint {
                    upc: timing.upc(w, f_ref),
                    mem_uop: w.mem_uop(),
                },
            ));
        }
    }

    let grid = suite
        .grid()
        .into_iter()
        .map(|cfg| SpacePoint {
            upc: cfg.target_upc,
            mem_uop: cfg.mem_uop,
        })
        .collect();

    let boundary = (0..=22)
        .map(|i| {
            let m = f64::from(i) * 0.0025;
            SpacePoint {
                upc: suite.max_upc(m),
                mem_uop: m,
            }
        })
        .collect();

    Figure6 {
        spec_points,
        grid,
        boundary,
    }
}

/// Shape claims: a wide cloud bounded above by a decreasing frontier, and
/// a grid of roughly fifty achievable configurations covering the space.
#[must_use]
pub fn check(fig: &Figure6) -> ShapeViolations {
    let mut v = Vec::new();
    let suite = IpcxMemSuite::pentium_m();

    // Every observed SPEC point must respect the achievable frontier.
    for (name, p) in &fig.spec_points {
        let bound = suite.max_upc(p.mem_uop);
        if p.upc > bound * 1.02 {
            v.push(format!(
                "{name}: ({:.2}, {:.4}) exceeds the boundary {bound:.2}",
                p.upc, p.mem_uop
            ));
        }
    }
    // Frontier is decreasing.
    for w in fig.boundary.windows(2) {
        if w[1].upc >= w[0].upc {
            v.push("boundary must decrease with memory intensity".to_owned());
            break;
        }
    }
    // Grid size ~50 as in the paper.
    if !(35..=75).contains(&fig.grid.len()) {
        v.push(format!("grid has {} points, expected ~50", fig.grid.len()));
    }
    // The cloud spans both CPU-bound and memory-bound regions.
    let max_upc = fig
        .spec_points
        .iter()
        .map(|(_, p)| p.upc)
        .fold(0.0, f64::max);
    let max_m = fig
        .spec_points
        .iter()
        .map(|(_, p)| p.mem_uop)
        .fold(0.0, f64::max);
    if max_upc < 1.4 {
        v.push(format!("cloud max UPC {max_upc:.2} should reach ~1.6"));
    }
    if max_m < 0.05 {
        v.push(format!(
            "cloud max Mem/Uop {max_m:.3} should reach ~0.1 (mcf)"
        ));
    }
    v
}

impl fmt::Display for Figure6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6. Observed (UPC, Mem/Uop) pairs and IPCxMEM grid.\n"
        )?;
        let mut t = Table::new(vec!["Mem/Uop".into(), "max UPC (boundary)".into()]);
        for p in &self.boundary {
            t.row(vec![num(p.mem_uop, 4), num(p.upc, 3)]);
        }
        writeln!(f, "Achievable-UPC frontier:\n{}", t.render())?;
        let mut g = Table::new(vec!["grid UPC".into(), "grid Mem/Uop".into()]);
        for p in &self.grid {
            g.row(vec![num(p.upc, 2), num(p.mem_uop, 4)]);
        }
        writeln!(
            f,
            "IPCxMEM grid ({} configurations):\n{}",
            self.grid.len(),
            g.render()
        )?;
        writeln!(
            f,
            "SPEC cloud: {} sampled points across {} benchmarks",
            self.spec_points.len(),
            33
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_holds() {
        let fig = run(crate::DEFAULT_SEED);
        let violations = check(&fig);
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(!fig.spec_points.is_empty());
    }
}
