//! Cross-driver consistency: where two experiment drivers measure the same
//! quantity (same seed, same benchmark, same configuration), their numbers
//! must agree exactly — the drivers share generators and models, so any
//! disagreement is a harness bug.

use livephase_experiments::{fig02, fig04, fig05, fig11, fig12, DEFAULT_SEED};

/// Figure 4's GPHT(8, 1024) column and Figure 5's PHT:1024 column measure
/// the identical predictor on the identical traces.
#[test]
fn fig04_and_fig05_agree_on_gpht_1024() {
    let f4 = fig04::run(DEFAULT_SEED);
    let f5 = fig05::run(DEFAULT_SEED);
    for r5 in &f5.rows {
        let a5 = r5.at(1024).expect("1024 swept");
        let a4 = f4
            .row(&r5.name)
            .and_then(|r| r.accuracy_of("GPHT_8_1024"))
            .expect("fig04 covers all fig05 benchmarks");
        assert!(
            (a4 - a5).abs() < 1e-12,
            "{}: fig04 {a4} vs fig05 {a5}",
            r5.name
        );
    }
}

/// Figure 4's LastValue column and Figure 5's LastValue floor agree.
#[test]
fn fig04_and_fig05_agree_on_last_value() {
    let f4 = fig04::run(DEFAULT_SEED);
    let f5 = fig05::run(DEFAULT_SEED);
    for r5 in &f5.rows {
        let a4 = f4
            .row(&r5.name)
            .and_then(|r| r.accuracy_of("LastValue"))
            .expect("covered");
        assert!((a4 - r5.last_value).abs() < 1e-12, "{}", r5.name);
    }
}

/// Figure 2's full-trace applu accuracies equal Figure 4's applu row
/// (same predictors, same trace).
#[test]
fn fig02_and_fig04_agree_on_applu() {
    let f2 = fig02::run(DEFAULT_SEED);
    let f4 = fig04::run(DEFAULT_SEED);
    let row = f4.row("applu_in").expect("applu present");
    let a_gpht = row.accuracy_of("GPHT_8_1024").unwrap();
    let a_lv = row.accuracy_of("LastValue").unwrap();
    assert!((f2.gpht.stats.accuracy() - a_gpht).abs() < 1e-12);
    assert!((f2.last_value.stats.accuracy() - a_lv).abs() < 1e-12);
}

/// Figures 11 and 12 measure the same GPHT-vs-baseline outcomes for the
/// benchmarks they share.
#[test]
fn fig11_and_fig12_agree_on_shared_benchmarks() {
    let f11 = fig11::run(DEFAULT_SEED);
    let f12 = fig12::run(DEFAULT_SEED);
    for r in &f12.rows {
        let o = f11.outcome(&r.name).expect("fig11 covers everything");
        let edp11 = o.gpht_vs_baseline().edp_improvement_pct();
        assert!(
            (edp11 - r.gpht_edp_pct).abs() < 1e-9,
            "{}: fig11 {edp11} vs fig12 {}",
            r.name,
            r.gpht_edp_pct
        );
        let deg11 = o.gpht_vs_baseline().perf_degradation_pct();
        assert!((deg11 - r.gpht_deg_pct).abs() < 1e-9, "{}", r.name);
    }
}

/// Seeds matter: a different seed produces different (but still valid)
/// numbers, while the same seed is bit-exact across invocations.
#[test]
fn drivers_are_seed_deterministic() {
    let a = fig04::run(7);
    let b = fig04::run(7);
    let c = fig04::run(8);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.name, rb.name);
        for ((na, aa), (nb, ab)) in ra.accuracies.iter().zip(&rb.accuracies) {
            assert_eq!(na, nb);
            assert!((aa - ab).abs() < 1e-15);
        }
    }
    // Not identical across seeds (noise differs), but same shape.
    let a_applu = a
        .row("applu_in")
        .unwrap()
        .accuracy_of("GPHT_8_1024")
        .unwrap();
    let c_applu = c
        .row("applu_in")
        .unwrap()
        .accuracy_of("GPHT_8_1024")
        .unwrap();
    assert!(
        (a_applu - c_applu).abs() > 1e-12,
        "seeds should decorrelate noise"
    );
    assert!(c_applu > 0.8, "shape holds at any seed");
}
