//! Rendering tests: every ablation and extension driver produces a
//! well-formed human-readable report (the shape checks themselves live in
//! each module's unit tests).

use livephase_experiments::{ablations, extensions, DEFAULT_SEED};

#[test]
fn ablation_reports_render() {
    let s = ablations::gphr_depth::run(DEFAULT_SEED).to_string();
    assert!(s.contains("GPHR depth") && s.contains("applu_in"));

    let s = ablations::upc_pitfall::run(DEFAULT_SEED).to_string();
    assert!(s.contains("UPC") && s.contains("unstable"));

    let s = ablations::oracle_gap::run(DEFAULT_SEED).to_string();
    assert!(s.contains("Oracle") && s.contains("captured"));

    let s = ablations::overheads::run(DEFAULT_SEED).to_string();
    assert!(s.contains("overhead share") && s.contains("us"));

    let s = ablations::granularity::run(DEFAULT_SEED).to_string();
    assert!(s.contains("uops/PMI") && s.contains("100M"));

    let s = ablations::selector::run(DEFAULT_SEED).to_string();
    assert!(s.contains("majority") && s.contains("EMA"));

    let s = ablations::pht_organization::run(DEFAULT_SEED).to_string();
    assert!(s.contains("hashed 512"));

    let s = ablations::confidence::run(DEFAULT_SEED).to_string();
    assert!(s.contains("gated"));

    let s = ablations::family_tour::run(DEFAULT_SEED).to_string();
    assert!(s.contains("Markov1") && s.contains("HashedGPHT_8_128"));
}

#[test]
fn extension_reports_render() {
    let s = extensions::dtm::run(DEFAULT_SEED).to_string();
    assert!(s.contains("thermal-aware") && s.contains("peak T"));

    let s = extensions::power_cap::run(DEFAULT_SEED).to_string();
    assert!(s.contains("cap [W]") && s.contains("uncapped"));

    let s = extensions::multiprogram::run(DEFAULT_SEED).to_string();
    assert!(s.contains("per-process") && s.contains("context switches"));

    let s = extensions::duration::run(DEFAULT_SEED).to_string();
    assert!(s.contains("MAE") && s.contains("mean len"));

    let s = extensions::adaptive_sampling::run(DEFAULT_SEED).to_string();
    assert!(s.contains("PMIs adaptive") && s.contains("reduction"));
}

#[test]
fn family_tour_table_exports_csv() {
    let tour = ablations::family_tour::run(DEFAULT_SEED);
    let csv = tour.table().to_csv();
    assert!(csv.starts_with("benchmark,"));
    assert_eq!(csv.lines().count(), 7, "header + six benchmarks");
}
