//! Property-based tests for the phase classification and predictors.

use livephase_core::{
    evaluate, FixedWindow, Gpht, GphtConfig, LastValue, PhaseId, PhaseMap, PhaseSample, Predictor,
    Selector, VariableWindow,
};
use proptest::prelude::*;

/// Strictly increasing positive boundary lists.
fn arb_boundaries() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-4..0.2f64, 1..12).prop_map(|mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        v
    })
}

fn arb_stream(max_phase: u8) -> impl Strategy<Value = Vec<PhaseSample>> {
    proptest::collection::vec((1..=max_phase, 0.0..0.2f64), 1..200).prop_map(|v| {
        v.into_iter()
            .map(|(p, r)| PhaseSample::new(r, PhaseId::new(p)))
            .collect()
    })
}

proptest! {
    /// Any valid boundary list yields a total, ordered partition of the
    /// non-negative axis: classification is monotone and every phase's
    /// interval reclassifies to itself.
    #[test]
    fn phase_map_partition_properties(bounds in arb_boundaries(), probe in 0.0..0.25f64) {
        let map = PhaseMap::new(bounds.clone()).expect("sorted positive boundaries");
        prop_assert_eq!(map.phase_count(), bounds.len() + 1);
        let phase = map.classify(probe);
        let (lo, hi) = map.interval(phase);
        prop_assert!(probe >= lo && probe < hi);
        // Representative rates reclassify into their own phase.
        for p in map.phases() {
            prop_assert_eq!(map.classify(map.representative_rate(p)), p);
        }
    }

    /// Classification commutes with ordering for any map.
    #[test]
    fn classification_is_monotone(bounds in arb_boundaries(), a in 0.0..0.25f64, b in 0.0..0.25f64) {
        let map = PhaseMap::new(bounds).expect("valid");
        if a <= b {
            prop_assert!(map.classify(a) <= map.classify(b));
        } else {
            prop_assert!(map.classify(b) <= map.classify(a));
        }
    }

    /// A window-1 majority fixed-window predictor is exactly last value.
    #[test]
    fn window_one_is_last_value(stream in arb_stream(6)) {
        let mut fw = FixedWindow::new(1, Selector::Majority);
        let mut lv = LastValue::new();
        for &s in &stream {
            prop_assert_eq!(fw.next(s), lv.next(s));
        }
    }

    /// A variable window with an infinite threshold never flushes and is
    /// equivalent to the fixed window of the same size.
    #[test]
    fn variable_window_without_transitions_is_fixed(stream in arb_stream(6)) {
        let mut vw = VariableWindow::new(16, f64::MAX);
        let mut fw = FixedWindow::new(16, Selector::Majority);
        for &s in &stream {
            prop_assert_eq!(vw.next(s), fw.next(s));
        }
    }

    /// A variable window with threshold 0 flushes on every rate change,
    /// making it last-value whenever the rate actually moved.
    #[test]
    fn variable_window_zero_threshold_tracks_last(stream in arb_stream(6)) {
        let mut vw = VariableWindow::new(64, 0.0);
        let mut prev_rate: Option<f64> = None;
        for &s in &stream {
            let got = vw.next(s);
            if prev_rate.is_some_and(|r| (r - s.rate.get()).abs() > 0.0) {
                prop_assert_eq!(got, s.phase, "flush leaves only the new sample");
            }
            prev_rate = Some(s.rate.get());
        }
    }

    /// The GPHT never stores more patterns than its capacity, and its
    /// hit/miss counters account for every post-warm-up observation.
    #[test]
    fn gpht_capacity_and_accounting(
        stream in arb_stream(6),
        depth in 1usize..8,
        entries in 1usize..32,
    ) {
        let mut g = Gpht::new(GphtConfig { gphr_depth: depth, pht_entries: entries });
        for &s in &stream {
            g.observe(s);
            prop_assert!(g.valid_entries() <= entries);
        }
        let post_warmup = stream.len().saturating_sub(depth - 1) as u64;
        prop_assert_eq!(g.hits() + g.misses(), post_warmup);
    }

    /// Evaluation scoring is exact: accuracy * total == correct, and the
    /// trace variant agrees with the streaming variant.
    #[test]
    fn evaluation_identities(stream in arb_stream(4)) {
        let stats = evaluate(&mut LastValue::new(), stream.iter().copied());
        prop_assert_eq!(stats.total as usize, stream.len().saturating_sub(1));
        prop_assert!(stats.correct <= stats.total);
        prop_assert!((stats.accuracy() + stats.misprediction_rate() - 1.0).abs() < 1e-12);
        let trace = livephase_core::evaluate_trace(&mut LastValue::new(), stream.iter().copied());
        prop_assert_eq!(trace.stats, stats);
        prop_assert_eq!(trace.predicted.len(), stream.len());
    }

    /// The hashed GPHT obeys the same worst-case bound as the associative
    /// one: every error is a transition or a (conflict-induced) stale
    /// slot, and staleness requires a prior transition or eviction.
    #[test]
    fn hashed_gpht_is_never_catastrophic(
        seq in proptest::collection::vec(1u8..=6, 50..250),
        entries in 1usize..256,
    ) {
        use livephase_core::{HashedGpht, HashedGphtConfig};
        let stream: Vec<PhaseSample> = seq
            .iter()
            .map(|&p| PhaseSample::new(f64::from(p) * 0.005, PhaseId::new(p)))
            .collect();
        let h = evaluate(
            &mut HashedGpht::new(HashedGphtConfig { gphr_depth: 8, pht_entries: entries }),
            stream.iter().copied(),
        );
        let l = evaluate(&mut LastValue::new(), stream.iter().copied());
        prop_assert!(
            h.mispredictions() <= 2 * l.mispredictions() + 8,
            "hashed missed {} vs LastValue {} of {}",
            h.mispredictions(), l.mispredictions(), h.total
        );
    }

    /// The Markov predictor is exactly right whenever the stream's
    /// transition function is deterministic (each phase has one successor).
    #[test]
    fn markov_is_perfect_on_deterministic_chains(
        perm in proptest::sample::subsequence(vec![1u8, 2, 3, 4, 5, 6], 2..=6),
        reps in 20usize..80,
    ) {
        use livephase_core::MarkovPredictor;
        // A cycle over distinct phases: successor function is a bijection.
        let seq: Vec<u8> = perm.iter().copied().cycle().take(perm.len() * reps).collect();
        let stream: Vec<PhaseSample> = seq
            .iter()
            .map(|&p| PhaseSample::new(f64::from(p) * 0.004, PhaseId::new(p)))
            .collect();
        let stats = evaluate(&mut MarkovPredictor::new(), stream);
        // One full cycle of warm-up; everything after is exact.
        let warmup = perm.len() as u64 + 1;
        prop_assert!(
            stats.mispredictions() <= warmup,
            "{} misses on a deterministic chain of period {}",
            stats.mispredictions(),
            perm.len()
        );
    }

    /// The confidence gate never does much worse than the better of its
    /// two constituents (inner predictor, last value) on any stream: its
    /// errors are bounded by whichever constituent it is currently
    /// emitting plus the switching lag.
    #[test]
    fn confidence_gate_is_bounded_by_constituents(
        seq in proptest::collection::vec(1u8..=6, 30..200),
    ) {
        use livephase_core::ConfidentPredictor;
        let stream: Vec<PhaseSample> = seq
            .iter()
            .map(|&p| PhaseSample::new(f64::from(p) * 0.004, PhaseId::new(p)))
            .collect();
        let gated = evaluate(
            &mut ConfidentPredictor::new(Gpht::new(GphtConfig::DEPLOYED), 2, 2),
            stream.iter().copied(),
        );
        let inner = evaluate(
            &mut Gpht::new(GphtConfig::DEPLOYED),
            stream.iter().copied(),
        );
        let lv = evaluate(&mut LastValue::new(), stream.iter().copied());
        let best = inner.correct.max(lv.correct);
        // The gate may lag each regime change by up to the counter range.
        prop_assert!(
            gated.correct as f64 >= best as f64 * 0.7 - 4.0,
            "gated {} vs best constituent {}",
            gated.correct,
            best
        );
    }

    /// Duration prediction: the run-length encoder's output always
    /// reconstructs the input stream exactly.
    #[test]
    fn run_length_encoding_reconstructs(seq in proptest::collection::vec(1u8..=6, 1..200)) {
        use livephase_core::RunLengthEncoder;
        let mut enc = RunLengthEncoder::new();
        let mut runs = Vec::new();
        for &p in &seq {
            if let Some(r) = enc.observe(PhaseId::new(p)) {
                runs.push(r);
            }
        }
        if let Some(r) = enc.finish() {
            runs.push(r);
        }
        let rebuilt: Vec<u8> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.phase.get(), usize::try_from(r.length).unwrap()))
            .collect();
        prop_assert_eq!(rebuilt, seq);
        // No two consecutive runs share a phase (maximality).
        for w in runs.windows(2) {
            prop_assert_ne!(w[0].phase, w[1].phase);
        }
    }

    /// Deeper history never changes the constant-stream behaviour: any
    /// GPHT predicts a constant stream perfectly after warm-up.
    #[test]
    fn constant_streams_are_perfect(
        phase in 1u8..=6,
        len in 20usize..100,
        depth in 1usize..8,
    ) {
        let stream: Vec<PhaseSample> =
            std::iter::repeat_n(PhaseSample::new(0.01, PhaseId::new(phase)), len).collect();
        let stats = evaluate(
            &mut Gpht::new(GphtConfig { gphr_depth: depth, pht_entries: 8 }),
            stream,
        );
        prop_assert_eq!(stats.correct, stats.total);
    }
}
