//! Phase identifiers and the Mem/Uop → phase classification map.
//!
//! Table 1 of the paper partitions the Mem/Uop axis into six categories:
//!
//! | Mem/Uop            | Phase |
//! |--------------------|-------|
//! | `< 0.005`          | 1 (highly CPU-bound)    |
//! | `[0.005, 0.010)`   | 2     |
//! | `[0.010, 0.015)`   | 3     |
//! | `[0.015, 0.020)`   | 4     |
//! | `[0.020, 0.030)`   | 5     |
//! | `≥ 0.030`          | 6 (highly memory-bound) |
//!
//! The partition is *reconfigurable after deployment* (Section 6.3 uses an
//! alternative, more conservative partition to bound performance loss), so
//! [`PhaseMap`] accepts any strictly increasing boundary list.

use crate::metrics::MemUopRate;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A phase category identifier.
///
/// Phases are numbered from **1** (most CPU-bound) upwards, matching the
/// paper's Table 1. `PhaseId` is ordered: a larger id means a more
/// memory-bound phase.
///
/// ```
/// use livephase_core::PhaseId;
/// let p = PhaseId::new(3);
/// assert_eq!(p.get(), 3);
/// assert!(PhaseId::new(1) < PhaseId::new(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhaseId(u8);

impl PhaseId {
    /// Creates a phase id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero — phase numbering starts at 1.
    #[must_use]
    pub fn new(id: u8) -> Self {
        assert!(id >= 1, "phase ids start at 1, got {id}");
        Self(id)
    }

    /// The numeric id (1-based).
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Zero-based index, convenient for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0) - 1
    }

    /// Phase 1: the most CPU-bound category.
    pub const CPU_BOUND: PhaseId = PhaseId(1);
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Error constructing a [`PhaseMap`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseMapError {
    /// The boundary list was empty; at least one boundary (two phases) is
    /// required for the map to be meaningful.
    Empty,
    /// Boundaries must be strictly increasing; the offending pair is given.
    NotIncreasing(f64, f64),
    /// A boundary was non-finite or not positive.
    InvalidBoundary(f64),
    /// More than 254 boundaries would overflow the `u8` phase id space.
    TooManyPhases(usize),
}

impl fmt::Display for PhaseMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "phase map requires at least one boundary"),
            Self::NotIncreasing(a, b) => {
                write!(f, "boundaries must be strictly increasing: {a} >= {b}")
            }
            Self::InvalidBoundary(b) => {
                write!(f, "boundary must be finite and positive: {b}")
            }
            Self::TooManyPhases(n) => {
                write!(f, "{n} boundaries exceed the 254 boundary limit")
            }
        }
    }
}

impl Error for PhaseMapError {}

/// A total, ordered partition of the Mem/Uop axis into phase categories.
///
/// `n` boundaries define `n + 1` phases. A rate `r` belongs to phase `k+1`
/// where `k` is the number of boundaries `b` with `r >= b` — i.e. boundary
/// values themselves belong to the *higher* (more memory-bound) phase,
/// matching the half-open intervals of Table 1.
///
/// ```
/// use livephase_core::PhaseMap;
/// let map = PhaseMap::pentium_m();
/// assert_eq!(map.phase_count(), 6);
/// assert_eq!(map.classify(0.0).get(), 1);
/// assert_eq!(map.classify(0.005).get(), 2); // boundary -> upper phase
/// assert_eq!(map.classify(0.12).get(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMap {
    boundaries: Vec<f64>,
}

impl PhaseMap {
    /// Creates a phase map from strictly increasing, positive boundaries.
    ///
    /// # Errors
    ///
    /// Returns a [`PhaseMapError`] if the list is empty, not strictly
    /// increasing, contains non-finite or non-positive values, or defines
    /// more than 255 phases.
    pub fn new(boundaries: Vec<f64>) -> Result<Self, PhaseMapError> {
        if boundaries.is_empty() {
            return Err(PhaseMapError::Empty);
        }
        if boundaries.len() > 254 {
            return Err(PhaseMapError::TooManyPhases(boundaries.len()));
        }
        for &b in &boundaries {
            if !b.is_finite() || b <= 0.0 {
                return Err(PhaseMapError::InvalidBoundary(b));
            }
        }
        for (&a, &b) in boundaries.iter().zip(boundaries.iter().skip(1)) {
            if a >= b {
                return Err(PhaseMapError::NotIncreasing(a, b));
            }
        }
        Ok(Self { boundaries })
    }

    /// The paper's Table 1 partition for the Pentium-M platform: six phases
    /// with boundaries at 0.005, 0.010, 0.015, 0.020 and 0.030 Mem/Uop.
    #[must_use]
    pub fn pentium_m() -> Self {
        match Self::new(vec![0.005, 0.010, 0.015, 0.020, 0.030]) {
            Ok(map) => map,
            Err(_) => unreachable!("static Table 1 boundaries are valid"),
        }
    }

    /// Number of phase categories (`boundaries + 1`).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The boundary list (strictly increasing).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Classifies a raw Mem/Uop ratio into its phase.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite (see [`MemUopRate::new`]).
    #[must_use]
    pub fn classify(&self, rate: f64) -> PhaseId {
        self.classify_rate(MemUopRate::new(rate))
    }

    /// Classifies a validated [`MemUopRate`] into its phase.
    #[must_use]
    pub fn classify_rate(&self, rate: MemUopRate) -> PhaseId {
        let r = rate.get();
        // partition_point: number of boundaries <= r, i.e. boundary values
        // fall into the upper phase (half-open intervals, Table 1).
        let k = self.boundaries.partition_point(|&b| b <= r);
        // k <= boundaries.len() <= 254 (checked in `new`), so k + 1 <= 255.
        PhaseId::new(u8::try_from(k + 1).unwrap_or(u8::MAX))
    }

    /// The half-open Mem/Uop interval `[low, high)` covered by `phase`.
    ///
    /// Phase 1 starts at `0.0`; the last phase is unbounded above
    /// (`f64::INFINITY`).
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not a member of this map.
    #[must_use]
    pub fn interval(&self, phase: PhaseId) -> (f64, f64) {
        let i = phase.index();
        assert!(
            i < self.phase_count(),
            "{phase} is out of range for a {}-phase map",
            self.phase_count()
        );
        let low = if i == 0 { 0.0 } else { self.boundaries[i - 1] }; // lint:allow(no-panic-path): 0 < i < phase_count asserted above
        let high = if i == self.boundaries.len() {
            f64::INFINITY
        } else {
            self.boundaries[i] // lint:allow(no-panic-path): i < boundaries.len() in this branch
        };
        (low, high)
    }

    /// A representative Mem/Uop value for `phase`: the interval midpoint,
    /// or `low * 1.25` for the unbounded top phase.
    ///
    /// Useful for translating a phase back into an approximate rate, e.g.
    /// when deriving DVFS tables from characterization sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not a member of this map.
    #[must_use]
    pub fn representative_rate(&self, phase: PhaseId) -> f64 {
        let (low, high) = self.interval(phase);
        if high.is_finite() {
            f64::midpoint(low, high)
        } else {
            low * 1.25
        }
    }

    /// Iterates over all phases of this map in increasing order.
    pub fn phases(&self) -> impl Iterator<Item = PhaseId> + '_ {
        // phase_count <= 255 by the `new` validation, so i always fits.
        (1..=self.phase_count()).map(|i| PhaseId::new(u8::try_from(i).unwrap_or(u8::MAX)))
    }
}

impl Default for PhaseMap {
    /// The Pentium-M Table 1 map.
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        let m = PhaseMap::pentium_m();
        // One probe per row of Table 1.
        assert_eq!(m.classify(0.0049).get(), 1);
        assert_eq!(m.classify(0.0050).get(), 2);
        assert_eq!(m.classify(0.0099).get(), 2);
        assert_eq!(m.classify(0.0100).get(), 3);
        assert_eq!(m.classify(0.0149).get(), 3);
        assert_eq!(m.classify(0.0150).get(), 4);
        assert_eq!(m.classify(0.0199).get(), 4);
        assert_eq!(m.classify(0.0200).get(), 5);
        assert_eq!(m.classify(0.0299).get(), 5);
        assert_eq!(m.classify(0.0300).get(), 6);
        assert_eq!(m.classify(0.5).get(), 6);
    }

    #[test]
    fn interval_roundtrip() {
        let m = PhaseMap::pentium_m();
        assert_eq!(m.interval(PhaseId::new(1)), (0.0, 0.005));
        assert_eq!(m.interval(PhaseId::new(5)), (0.020, 0.030));
        let (lo, hi) = m.interval(PhaseId::new(6));
        assert_eq!(lo, 0.030);
        assert!(hi.is_infinite());
    }

    #[test]
    fn representative_rate_is_inside_interval() {
        let m = PhaseMap::pentium_m();
        for p in m.phases() {
            let r = m.representative_rate(p);
            assert_eq!(m.classify(r), p, "representative of {p} reclassifies");
        }
    }

    #[test]
    fn rejects_bad_boundaries() {
        assert_eq!(PhaseMap::new(vec![]), Err(PhaseMapError::Empty));
        assert!(matches!(
            PhaseMap::new(vec![0.01, 0.01]),
            Err(PhaseMapError::NotIncreasing(_, _))
        ));
        assert!(matches!(
            PhaseMap::new(vec![0.02, 0.01]),
            Err(PhaseMapError::NotIncreasing(_, _))
        ));
        assert!(matches!(
            PhaseMap::new(vec![-0.1]),
            Err(PhaseMapError::InvalidBoundary(_))
        ));
        assert!(matches!(
            PhaseMap::new(vec![0.0]),
            Err(PhaseMapError::InvalidBoundary(_))
        ));
        assert!(matches!(
            PhaseMap::new(vec![f64::NAN]),
            Err(PhaseMapError::InvalidBoundary(_))
        ));
    }

    #[test]
    fn custom_two_phase_map() {
        let m = PhaseMap::new(vec![0.01]).unwrap();
        assert_eq!(m.phase_count(), 2);
        assert_eq!(m.classify(0.0).get(), 1);
        assert_eq!(m.classify(0.5).get(), 2);
    }

    #[test]
    fn phases_iterator_covers_map() {
        let m = PhaseMap::pentium_m();
        let ids: Vec<u8> = m.phases().map(PhaseId::get).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn interval_rejects_foreign_phase() {
        let _ = PhaseMap::pentium_m().interval(PhaseId::new(7));
    }

    #[test]
    #[should_panic(expected = "phase ids start at 1")]
    fn phase_zero_is_rejected() {
        let _ = PhaseId::new(0);
    }

    #[test]
    fn display() {
        assert_eq!(PhaseId::new(4).to_string(), "P4");
    }

    #[test]
    fn error_display_nonempty() {
        // C-DEBUG-NONEMPTY / C-GOOD-ERR: all variants render to prose.
        let variants = [
            PhaseMapError::Empty,
            PhaseMapError::NotIncreasing(1.0, 0.5),
            PhaseMapError::InvalidBoundary(-1.0),
            PhaseMapError::TooManyPhases(300),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
