//! Execution metrics observed through performance monitoring counters.
//!
//! The paper monitors two programmable PMCs — `UOPS_RETIRED` and
//! `BUS_TRAN_MEM` — plus the time stamp counter. From those raw counts two
//! derived metrics matter:
//!
//! * **Mem/Uop** ([`MemUopRate`]): memory bus transactions per retired
//!   micro-op. The paper's phase definitions are built on this metric
//!   because it is *DVFS-invariant* (Section 4, Figure 7): memory traffic
//!   per unit of work does not change when the core clock changes.
//! * **UPC** ([`Upc`]): micro-ops retired per cycle. UPC is *not*
//!   DVFS-invariant for memory-bound code (memory latency does not scale
//!   with core frequency), which is exactly why the paper refuses to define
//!   phases on it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory bus transactions per retired micro-op.
///
/// This is the paper's phase-defining metric. Values are small —
/// SPEC CPU2000 spans roughly `0.0` (fully CPU-bound) to `0.12` (mcf).
///
/// ```
/// use livephase_core::MemUopRate;
/// let r = MemUopRate::new(0.0125);
/// assert!(r.get() > 0.01 && r.get() < 0.015);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct MemUopRate(f64);

impl MemUopRate {
    /// Creates a rate from a raw ratio.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, NaN or infinite — counter-derived
    /// ratios are always finite and non-negative.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "Mem/Uop rate must be finite and non-negative, got {rate}"
        );
        Self(rate)
    }

    /// Computes the rate from raw counter values.
    ///
    /// Returns zero when no uops retired (an empty interval).
    #[must_use]
    pub fn from_counts(mem_transactions: u64, uops_retired: u64) -> Self {
        if uops_retired == 0 {
            Self(0.0)
        } else {
            Self(mem_transactions as f64 / uops_retired as f64)
        }
    }

    /// The raw ratio.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for MemUopRate {
    fn default() -> Self {
        Self(0.0)
    }
}

impl fmt::Display for MemUopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<MemUopRate> for f64 {
    fn from(r: MemUopRate) -> f64 {
        r.0
    }
}

/// Micro-ops retired per cycle.
///
/// Derived from the uop PMC and the time stamp counter. See the module
/// documentation for why this metric must not be used to *define* phases
/// under dynamic power management.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Upc(f64);

impl Upc {
    /// Creates a UPC value.
    ///
    /// # Panics
    ///
    /// Panics if `upc` is negative, NaN or infinite.
    #[must_use]
    pub fn new(upc: f64) -> Self {
        assert!(
            upc.is_finite() && upc >= 0.0,
            "UPC must be finite and non-negative, got {upc}"
        );
        Self(upc)
    }

    /// Computes UPC from raw counter values.
    ///
    /// Returns zero when no cycles elapsed.
    #[must_use]
    pub fn from_counts(uops_retired: u64, cycles: u64) -> Self {
        if cycles == 0 {
            Self(0.0)
        } else {
            Self(uops_retired as f64 / cycles as f64)
        }
    }

    /// The raw ratio.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for Upc {
    fn default() -> Self {
        Self(0.0)
    }
}

impl fmt::Display for Upc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<Upc> for f64 {
    fn from(u: Upc) -> f64 {
        u.0
    }
}

/// Raw counter readings for one sampling interval, as collected by the PMI
/// handler when the uop counter overflows.
///
/// This is the complete information the paper's loadable kernel module logs
/// per 100 M-uop interval: the two programmable counters and the TSC delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalMetrics {
    /// Micro-ops retired in the interval (the PMI granularity, normally 100 M).
    pub uops_retired: u64,
    /// Instructions retired in the interval.
    pub instructions_retired: u64,
    /// Memory bus transactions in the interval (`BUS_TRAN_MEM`).
    pub mem_transactions: u64,
    /// Core cycles elapsed in the interval (TSC delta).
    pub cycles: u64,
}

impl IntervalMetrics {
    /// Memory-boundedness of the interval.
    #[must_use]
    pub fn mem_uop(&self) -> MemUopRate {
        MemUopRate::from_counts(self.mem_transactions, self.uops_retired)
    }

    /// Micro-ops per cycle of the interval.
    #[must_use]
    pub fn upc(&self) -> Upc {
        Upc::from_counts(self.uops_retired, self.cycles)
    }

    /// Available concurrency proxy used by Wu et al.: uops per instruction.
    ///
    /// Returns `1.0` for an empty interval.
    #[must_use]
    pub fn uops_per_instruction(&self) -> f64 {
        if self.instructions_retired == 0 {
            1.0
        } else {
            self.uops_retired as f64 / self.instructions_retired as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_uop_from_counts() {
        let r = MemUopRate::from_counts(2_000_000, 100_000_000);
        assert!((r.get() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn mem_uop_empty_interval_is_zero() {
        assert_eq!(MemUopRate::from_counts(5, 0).get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mem_uop_rejects_negative() {
        let _ = MemUopRate::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mem_uop_rejects_nan() {
        let _ = MemUopRate::new(f64::NAN);
    }

    #[test]
    fn upc_from_counts() {
        let u = Upc::from_counts(100, 50);
        assert!((u.get() - 2.0).abs() < 1e-12);
        assert_eq!(Upc::from_counts(100, 0).get(), 0.0);
    }

    #[test]
    fn interval_metrics_derived() {
        let m = IntervalMetrics {
            uops_retired: 100_000_000,
            instructions_retired: 80_000_000,
            mem_transactions: 1_500_000,
            cycles: 200_000_000,
        };
        assert!((m.mem_uop().get() - 0.015).abs() < 1e-12);
        assert!((m.upc().get() - 0.5).abs() < 1e-12);
        assert!((m.uops_per_instruction() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn uops_per_instruction_defaults_to_one() {
        assert_eq!(IntervalMetrics::default().uops_per_instruction(), 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemUopRate::new(0.01234).to_string(), "0.0123");
        assert_eq!(Upc::new(1.5).to_string(), "1.500");
    }

    #[test]
    fn ordering_works() {
        assert!(MemUopRate::new(0.01) < MemUopRate::new(0.02));
        assert!(Upc::new(1.0) < Upc::new(2.0));
    }
}
