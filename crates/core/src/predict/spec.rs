//! Textual predictor specifications.
//!
//! One grammar names every predictor family the workspace ships, so the
//! CLI, the network service handshake, and tests all agree on what
//! `"gpht:8:128"` means:
//!
//! ```text
//! lastvalue | markov | fixwindow:<n> | varwindow:<n>:<threshold> |
//! gpht:<depth>:<entries> | hashedgpht:<depth>:<entries>
//! ```

use super::fixed_window::{FixedWindow, Selector};
use super::gpht::{Gpht, GphtConfig};
use super::hashed_gpht::{HashedGpht, HashedGphtConfig};
use super::last_value::LastValue;
use super::markov::MarkovPredictor;
use super::variable_window::VariableWindow;
use super::Predictor;
use std::error::Error;
use std::fmt;

/// The grammar accepted by [`from_spec`], for error messages and help
/// text.
pub const GRAMMAR: &str = "lastvalue | markov | fixwindow:<n> | \
                           varwindow:<n>:<threshold> | gpht:<depth>:<entries> | \
                           hashedgpht:<depth>:<entries>";

/// A rejected predictor specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorSpecError {
    spec: String,
}

impl PredictorSpecError {
    /// The offending spec string.
    #[must_use]
    pub fn spec(&self) -> &str {
        &self.spec
    }
}

impl fmt::Display for PredictorSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad predictor spec {:?}; accepted: {GRAMMAR}", self.spec)
    }
}

impl Error for PredictorSpecError {}

/// Builds a predictor from a spec string such as `gpht:8:128`.
///
/// # Errors
///
/// Returns a [`PredictorSpecError`] (whose message includes the accepted
/// grammar) when the spec does not parse or carries zero-sized parameters.
pub fn from_spec(spec: &str) -> Result<Box<dyn Predictor>, PredictorSpecError> {
    let bad = || PredictorSpecError {
        spec: spec.to_owned(),
    };
    let num = |s: &str| s.parse::<usize>().map_err(|_| bad());
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["lastvalue"] => Ok(Box::new(LastValue::new())),
        ["markov"] => Ok(Box::new(MarkovPredictor::new())),
        ["fixwindow", n] => {
            let n = num(n)?;
            if n == 0 {
                return Err(bad());
            }
            Ok(Box::new(FixedWindow::new(n, Selector::Majority)))
        }
        ["varwindow", n, thr] => {
            let n = num(n)?;
            let thr: f64 = thr.parse().map_err(|_| bad())?;
            if n == 0 || !thr.is_finite() || thr < 0.0 {
                return Err(bad());
            }
            Ok(Box::new(VariableWindow::new(n, thr)))
        }
        ["gpht", depth, entries] => {
            let (depth, entries) = (num(depth)?, num(entries)?);
            if depth == 0 || entries == 0 {
                return Err(bad());
            }
            Ok(Box::new(Gpht::new(GphtConfig {
                gphr_depth: depth,
                pht_entries: entries,
            })))
        }
        ["hashedgpht", depth, entries] => {
            let (depth, entries) = (num(depth)?, num(entries)?);
            if depth == 0 || entries == 0 {
                return Err(bad());
            }
            Ok(Box::new(HashedGpht::new(HashedGphtConfig {
                gphr_depth: depth,
                pht_entries: entries,
            })))
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_parses() {
        for (spec, name) in [
            ("lastvalue", "LastValue"),
            ("markov", "Markov1"),
            ("gpht:8:128", "GPHT_8_128"),
        ] {
            assert_eq!(from_spec(spec).unwrap().name(), name);
        }
        assert!(from_spec("fixwindow:4").is_ok());
        assert!(from_spec("varwindow:8:0.005").is_ok());
        assert!(from_spec("hashedgpht:8:128").is_ok());
    }

    #[test]
    fn bad_specs_are_rejected_with_the_grammar() {
        for spec in [
            "",
            "gpht",
            "gpht:0:128",
            "gpht:8:0",
            "gpht:8",
            "fixwindow:0",
            "varwindow:4:nan",
            "varwindow:4:-1",
            "frobnicate",
        ] {
            let e = from_spec(spec).err().expect("spec must be rejected");
            assert_eq!(e.spec(), spec);
            assert!(e.to_string().contains("gpht:<depth>:<entries>"));
        }
    }
}
