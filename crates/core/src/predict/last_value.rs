//! The last value predictor: `Phase[t+1] = Phase[t]`.
//!
//! The simplest statistical predictor and the reactive baseline used by most
//! prior dynamic-management systems (Section 6.2 calls DVFS driven by it the
//! "reactive" approach). Near-optimal for stable applications, poor for
//! rapidly varying ones — on `applu` it mispredicts more than half the
//! intervals (Figure 2).

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;

/// Predicts that the next interval repeats the last observed phase.
///
/// ```
/// use livephase_core::{LastValue, PhaseSample, PhaseId, Predictor};
/// let mut p = LastValue::new();
/// assert_eq!(p.next(PhaseSample::new(0.012, PhaseId::new(3))).get(), 3);
/// assert_eq!(p.next(PhaseSample::new(0.001, PhaseId::new(1))).get(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LastValue {
    last: Option<PhaseId>,
}

impl LastValue {
    /// Creates an empty last-value predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for LastValue {
    fn observe(&mut self, sample: PhaseSample) {
        self.last = Some(sample.phase);
    }

    fn predict(&self) -> PhaseId {
        self.last.unwrap_or(PhaseId::CPU_BOUND)
    }

    fn reset(&mut self) {
        self.last = None;
    }

    fn name(&self) -> String {
        "LastValue".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_prediction_is_cpu_bound() {
        assert_eq!(LastValue::new().predict(), PhaseId::CPU_BOUND);
    }

    #[test]
    fn tracks_last_observation() {
        let mut p = LastValue::new();
        for id in [2u8, 5, 3, 6] {
            p.observe(PhaseSample::new(0.01, PhaseId::new(id)));
            assert_eq!(p.predict().get(), id);
        }
    }

    #[test]
    fn reset_forgets() {
        let mut p = LastValue::new();
        p.observe(PhaseSample::new(0.04, PhaseId::new(6)));
        p.reset();
        assert_eq!(p.predict(), PhaseId::CPU_BOUND);
    }
}
