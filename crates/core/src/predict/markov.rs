//! A first-order Markov phase predictor.
//!
//! A natural middle ground between the statistical predictors and the
//! GPHT: predict the most frequent successor of the *current* phase,
//! learned online from transition counts. Equivalent to a GPHT with
//! depth 1 and per-phase frequency (rather than last-outcome) training —
//! included as a baseline the paper's line-up omits, to show that one
//! level of context is not enough for rapidly varying workloads (the same
//! phase recurs at several positions of a pattern with different
//! successors).

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;

/// Maximum phase id the transition table covers (ids are `u8`, so this is
/// simply the full range).
const PHASES: usize = 256;

/// Predicts the historically most frequent successor of the current phase.
///
/// ```
/// use livephase_core::{MarkovPredictor, PhaseSample, PhaseId, Predictor};
/// let mut m = MarkovPredictor::new();
/// // 1 is always followed by 5 in this stream.
/// for _ in 0..10 {
///     m.observe(PhaseSample::new(0.001, PhaseId::new(1)));
///     m.observe(PhaseSample::new(0.025, PhaseId::new(5)));
/// }
/// m.observe(PhaseSample::new(0.001, PhaseId::new(1)));
/// assert_eq!(m.predict().get(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovPredictor {
    /// `counts[from][to]`: observed transitions, laid out flat.
    counts: Vec<u32>,
    current: Option<PhaseId>,
}

impl MarkovPredictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; PHASES * PHASES],
            current: None,
        }
    }

    /// Observed transitions out of `from`.
    #[must_use]
    pub fn outgoing(&self, from: PhaseId) -> u32 {
        let base = from.index() * PHASES;
        // A phase outside the Table 1 map has no recorded transitions.
        self.counts
            .get(base..base + PHASES)
            .map_or(0, |row| row.iter().sum())
    }

    /// The learned most likely successor of `from`, if any transition out
    /// of it has been seen. Ties break toward the more CPU-bound phase
    /// (the conservative management choice).
    #[must_use]
    pub fn most_likely_successor(&self, from: PhaseId) -> Option<PhaseId> {
        let base = from.index() * PHASES;
        let row = self.counts.get(base..base + PHASES)?;
        let (idx, &count) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if count == 0 {
            None
        } else {
            // idx < PHASES = 6, so idx + 1 always fits a u8.
            Some(PhaseId::new(u8::try_from(idx + 1).unwrap_or(u8::MAX)))
        }
    }
}

impl Default for MarkovPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for MarkovPredictor {
    fn observe(&mut self, sample: PhaseSample) {
        if let Some(prev) = self.current {
            if let Some(c) = self
                .counts
                .get_mut(prev.index() * PHASES + sample.phase.index())
            {
                *c += 1;
            }
        }
        self.current = Some(sample.phase);
    }

    fn predict(&self) -> PhaseId {
        match self.current {
            None => PhaseId::CPU_BOUND,
            Some(cur) => self.most_likely_successor(cur).unwrap_or(cur),
        }
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.current = None;
    }

    fn name(&self) -> String {
        "Markov1".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::predict::gpht::{Gpht, GphtConfig};
    use crate::predict::last_value::LastValue;

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(f64::from(id) * 0.005, PhaseId::new(id))
    }

    fn stream(pattern: &[u8], len: usize) -> Vec<PhaseSample> {
        pattern.iter().copied().cycle().take(len).map(s).collect()
    }

    #[test]
    fn learns_deterministic_transitions() {
        // 1 -> 3 -> 6 -> 1: every phase has a unique successor; Markov-1
        // is perfect after warm-up.
        let st = stream(&[1, 3, 6], 300);
        let acc = evaluate(&mut MarkovPredictor::new(), st).accuracy();
        assert!(acc > 0.97, "{acc}");
    }

    #[test]
    fn ambiguous_context_defeats_markov_but_not_gpht() {
        // Phase 1 is followed by 3 half the time and 6 half the time, but
        // deeper history disambiguates (…,6,1 -> 3 and …,3,1 -> 6).
        let st = stream(&[1, 3, 1, 6], 400);
        let markov = evaluate(&mut MarkovPredictor::new(), st.iter().copied()).accuracy();
        let gpht = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), st.iter().copied()).accuracy();
        assert!(gpht > 0.95, "GPHT disambiguates: {gpht}");
        assert!(
            markov < gpht - 0.2,
            "one level of context is not enough: markov {markov} vs gpht {gpht}"
        );
    }

    #[test]
    fn beats_last_value_on_alternation() {
        let st = stream(&[1, 6], 200);
        let markov = evaluate(&mut MarkovPredictor::new(), st.iter().copied()).accuracy();
        let lv = evaluate(&mut LastValue::new(), st.iter().copied()).accuracy();
        assert!(markov > 0.95);
        assert!(lv < 0.05);
    }

    #[test]
    fn falls_back_to_last_value_when_ignorant() {
        let mut m = MarkovPredictor::new();
        m.observe(s(4));
        assert_eq!(m.predict().get(), 4, "no transitions seen yet");
        assert_eq!(m.most_likely_successor(PhaseId::new(4)), None);
    }

    #[test]
    fn ties_break_toward_cpu_bound() {
        let mut m = MarkovPredictor::new();
        for id in [2u8, 1, 2, 5] {
            m.observe(s(id));
        }
        // Out of 2: one transition to 1, one to 5 — tie -> phase 1.
        assert_eq!(
            m.most_likely_successor(PhaseId::new(2)),
            Some(PhaseId::new(1))
        );
        assert_eq!(m.outgoing(PhaseId::new(2)), 2);
    }

    #[test]
    fn reset_forgets() {
        let mut m = MarkovPredictor::new();
        for id in [1u8, 5, 1, 5] {
            m.observe(s(id));
        }
        m.reset();
        assert_eq!(m.predict(), PhaseId::CPU_BOUND);
        assert_eq!(m.outgoing(PhaseId::new(1)), 0);
        assert_eq!(m.name(), "Markov1");
    }
}
