//! Confidence gating for phase predictors.
//!
//! A misprediction costs a dynamic manager twice: the wrong setting for
//! one interval *and* a possibly useless voltage transition. A standard
//! architecture trick — an n-bit saturating confidence counter, as used
//! in branch-predictor confidence estimation — suppresses a predictor's
//! output while its recent track record is poor, falling back to the last
//! observed phase (the reactive choice). This is a faithful "optional
//! extension" in the spirit of the paper's Section 8 generality claims.

use super::{last_value::LastValue, PhaseSample, Predictor};
use crate::phase::PhaseId;

/// Wraps any [`Predictor`] with an n-bit saturating confidence counter.
///
/// The counter increments on each correct prediction and decrements on a
/// miss; the inner predictor's output is used only while the counter is
/// at or above the threshold, otherwise the last observed phase is
/// emitted.
///
/// ```
/// use livephase_core::{Gpht, GphtConfig, PhaseSample, PhaseId, Predictor};
/// use livephase_core::predict::confidence::ConfidentPredictor;
///
/// let gpht = Gpht::new(GphtConfig::DEPLOYED);
/// let mut p = ConfidentPredictor::new(gpht, 2, 2);
/// let s = PhaseSample::new(0.001, PhaseId::new(1));
/// let _ = p.next(s);
/// ```
#[derive(Debug, Clone)]
pub struct ConfidentPredictor<P> {
    inner: P,
    fallback: LastValue,
    /// Saturating counter value.
    counter: u8,
    /// Saturation ceiling (`2^bits - 1` for an n-bit counter).
    max: u8,
    /// Counter value at or above which the inner predictor is trusted.
    threshold: u8,
    /// What the inner predictor said last period (to score it).
    last_inner: Option<PhaseId>,
}

impl<P: Predictor> ConfidentPredictor<P> {
    /// Creates a gate with `bits`-wide counter and the given trust
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or the threshold does not
    /// fit the counter.
    #[must_use]
    pub fn new(inner: P, bits: u8, threshold: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = if bits == 8 { u8::MAX } else { (1 << bits) - 1 };
        assert!(threshold <= max, "threshold must fit the counter");
        Self {
            inner,
            fallback: LastValue::new(),
            // Start trusting: a cold predictor behaves as last value
            // anyway, so early trust costs nothing.
            counter: max,
            max,
            threshold,
            last_inner: None,
        }
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Current confidence counter value.
    #[must_use]
    pub fn confidence(&self) -> u8 {
        self.counter
    }

    /// Whether the inner predictor is currently trusted.
    #[must_use]
    pub fn is_confident(&self) -> bool {
        self.counter >= self.threshold
    }
}

impl<P: Predictor> Predictor for ConfidentPredictor<P> {
    fn observe(&mut self, sample: PhaseSample) {
        // Score the inner predictor's previous call, whether or not it
        // was the emitted output — confidence must track the predictor
        // itself, or it can never re-earn trust while suppressed.
        if let Some(said) = self.last_inner {
            if said == sample.phase {
                self.counter = (self.counter + 1).min(self.max);
            } else {
                self.counter = self.counter.saturating_sub(1);
            }
        }
        self.inner.observe(sample);
        self.fallback.observe(sample);
        self.last_inner = Some(self.inner.predict());
    }

    fn predict(&self) -> PhaseId {
        if self.is_confident() {
            self.inner.predict()
        } else {
            self.fallback.predict()
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.fallback.reset();
        self.counter = self.max;
        self.last_inner = None;
    }

    fn name(&self) -> String {
        format!("Confident_{}({})", self.threshold, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::predict::gpht::{Gpht, GphtConfig};

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(f64::from(id) * 0.005, PhaseId::new(id))
    }

    /// A predictor that always answers the same phase — wrong on most
    /// streams, for driving confidence down.
    #[derive(Debug)]
    struct Stubborn(u8);
    impl Predictor for Stubborn {
        fn observe(&mut self, _s: PhaseSample) {}
        fn predict(&self) -> PhaseId {
            PhaseId::new(self.0)
        }
        fn reset(&mut self) {}
        fn name(&self) -> String {
            "Stubborn".into()
        }
    }

    #[test]
    fn suppresses_a_bad_predictor() {
        // Stream of constant phase 1; inner insists on 6.
        let mut p = ConfidentPredictor::new(Stubborn(6), 2, 2);
        let mut correct = 0;
        for _ in 0..50 {
            let pred = p.predict();
            if pred.get() == 1 {
                correct += 1;
            }
            p.observe(s(1));
        }
        // After the counter drains (3 misses), the gate emits last value.
        assert!(correct >= 46, "{correct}/50");
        assert!(!p.is_confident());
    }

    #[test]
    fn trusts_a_good_predictor() {
        let mut gated = ConfidentPredictor::new(Gpht::new(GphtConfig::DEPLOYED), 2, 2);
        let mut plain = Gpht::new(GphtConfig::DEPLOYED);
        let seq: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(300).collect();
        let g = evaluate(&mut gated, seq.iter().map(|&i| s(i)));
        let p = evaluate(&mut plain, seq.iter().map(|&i| s(i)));
        // On a learnable stream the gate must not cost more than the few
        // intervals it takes to earn trust.
        assert!(g.correct + 8 >= p.correct, "gated {g:?} vs plain {p:?}");
        assert!(gated.is_confident());
    }

    #[test]
    fn confidence_recovers_after_disruption() {
        let mut p = ConfidentPredictor::new(Gpht::new(GphtConfig::DEPLOYED), 2, 2);
        // Learn a pattern...
        for _ in 0..50 {
            for id in [1u8, 4, 1, 4] {
                p.observe(s(id));
            }
        }
        assert!(p.is_confident());
        // ...disrupt it with noise long enough to drain confidence...
        for id in [2u8, 6, 3, 5, 2, 6, 3, 5] {
            p.observe(s(id));
        }
        // ...then return to the pattern: trust must re-accumulate.
        for _ in 0..50 {
            for id in [1u8, 4, 1, 4] {
                p.observe(s(id));
            }
        }
        assert!(p.is_confident(), "confidence should recover");
    }

    #[test]
    fn name_and_reset() {
        let mut p = ConfidentPredictor::new(Stubborn(2), 3, 4);
        assert_eq!(p.name(), "Confident_4(Stubborn)");
        for _ in 0..20 {
            p.observe(s(1));
        }
        p.reset();
        assert_eq!(p.confidence(), 7, "3-bit counter resets to max");
        assert!(p.is_confident(), "reset restores initial trust");
        assert_eq!(p.predict().get(), 2, "trusted inner output after reset");
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_rejected() {
        let _ = ConfidentPredictor::new(Stubborn(1), 0, 0);
    }

    #[test]
    #[should_panic(expected = "threshold must fit")]
    fn oversized_threshold_rejected() {
        let _ = ConfidentPredictor::new(Stubborn(1), 2, 4);
    }
}
