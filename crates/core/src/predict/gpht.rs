//! The Global Phase History Table (GPHT) predictor — the paper's proposal.
//!
//! Structurally a software analogue of a two-level *global* branch
//! predictor (Yeh & Patt): a **Global Phase History Register** (GPHR) shift
//! register holds the last `gphr_depth` observed phases; its contents index
//! a **Pattern History Table** (PHT) that associates previously seen phase
//! patterns with the phase that followed them.
//!
//! Per Section 3 of the paper, each PMI the predictor:
//!
//! 1. shifts the newly observed phase into the GPHR;
//! 2. associatively compares the GPHR against the stored PHT tags;
//! 3. on a **match**, emits the stored next-phase prediction and, at the
//!    *next* sampling period, updates that entry's prediction with the
//!    actually observed phase;
//! 4. on a **mismatch**, falls back to last-value prediction (`GPHR[0]`)
//!    and inserts the current GPHR into the PHT, evicting the least
//!    recently used entry when the table is full (an `Age/Invalid` field
//!    tracks both validity and recency).
//!
//! With a PHT of one entry the predictor degenerates to last-value (nearly
//! 100 % tag mismatches), which the paper observes in Figure 5 and which is
//! enforced here by a property test.

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sizing of a [`Gpht`] predictor.
///
/// The paper's exploration settles on `gphr_depth = 8` and
/// `pht_entries = 128` for the deployed system (Figure 5 shows 128 entries
/// match the 1024-entry predictor almost exactly); the constants
/// [`GphtConfig::DEPLOYED`] and [`GphtConfig::REFERENCE`] capture the two
/// configurations used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GphtConfig {
    /// Number of past phases held in the global phase history register.
    pub gphr_depth: usize,
    /// Number of pattern entries in the pattern history table.
    pub pht_entries: usize,
}

impl GphtConfig {
    /// The configuration deployed on the paper's real system: GPHR depth 8,
    /// 128 PHT entries.
    pub const DEPLOYED: GphtConfig = GphtConfig {
        gphr_depth: 8,
        pht_entries: 128,
    };

    /// The reference configuration used in the prediction study
    /// (Figures 2 and 4): GPHR depth 8, 1024 PHT entries.
    pub const REFERENCE: GphtConfig = GphtConfig {
        gphr_depth: 8,
        pht_entries: 1024,
    };

    fn validate(self) {
        assert!(self.gphr_depth >= 1, "GPHR depth must be at least 1");
        assert!(self.pht_entries >= 1, "PHT must have at least 1 entry");
    }
}

impl Default for GphtConfig {
    fn default() -> Self {
        Self::DEPLOYED
    }
}

/// A valid pattern-history-table row: a GPHR-pattern tag, the phase that is
/// predicted to follow it, and an age stamp for LRU replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PhtEntry {
    /// The phase pattern this row matches (most recent phase first).
    tag: Box<[PhaseId]>,
    /// The next-phase prediction associated with the tag.
    prediction: PhaseId,
    /// Logical timestamp of the last touch, for LRU replacement.
    age: u64,
}

/// The Global Phase History Table predictor.
///
/// ```
/// use livephase_core::{Gpht, GphtConfig, PhaseSample, PhaseId, Predictor};
///
/// let mut gpht = Gpht::new(GphtConfig::DEPLOYED);
/// // A short repeating pattern: 1 3 6 3, 1 3 6 3, ...
/// let pattern = [1u8, 3, 6, 3];
/// let mut correct = 0;
/// let mut total = 0;
/// let mut pred = gpht.predict();
/// for i in 0..400 {
///     let actual = PhaseId::new(pattern[i % 4]);
///     if i > 0 {
///         total += 1;
///         if pred == actual { correct += 1; }
///     }
///     pred = gpht.next(PhaseSample::new(0.01, actual));
/// }
/// // After warm-up the pattern is learned perfectly; last-value would be 0 %.
/// assert!(correct as f64 / total as f64 > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Gpht {
    config: GphtConfig,
    /// Most recent phase at the front (`GPHR[0]`).
    gphr: VecDeque<PhaseId>,
    /// `None` = invalid row (the paper's `-1` age marker).
    pht: Vec<Option<PhtEntry>>,
    /// Logical clock driving LRU ages.
    tick: u64,
    /// Row used (matched or inserted) in the previous period, whose
    /// prediction is trained by the next observed phase.
    pending_update: Option<usize>,
    /// The prediction emitted for the upcoming interval.
    prediction: PhaseId,
    /// Running count of PHT tag hits (for diagnostics / ablations).
    hits: u64,
    /// Running count of PHT tag misses.
    misses: u64,
}

impl Gpht {
    /// Creates a GPHT predictor with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(config: GphtConfig) -> Self {
        config.validate();
        Self {
            config,
            gphr: VecDeque::with_capacity(config.gphr_depth),
            pht: vec![None; config.pht_entries],
            tick: 0,
            pending_update: None,
            prediction: PhaseId::CPU_BOUND,
            hits: 0,
            misses: 0,
        }
    }

    /// The sizing this predictor was built with.
    #[must_use]
    pub fn config(&self) -> GphtConfig {
        self.config
    }

    /// Number of currently valid PHT rows.
    #[must_use]
    pub fn valid_entries(&self) -> usize {
        self.pht.iter().filter(|e| e.is_some()).count()
    }

    /// PHT tag hits since construction or [`reset`](Predictor::reset).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// PHT tag misses since construction or [`reset`](Predictor::reset).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The current GPHR contents, most recent phase first.
    #[must_use]
    pub fn history(&self) -> Vec<PhaseId> {
        self.gphr.iter().copied().collect()
    }

    fn gphr_matches(&self, entry: &PhtEntry) -> bool {
        entry.tag.len() == self.gphr.len()
            && entry.tag.iter().zip(self.gphr.iter()).all(|(a, b)| a == b)
    }

    /// Index of the row to victimize: an invalid row if any, else the LRU.
    fn victim(&self) -> usize {
        let mut lru = 0;
        let mut lru_age = u64::MAX;
        for (i, row) in self.pht.iter().enumerate() {
            match row {
                None => return i,
                Some(e) => {
                    if e.age < lru_age {
                        lru_age = e.age;
                        lru = i;
                    }
                }
            }
        }
        lru
    }
}

impl Predictor for Gpht {
    fn observe(&mut self, sample: PhaseSample) {
        self.tick += 1;

        // (3)/(4): train the row used last period with the actual outcome.
        if let Some(i) = self.pending_update.take() {
            if let Some(entry) = self.pht.get_mut(i).and_then(Option::as_mut) {
                entry.prediction = sample.phase;
            }
        }

        // (1) Shift the observed phase into the GPHR.
        if self.gphr.len() == self.config.gphr_depth {
            self.gphr.pop_back();
        }
        self.gphr.push_front(sample.phase);

        if self.gphr.len() < self.config.gphr_depth {
            // Warm-up: no full pattern yet; behave as last-value and do not
            // pollute the PHT with short tags.
            self.prediction = sample.phase;
            return;
        }

        // (2) Associative tag search.
        let hit = self
            .pht
            .iter()
            .position(|slot| slot.as_ref().is_some_and(|e| self.gphr_matches(e)));

        match hit {
            Some(i) => {
                self.hits += 1;
                if let Some(entry) = self.pht.get_mut(i).and_then(Option::as_mut) {
                    entry.age = self.tick;
                    self.prediction = entry.prediction;
                }
                self.pending_update = Some(i);
            }
            None => {
                self.misses += 1;
                // Fall back to last value and allocate the pattern.
                self.prediction = sample.phase;
                let i = self.victim();
                if let Some(slot) = self.pht.get_mut(i) {
                    *slot = Some(PhtEntry {
                        tag: self.gphr.iter().copied().collect(),
                        // Seed with last value until trained next period.
                        prediction: sample.phase,
                        age: self.tick,
                    });
                }
                self.pending_update = Some(i);
            }
        }
    }

    fn predict(&self) -> PhaseId {
        self.prediction
    }

    fn reset(&mut self) {
        self.gphr.clear();
        self.pht.iter_mut().for_each(|e| *e = None);
        self.tick = 0;
        self.pending_update = None;
        self.prediction = PhaseId::CPU_BOUND;
        self.hits = 0;
        self.misses = 0;
    }

    fn name(&self) -> String {
        format!(
            "GPHT_{}_{}",
            self.config.gphr_depth, self.config.pht_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(0.01, PhaseId::new(id))
    }

    /// Runs `seq` through `p` and returns accuracy of next-phase prediction.
    fn accuracy(p: &mut dyn Predictor, seq: &[u8]) -> f64 {
        let mut correct = 0usize;
        let mut pred = p.predict();
        for (i, &id) in seq.iter().enumerate() {
            let actual = PhaseId::new(id);
            if i > 0 && pred == actual {
                correct += 1;
            }
            pred = p.next(PhaseSample::new(0.01, actual));
        }
        correct as f64 / (seq.len() - 1) as f64
    }

    #[test]
    fn learns_periodic_pattern() {
        let mut g = Gpht::new(GphtConfig::DEPLOYED);
        let seq: Vec<u8> = [1u8, 2, 4, 6, 4, 2]
            .iter()
            .copied()
            .cycle()
            .take(600)
            .collect();
        let acc = accuracy(&mut g, &seq);
        assert!(
            acc > 0.95,
            "GPHT should learn a period-6 pattern, got {acc}"
        );
    }

    #[test]
    fn last_value_fails_same_pattern() {
        use super::super::last_value::LastValue;
        let mut lv = LastValue::new();
        let seq: Vec<u8> = [1u8, 2, 4, 6, 4, 2]
            .iter()
            .copied()
            .cycle()
            .take(600)
            .collect();
        let acc = accuracy(&mut lv, &seq);
        assert!(
            acc < 0.2,
            "last value cannot track a fully varying pattern: {acc}"
        );
    }

    #[test]
    fn constant_input_matches_last_value() {
        let mut g = Gpht::new(GphtConfig::DEPLOYED);
        let seq = vec![3u8; 100];
        assert!((accuracy(&mut g, &seq) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_entry_pht_degenerates_to_last_value() {
        use super::super::last_value::LastValue;
        let cfg = GphtConfig {
            gphr_depth: 8,
            pht_entries: 1,
        };
        let mut g = Gpht::new(cfg);
        let mut lv = LastValue::new();
        // A varied sequence where patterns rarely repeat back-to-back.
        let seq: Vec<u8> = (0..500).map(|i| 1 + ((i * 7 + i / 13) % 6) as u8).collect();
        for &id in &seq {
            let gp = g.next(s(id));
            let lp = lv.next(s(id));
            assert_eq!(gp, lp, "1-entry PHT must behave as last-value");
        }
    }

    #[test]
    fn capacity_is_respected_and_lru_evicts() {
        let cfg = GphtConfig {
            gphr_depth: 2,
            pht_entries: 4,
        };
        let mut g = Gpht::new(cfg);
        // Feed many distinct patterns.
        for i in 0..100u8 {
            g.observe(s(1 + (i % 6)));
        }
        assert!(g.valid_entries() <= 4);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut g = Gpht::new(GphtConfig {
            gphr_depth: 2,
            pht_entries: 16,
        });
        for _ in 0..10 {
            g.observe(s(1));
        }
        // Constant stream: first full-GPHR step misses, rest hit.
        assert_eq!(g.misses(), 1);
        assert!(g.hits() >= 7);
    }

    #[test]
    fn prediction_is_trained_next_period() {
        let mut g = Gpht::new(GphtConfig {
            gphr_depth: 2,
            pht_entries: 16,
        });
        // Pattern [2,1] is always followed by 5: observe 1,2,5 cycling.
        for _ in 0..30 {
            for id in [1u8, 2, 5] {
                g.observe(s(id));
            }
        }
        // Bring GPHR to [2,1] again and check the trained prediction.
        g.observe(s(1));
        g.observe(s(2));
        assert_eq!(g.predict().get(), 5);
    }

    #[test]
    fn warmup_behaves_as_last_value() {
        let mut g = Gpht::new(GphtConfig {
            gphr_depth: 4,
            pht_entries: 16,
        });
        for id in [3u8, 5, 2] {
            let p = g.next(s(id));
            assert_eq!(p.get(), id, "during warm-up prediction = last observed");
        }
        assert_eq!(g.hits() + g.misses(), 0, "no PHT activity during warm-up");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut g = Gpht::new(GphtConfig::DEPLOYED);
        for i in 0..50u8 {
            g.observe(s(1 + (i % 6)));
        }
        g.reset();
        assert_eq!(g.valid_entries(), 0);
        assert_eq!(g.predict(), PhaseId::CPU_BOUND);
        assert_eq!(g.hits(), 0);
        assert_eq!(g.misses(), 0);
        assert!(g.history().is_empty());
    }

    #[test]
    fn name_encodes_config() {
        assert_eq!(Gpht::new(GphtConfig::REFERENCE).name(), "GPHT_8_1024");
    }

    #[test]
    #[should_panic(expected = "GPHR depth")]
    fn zero_depth_rejected() {
        let _ = Gpht::new(GphtConfig {
            gphr_depth: 0,
            pht_entries: 8,
        });
    }

    #[test]
    #[should_panic(expected = "PHT")]
    fn zero_entries_rejected() {
        let _ = Gpht::new(GphtConfig {
            gphr_depth: 8,
            pht_entries: 0,
        });
    }

    #[test]
    fn history_reports_most_recent_first() {
        let mut g = Gpht::new(GphtConfig {
            gphr_depth: 3,
            pht_entries: 8,
        });
        for id in [1u8, 2, 3, 4] {
            g.observe(s(id));
        }
        let h: Vec<u8> = g.history().iter().map(|p| p.get()).collect();
        assert_eq!(h, vec![4, 3, 2]);
    }
}
