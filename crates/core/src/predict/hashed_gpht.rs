//! A direct-mapped (hashed) variant of the GPHT.
//!
//! The paper notes that "holding and associatively searching through a
//! 1024 entry PHT may be undesirable" on a real system and answers by
//! shrinking the table to 128 entries. The classic hardware alternative
//! is to drop associativity instead: hash the GPHR pattern to a single
//! table index and keep only a tag check — O(1) per sample regardless of
//! table size, at the cost of conflict misses. [`HashedGpht`] implements
//! that design so the trade-off can be measured (see the
//! `pht_organization` ablation and the Criterion benches).

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Sizing of a [`HashedGpht`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashedGphtConfig {
    /// Number of past phases hashed into the index.
    pub gphr_depth: usize,
    /// Number of direct-mapped PHT slots.
    pub pht_entries: usize,
}

impl HashedGphtConfig {
    /// A deployment-friendly configuration matching the associative
    /// GPHT(8, 128) in storage.
    pub const DEPLOYED: HashedGphtConfig = HashedGphtConfig {
        gphr_depth: 8,
        pht_entries: 128,
    };

    fn validate(self) {
        assert!(self.gphr_depth >= 1, "GPHR depth must be at least 1");
        assert!(self.pht_entries >= 1, "PHT must have at least 1 entry");
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    /// Full-pattern fingerprint used as the tag (the slot index alone
    /// aliases many patterns).
    tag: u64,
    prediction: PhaseId,
}

/// The direct-mapped GPHT: one hash, one compare, per sample.
#[derive(Debug, Clone)]
pub struct HashedGpht {
    config: HashedGphtConfig,
    gphr: VecDeque<PhaseId>,
    slots: Vec<Option<Slot>>,
    pending_update: Option<usize>,
    prediction: PhaseId,
    hits: u64,
    misses: u64,
}

impl HashedGpht {
    /// Creates a hashed GPHT.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(config: HashedGphtConfig) -> Self {
        config.validate();
        Self {
            config,
            gphr: VecDeque::with_capacity(config.gphr_depth),
            slots: vec![None; config.pht_entries],
            pending_update: None,
            prediction: PhaseId::CPU_BOUND,
            hits: 0,
            misses: 0,
        }
    }

    /// The sizing this predictor was built with.
    #[must_use]
    pub fn config(&self) -> HashedGphtConfig {
        self.config
    }

    /// Slot hits since construction or reset.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Slot misses (cold or conflict) since construction or reset.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// FNV-1a over the GPHR contents, with a murmur-style finalizer: FNV
    /// alone diffuses poorly into the low bits on short small-alphabet
    /// inputs, which is exactly what `tag % entries` indexes on.
    fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for p in &self.gphr {
            h ^= u64::from(p.get());
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }
}

impl Predictor for HashedGpht {
    fn observe(&mut self, sample: PhaseSample) {
        // Train the slot used last period with the actual outcome.
        if let Some(i) = self.pending_update.take() {
            if let Some(slot) = self.slots.get_mut(i).and_then(Option::as_mut) {
                slot.prediction = sample.phase;
            }
        }

        if self.gphr.len() == self.config.gphr_depth {
            self.gphr.pop_back();
        }
        self.gphr.push_front(sample.phase);

        if self.gphr.len() < self.config.gphr_depth {
            self.prediction = sample.phase;
            return;
        }

        let tag = self.fingerprint();
        let index = (tag % self.slots.len() as u64) as usize;
        // lint:allow(no-panic-path): index < slots.len() by the modulo above
        match &mut self.slots[index] {
            Some(slot) if slot.tag == tag => {
                self.hits += 1;
                self.prediction = slot.prediction;
            }
            other => {
                // Cold or conflict miss: fall back to last value and claim
                // the slot (direct-mapped tables evict on conflict).
                self.misses += 1;
                self.prediction = sample.phase;
                *other = Some(Slot {
                    tag,
                    prediction: sample.phase,
                });
            }
        }
        self.pending_update = Some(index);
    }

    fn predict(&self) -> PhaseId {
        self.prediction
    }

    fn reset(&mut self) {
        self.gphr.clear();
        self.slots.iter_mut().for_each(|s| *s = None);
        self.pending_update = None;
        self.prediction = PhaseId::CPU_BOUND;
        self.hits = 0;
        self.misses = 0;
    }

    fn name(&self) -> String {
        format!(
            "HashedGPHT_{}_{}",
            self.config.gphr_depth, self.config.pht_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::predict::gpht::{Gpht, GphtConfig};

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(f64::from(id) * 0.005, PhaseId::new(id))
    }

    fn periodic(pattern: &[u8], len: usize) -> Vec<PhaseSample> {
        pattern.iter().copied().cycle().take(len).map(s).collect()
    }

    #[test]
    fn learns_periodic_patterns_like_the_associative_table() {
        let stream = periodic(&[1, 2, 4, 6, 4, 2], 600);
        let hashed = evaluate(
            &mut HashedGpht::new(HashedGphtConfig::DEPLOYED),
            stream.iter().copied(),
        );
        let assoc = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream.iter().copied());
        assert!(hashed.accuracy() > 0.95, "hashed {}", hashed.accuracy());
        assert!(
            (hashed.accuracy() - assoc.accuracy()).abs() < 0.03,
            "small working sets fit either organization"
        );
    }

    #[test]
    fn conflicts_degrade_gracefully() {
        // A tiny table forces conflicts; accuracy must still be bounded
        // below by last-value behaviour.
        let stream = periodic(&[1, 3, 5, 3, 1, 2, 6, 2], 800);
        let tiny = evaluate(
            &mut HashedGpht::new(HashedGphtConfig {
                gphr_depth: 8,
                pht_entries: 2,
            }),
            stream.iter().copied(),
        );
        let lv = evaluate(
            &mut crate::predict::last_value::LastValue::new(),
            stream.iter().copied(),
        );
        assert!(
            tiny.mispredictions() <= 2 * lv.mispredictions() + 8,
            "worst-case bound holds for the hashed variant too"
        );
    }

    #[test]
    fn hit_miss_accounting() {
        let mut g = HashedGpht::new(HashedGphtConfig {
            gphr_depth: 2,
            pht_entries: 16,
        });
        for _ in 0..10 {
            g.observe(s(1));
        }
        assert_eq!(g.misses(), 1);
        assert_eq!(g.hits(), 8);
    }

    #[test]
    fn warmup_and_reset() {
        let mut g = HashedGpht::new(HashedGphtConfig::DEPLOYED);
        for id in [3u8, 5, 2] {
            assert_eq!(g.next(s(id)).get(), id, "warm-up = last value");
        }
        g.reset();
        assert_eq!(g.predict(), PhaseId::CPU_BOUND);
        assert_eq!(g.hits() + g.misses(), 0);
    }

    #[test]
    fn name_encodes_config() {
        assert_eq!(
            HashedGpht::new(HashedGphtConfig::DEPLOYED).name(),
            "HashedGPHT_8_128"
        );
    }

    #[test]
    #[should_panic(expected = "PHT")]
    fn zero_entries_rejected() {
        let _ = HashedGpht::new(HashedGphtConfig {
            gphr_depth: 8,
            pht_entries: 0,
        });
    }
}
