//! The fixed history window predictor.
//!
//! `Phase[t+1] = f(Phase[t], …, Phase[t-(winsize-1)])` where `f` is a simple
//! statistical selector over the last `winsize` observations. The paper
//! evaluates windows of 8 and 128 and mentions that `f()` "can be a simple
//! averaging function, an exponential moving average or a selector, based on
//! population counts" — all three are provided via [`Selector`].

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;
use std::collections::VecDeque;

/// The statistic used to reduce a window of phases to one prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selector {
    /// Majority vote: the most frequent phase in the window. Ties break
    /// toward the most recently observed of the tied phases, which keeps
    /// the predictor no worse than last-value for alternating inputs.
    Majority,
    /// Arithmetic mean of the phase ids, rounded to the nearest phase.
    Mean,
    /// Exponential moving average over phase ids with smoothing factor
    /// `alpha` in `(0, 1]`; larger alpha weights recent phases more.
    Ema {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

impl Selector {
    fn validate(self) {
        if let Selector::Ema { alpha } = self {
            assert!(
                alpha > 0.0 && alpha <= 1.0 && alpha.is_finite(),
                "EMA alpha must be in (0, 1], got {alpha}"
            );
        }
    }
}

/// Predicts from a statistic over the last `window_size` observed phases.
///
/// ```
/// use livephase_core::{FixedWindow, Selector, PhaseSample, PhaseId, Predictor};
/// let mut p = FixedWindow::new(8, Selector::Majority);
/// for _ in 0..5 { p.observe(PhaseSample::new(0.001, PhaseId::new(1))); }
/// for _ in 0..3 { p.observe(PhaseSample::new(0.040, PhaseId::new(6))); }
/// // Five 1s out-vote three 6s.
/// assert_eq!(p.predict().get(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FixedWindow {
    window_size: usize,
    selector: Selector,
    history: VecDeque<PhaseId>,
    ema: Option<f64>,
}

impl FixedWindow {
    /// Creates a predictor over the last `window_size` phases.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero or the EMA alpha is out of range.
    #[must_use]
    pub fn new(window_size: usize, selector: Selector) -> Self {
        assert!(window_size >= 1, "window size must be at least 1");
        selector.validate();
        Self {
            window_size,
            selector,
            history: VecDeque::with_capacity(window_size),
            ema: None,
        }
    }

    /// The configured window size.
    #[must_use]
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// The configured selector.
    #[must_use]
    pub fn selector(&self) -> Selector {
        self.selector
    }

    /// Number of observations currently held (saturates at the window size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no observation has been made yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    fn select(&self) -> Option<PhaseId> {
        if self.history.is_empty() {
            return None;
        }
        match self.selector {
            Selector::Majority => {
                // Count populations; ties break toward the most recent
                // occurrence (scan from oldest, later >= wins).
                let mut counts = [0u32; 256];
                for p in &self.history {
                    counts[p.index()] += 1; // lint:allow(no-panic-path): PhaseId::index() < 255 by construction
                }
                let mut best: Option<PhaseId> = None;
                for &p in &self.history {
                    match best {
                        None => best = Some(p),
                        Some(b) => {
                            // lint:allow(no-panic-path): PhaseId::index() < 255 by construction
                            if counts[p.index()] >= counts[b.index()] {
                                best = Some(p);
                            }
                        }
                    }
                }
                best
            }
            Selector::Mean => {
                let sum: u32 = self.history.iter().map(|p| u32::from(p.get())).sum();
                let mean = f64::from(sum) / self.history.len() as f64;
                Some(PhaseId::new(round_to_phase(mean)))
            }
            Selector::Ema { .. } => self.ema.map(|e| PhaseId::new(round_to_phase(e))),
        }
    }
}

fn round_to_phase(x: f64) -> u8 {
    let r = x.round().clamp(1.0, 255.0);
    // `r` is in [1, 255] by construction, hence exactly representable.
    r as u8
}

impl Predictor for FixedWindow {
    fn observe(&mut self, sample: PhaseSample) {
        if self.history.len() == self.window_size {
            self.history.pop_front();
        }
        self.history.push_back(sample.phase);
        if let Selector::Ema { alpha } = self.selector {
            let x = f64::from(sample.phase.get());
            self.ema = Some(match self.ema {
                None => x,
                Some(e) => alpha * x + (1.0 - alpha) * e,
            });
        }
    }

    fn predict(&self) -> PhaseId {
        self.select().unwrap_or(PhaseId::CPU_BOUND)
    }

    fn reset(&mut self) {
        self.history.clear();
        self.ema = None;
    }

    fn name(&self) -> String {
        let sel = match self.selector {
            Selector::Majority => String::new(),
            Selector::Mean => "_mean".to_owned(),
            Selector::Ema { alpha } => format!("_ema{alpha}"),
        };
        format!("FixWindow_{}{sel}", self.window_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(0.01, PhaseId::new(id))
    }

    #[test]
    fn majority_vote_wins() {
        let mut p = FixedWindow::new(5, Selector::Majority);
        for id in [2, 2, 2, 5, 5] {
            p.observe(s(id));
        }
        assert_eq!(p.predict().get(), 2);
    }

    #[test]
    fn majority_tie_breaks_recent() {
        let mut p = FixedWindow::new(4, Selector::Majority);
        for id in [2, 2, 5, 5] {
            p.observe(s(id));
        }
        assert_eq!(p.predict().get(), 5, "tie goes to most recent phase");
    }

    #[test]
    fn window_slides() {
        let mut p = FixedWindow::new(2, Selector::Majority);
        for id in [1, 1, 6, 6] {
            p.observe(s(id));
        }
        assert_eq!(p.predict().get(), 6, "old 1s slid out of the window");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn mean_rounds() {
        let mut p = FixedWindow::new(4, Selector::Mean);
        for id in [1, 1, 6, 6] {
            p.observe(s(id));
        }
        // mean 3.5 rounds to 4
        assert_eq!(p.predict().get(), 4);
    }

    #[test]
    fn ema_follows_recent() {
        let mut p = FixedWindow::new(128, Selector::Ema { alpha: 0.9 });
        for _ in 0..20 {
            p.observe(s(1));
        }
        for _ in 0..3 {
            p.observe(s(6));
        }
        assert_eq!(p.predict().get(), 6, "alpha 0.9 converges fast");
    }

    #[test]
    fn empty_predicts_cpu_bound() {
        assert_eq!(
            FixedWindow::new(8, Selector::Majority).predict(),
            PhaseId::CPU_BOUND
        );
    }

    #[test]
    fn reset_clears() {
        let mut p = FixedWindow::new(8, Selector::Ema { alpha: 0.5 });
        p.observe(s(6));
        p.reset();
        assert!(p.is_empty());
        assert_eq!(p.predict(), PhaseId::CPU_BOUND);
    }

    #[test]
    fn names() {
        assert_eq!(
            FixedWindow::new(8, Selector::Majority).name(),
            "FixWindow_8"
        );
        assert_eq!(
            FixedWindow::new(128, Selector::Mean).name(),
            "FixWindow_128_mean"
        );
    }

    #[test]
    #[should_panic(expected = "window size must be at least 1")]
    fn zero_window_rejected() {
        let _ = FixedWindow::new(0, Selector::Majority);
    }

    #[test]
    #[should_panic(expected = "EMA alpha")]
    fn bad_alpha_rejected() {
        let _ = FixedWindow::new(8, Selector::Ema { alpha: 1.5 });
    }

    #[test]
    fn window_of_one_equals_last_value() {
        let mut p = FixedWindow::new(1, Selector::Majority);
        for id in [3, 1, 6, 2] {
            p.observe(s(id));
            assert_eq!(p.predict().get(), id);
        }
    }
}
