//! Phase *duration* prediction: run-length views of a phase stream.
//!
//! The authors' companion work (Isci, Martonosi & Buyuktosunoglu, *IEEE
//! Micro* 2005 — reference \[14\] of the paper) extends phase prediction
//! from "what phase comes next?" to "how long will it last?", which lets
//! a manager skip re-evaluation while a long phase persists. This module
//! provides that extension on top of the same sample stream:
//!
//! * [`RunLengthEncoder`] — incrementally turns the per-interval phase
//!   stream into `(phase, duration)` runs;
//! * [`DurationPredictor`] — predicts the duration of the run that just
//!   started, from a per-phase history of previous run lengths (last
//!   value or a windowed average, the two schemes the companion work
//!   found most practical).

use crate::phase::PhaseId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// A completed run: a phase and the number of consecutive sampling
/// intervals it persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseRun {
    /// The phase of the run.
    pub phase: PhaseId,
    /// Consecutive sampling intervals spent in the phase (≥ 1).
    pub length: u64,
}

/// Incremental run-length encoder over a phase stream.
///
/// ```
/// use livephase_core::{PhaseId, predict::duration::RunLengthEncoder};
/// let mut enc = RunLengthEncoder::new();
/// let mut runs = Vec::new();
/// for p in [1u8, 1, 1, 5, 5, 1] {
///     if let Some(run) = enc.observe(PhaseId::new(p)) {
///         runs.push((run.phase.get(), run.length));
///     }
/// }
/// if let Some(run) = enc.finish() {
///     runs.push((run.phase.get(), run.length));
/// }
/// assert_eq!(runs, vec![(1, 3), (5, 2), (1, 1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunLengthEncoder {
    current: Option<PhaseRun>,
}

impl RunLengthEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one interval's phase; returns the run that *ended*, if any.
    pub fn observe(&mut self, phase: PhaseId) -> Option<PhaseRun> {
        match &mut self.current {
            Some(run) if run.phase == phase => {
                run.length += 1;
                None
            }
            other => {
                let finished = other.take();
                *other = Some(PhaseRun { phase, length: 1 });
                finished
            }
        }
    }

    /// The run currently in progress, if any.
    #[must_use]
    pub fn in_progress(&self) -> Option<PhaseRun> {
        self.current
    }

    /// Terminates the stream, returning the final run.
    pub fn finish(&mut self) -> Option<PhaseRun> {
        self.current.take()
    }
}

/// The duration-estimation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurationScheme {
    /// Predict the last completed duration of the same phase.
    LastDuration,
    /// Predict the mean of up to `window` previous durations of the phase.
    WindowedMean {
        /// History window per phase (≥ 1).
        window: usize,
    },
}

/// Predicts how long a newly entered phase will persist.
///
/// ```
/// use livephase_core::{PhaseId, predict::duration::{DurationPredictor, DurationScheme}};
/// let mut p = DurationPredictor::new(DurationScheme::LastDuration);
/// // Phase 3 has historically run for 4 intervals.
/// for ph in [3u8, 3, 3, 3, 1, 3, 3, 3, 3, 1] {
///     p.observe(PhaseId::new(ph));
/// }
/// assert_eq!(p.predict_duration(PhaseId::new(3)), Some(4));
/// assert_eq!(p.predict_duration(PhaseId::new(6)), None); // never seen
/// ```
#[derive(Debug, Clone)]
pub struct DurationPredictor {
    scheme: DurationScheme,
    encoder: RunLengthEncoder,
    history: HashMap<PhaseId, VecDeque<u64>>,
}

impl DurationPredictor {
    /// Creates a predictor with the given scheme.
    ///
    /// # Panics
    ///
    /// Panics if a windowed scheme has a zero window.
    #[must_use]
    pub fn new(scheme: DurationScheme) -> Self {
        if let DurationScheme::WindowedMean { window } = scheme {
            assert!(window >= 1, "duration window must be at least 1");
        }
        Self {
            scheme,
            encoder: RunLengthEncoder::new(),
            history: HashMap::new(),
        }
    }

    /// Feeds one interval's observed phase.
    pub fn observe(&mut self, phase: PhaseId) {
        if let Some(run) = self.encoder.observe(phase) {
            let window = match self.scheme {
                DurationScheme::LastDuration => 1,
                DurationScheme::WindowedMean { window } => window,
            };
            let h = self.history.entry(run.phase).or_default();
            if h.len() == window {
                h.pop_front();
            }
            h.push_back(run.length);
        }
    }

    /// Predicted duration (in sampling intervals) of a run of `phase`, or
    /// `None` when the phase has never completed a run.
    #[must_use]
    pub fn predict_duration(&self, phase: PhaseId) -> Option<u64> {
        let h = self.history.get(&phase)?;
        match self.scheme {
            DurationScheme::LastDuration => h.back().copied(),
            DurationScheme::WindowedMean { .. } => {
                let sum: u64 = h.iter().sum();
                #[allow(clippy::cast_precision_loss)]
                Some((sum as f64 / h.len() as f64).round() as u64)
            }
        }
    }

    /// Intervals already spent in the current run (0 if idle).
    #[must_use]
    pub fn current_run_age(&self) -> u64 {
        self.encoder.in_progress().map_or(0, |r| r.length)
    }

    /// Remaining intervals the current run is predicted to last (saturated
    /// at zero once it outlives its prediction).
    #[must_use]
    pub fn predicted_remaining(&self) -> Option<u64> {
        let run = self.encoder.in_progress()?;
        let predicted = self.predict_duration(run.phase)?;
        Some(predicted.saturating_sub(run.length))
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.encoder = RunLengthEncoder::new();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u8) -> PhaseId {
        PhaseId::new(id)
    }

    #[test]
    fn encoder_handles_alternation() {
        let mut enc = RunLengthEncoder::new();
        assert_eq!(enc.observe(p(1)), None);
        assert_eq!(
            enc.observe(p(2)),
            Some(PhaseRun {
                phase: p(1),
                length: 1
            })
        );
        assert_eq!(enc.observe(p(2)), None);
        assert_eq!(
            enc.in_progress(),
            Some(PhaseRun {
                phase: p(2),
                length: 2
            })
        );
        assert_eq!(
            enc.finish(),
            Some(PhaseRun {
                phase: p(2),
                length: 2
            })
        );
        assert_eq!(enc.finish(), None);
    }

    #[test]
    fn last_duration_tracks_most_recent() {
        let mut d = DurationPredictor::new(DurationScheme::LastDuration);
        for ph in [3u8, 3, 1, 3, 3, 3, 1] {
            d.observe(p(ph));
        }
        // Runs of phase 3: lengths 2 then 3.
        assert_eq!(d.predict_duration(p(3)), Some(3));
        assert_eq!(d.predict_duration(p(1)), Some(1));
    }

    #[test]
    fn windowed_mean_averages() {
        let mut d = DurationPredictor::new(DurationScheme::WindowedMean { window: 4 });
        // Phase 2 runs of lengths 2, 4, 6 -> mean 4.
        for ph in [2u8, 2, 1, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1] {
            d.observe(p(ph));
        }
        assert_eq!(d.predict_duration(p(2)), Some(4));
    }

    #[test]
    fn windowed_mean_evicts_old_runs() {
        let mut d = DurationPredictor::new(DurationScheme::WindowedMean { window: 1 });
        for ph in [2u8, 2, 2, 2, 1, 2, 2, 1] {
            d.observe(p(ph));
        }
        // Window 1: only the latest run (length 2) counts.
        assert_eq!(d.predict_duration(p(2)), Some(2));
    }

    #[test]
    fn remaining_saturates() {
        let mut d = DurationPredictor::new(DurationScheme::LastDuration);
        for ph in [5u8, 5, 1, 5, 5, 5] {
            d.observe(p(ph));
        }
        // Phase-5 history: one completed run of 2; current run age 3.
        assert_eq!(d.current_run_age(), 3);
        assert_eq!(d.predicted_remaining(), Some(0), "outlived its prediction");
    }

    #[test]
    fn unseen_phase_predicts_none() {
        let d = DurationPredictor::new(DurationScheme::LastDuration);
        assert_eq!(d.predict_duration(p(4)), None);
        assert_eq!(d.predicted_remaining(), None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = DurationPredictor::new(DurationScheme::LastDuration);
        for ph in [2u8, 2, 3] {
            d.observe(p(ph));
        }
        d.reset();
        assert_eq!(d.predict_duration(p(2)), None);
        assert_eq!(d.current_run_age(), 0);
    }

    #[test]
    #[should_panic(expected = "duration window")]
    fn zero_window_rejected() {
        let _ = DurationPredictor::new(DurationScheme::WindowedMean { window: 0 });
    }
}
