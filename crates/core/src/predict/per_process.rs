//! Process-aware prediction for multiprogrammed systems.
//!
//! When the OS timeslices several programs onto the core, a single shared
//! predictor sees their phase streams spliced together: every context
//! switch both injects an unpredictable transition and pollutes the
//! pattern history with cross-program garbage. The PMI handler knows the
//! current pid, so the natural fix — analogous to per-address branch
//! history — is one predictor instance per process.

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;
use std::collections::HashMap;

/// A pid-indexed family of predictors.
///
/// ```
/// use livephase_core::{Gpht, GphtConfig, PhaseSample, PhaseId};
/// use livephase_core::predict::per_process::PerProcess;
///
/// let mut pp = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
/// let s = PhaseSample::new(0.001, PhaseId::new(1));
/// let _ = pp.next(101, s); // process 101's own history
/// let _ = pp.next(202, s); // process 202 starts fresh
/// assert_eq!(pp.processes(), 2);
/// ```
#[derive(Debug)]
pub struct PerProcess<P, F> {
    factory: F,
    slots: HashMap<u32, P>,
}

impl<P: Predictor, F: Fn() -> P> PerProcess<P, F> {
    /// Creates the family; `factory` builds a fresh predictor for each
    /// newly seen pid.
    #[must_use]
    pub fn new(factory: F) -> Self {
        Self {
            factory,
            slots: HashMap::new(),
        }
    }

    /// Observes a sample attributed to `pid` and returns that process's
    /// next-phase prediction.
    pub fn next(&mut self, pid: u32, sample: PhaseSample) -> PhaseId {
        self.slot(pid).next(sample)
    }

    /// Observes without predicting.
    pub fn observe(&mut self, pid: u32, sample: PhaseSample) {
        self.slot(pid).observe(sample);
    }

    /// The prediction currently standing for `pid` (CPU-bound phase for a
    /// never-seen process).
    #[must_use]
    pub fn predict(&self, pid: u32) -> PhaseId {
        self.slots
            .get(&pid)
            .map_or(PhaseId::CPU_BOUND, Predictor::predict)
    }

    /// Number of processes with live predictor state.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.slots.len()
    }

    /// Drops a terminated process's state (the LKM would do this on exit
    /// to bound kernel memory).
    pub fn retire(&mut self, pid: u32) -> bool {
        self.slots.remove(&pid).is_some()
    }

    /// Clears all per-process state.
    pub fn reset(&mut self) {
        self.slots.clear();
    }

    fn slot(&mut self, pid: u32) -> &mut P {
        self.slots.entry(pid).or_insert_with(&self.factory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::predict::gpht::{Gpht, GphtConfig};

    fn s(id: u8) -> PhaseSample {
        PhaseSample::new(f64::from(id) * 0.005, PhaseId::new(id))
    }

    #[test]
    fn processes_are_isolated() {
        let mut pp = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
        // Process 1 learns 1-6 alternation; process 2 stays constant 3.
        for _ in 0..100 {
            pp.observe(1, s(1));
            pp.observe(2, s(3));
            pp.observe(1, s(6));
        }
        assert_eq!(pp.predict(2).get(), 3, "process 2 unpolluted");
        assert_eq!(pp.processes(), 2);
    }

    #[test]
    fn per_process_beats_shared_on_interleaved_streams() {
        // Two programs with clashing periodic patterns, timesliced 1:1.
        let a: Vec<u8> = [1u8, 4, 1, 4].iter().copied().cycle().take(400).collect();
        let b: Vec<u8> = [6u8, 2, 3, 6, 2, 3]
            .iter()
            .copied()
            .cycle()
            .take(400)
            .collect();

        // Shared predictor sees the splice.
        let mut shared = Gpht::new(GphtConfig::DEPLOYED);
        let spliced: Vec<PhaseSample> =
            a.iter().zip(&b).flat_map(|(&x, &y)| [s(x), s(y)]).collect();
        let shared_stats = evaluate(&mut shared, spliced.iter().copied());

        // Per-process: score each process's own stream.
        let mut pp = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
        let mut correct = 0u64;
        let mut total = 0u64;
        let mut pending: HashMap<u32, Option<PhaseId>> = HashMap::new();
        for (&x, &y) in a.iter().zip(&b) {
            for (pid, sample) in [(1u32, s(x)), (2u32, s(y))] {
                if let Some(Some(prev)) = pending.get(&pid) {
                    total += 1;
                    if *prev == sample.phase {
                        correct += 1;
                    }
                }
                let next = pp.next(pid, sample);
                pending.insert(pid, Some(next));
            }
        }
        let pp_acc = correct as f64 / total as f64;
        // A strictly periodic 1:1 interleave is itself a (longer) periodic
        // pattern, so a shared GPHT can learn the splice too — per-process
        // must at least match it here. The decisive advantage appears on
        // quasi-periodic programs under realistic scheduling, which the
        // `multiprogram` extension experiment demonstrates.
        assert!(
            pp_acc >= shared_stats.accuracy() - 0.01,
            "per-process {pp_acc:.3} vs shared {:.3}",
            shared_stats.accuracy()
        );
        assert!(pp_acc > 0.9, "isolated patterns are learnable: {pp_acc:.3}");
    }

    #[test]
    fn retire_frees_state() {
        let mut pp = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
        pp.observe(9, s(5));
        assert!(pp.retire(9));
        assert!(!pp.retire(9));
        assert_eq!(pp.processes(), 0);
        assert_eq!(pp.predict(9), PhaseId::CPU_BOUND);
    }

    #[test]
    fn reset_clears_all() {
        let mut pp = PerProcess::new(|| Gpht::new(GphtConfig::DEPLOYED));
        pp.observe(1, s(2));
        pp.observe(2, s(2));
        pp.reset();
        assert_eq!(pp.processes(), 0);
    }
}
