//! Runtime phase predictors.
//!
//! All predictors consume a stream of per-interval [`PhaseSample`]s (the
//! observed Mem/Uop rate and its classified phase) and emit, after each
//! observation, a prediction for the **next** interval's phase.
//!
//! The paper evaluates four families (Section 3):
//!
//! * [`last_value::LastValue`] — `Phase[t+1] = Phase[t]`;
//! * [`fixed_window::FixedWindow`] — a function of the last *N* phases;
//! * [`variable_window::VariableWindow`] — like fixed window, but history is
//!   discarded on a phase transition (obsolete history hurts);
//! * [`gpht::Gpht`] — the proposed Global Phase History Table, a software
//!   analogue of two-level global branch predictors (Yeh & Patt).

pub mod confidence;
pub mod duration;
pub mod fixed_window;
pub mod gpht;
pub mod hashed_gpht;
pub mod last_value;
pub mod markov;
pub mod per_process;
pub mod spec;
pub mod variable_window;

use crate::metrics::MemUopRate;
use crate::phase::PhaseId;
use serde::{Deserialize, Serialize};

/// One observed sampling interval, as presented to a predictor.
///
/// Carries both the classified [`PhaseId`] and the underlying
/// [`MemUopRate`]: phase-granular predictors ignore the rate, while the
/// variable-window predictor uses it to detect transitions against a raw
/// Mem/Uop threshold (the paper's 0.005 / 0.030 parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// The observed Mem/Uop rate of the elapsed interval.
    pub rate: MemUopRate,
    /// The phase the elapsed interval was classified into.
    pub phase: PhaseId,
}

impl PhaseSample {
    /// Builds a sample from a raw rate and its phase.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    #[must_use]
    pub fn new(rate: f64, phase: PhaseId) -> Self {
        Self {
            rate: MemUopRate::new(rate),
            phase,
        }
    }
}

/// A live phase predictor.
///
/// The protocol mirrors the paper's PMI handler (Figure 8): at each
/// sampling interrupt the handler *observes* the actual phase of the
/// interval that just finished, updates predictor state, and asks for the
/// phase of the interval about to start.
///
/// Implementations must be deterministic and cheap — the paper runs them
/// inside an interrupt handler.
pub trait Predictor {
    /// Feeds the observed sample for the elapsed interval into the
    /// predictor, updating internal state.
    fn observe(&mut self, sample: PhaseSample);

    /// The current prediction for the next interval's phase.
    ///
    /// Before any observation this returns the most CPU-bound phase
    /// ([`PhaseId::CPU_BOUND`]) — the conservative power-management choice
    /// (run fast until evidence says otherwise).
    fn predict(&self) -> PhaseId;

    /// Convenience: observe, then predict. This is the call made once per
    /// PMI in a live deployment.
    fn next(&mut self, sample: PhaseSample) -> PhaseId {
        self.observe(sample);
        self.predict()
    }

    /// Clears all history, returning the predictor to its initial state.
    fn reset(&mut self);

    /// A short human-readable name used in reports, e.g. `GPHT_8_128`.
    fn name(&self) -> String;
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn observe(&mut self, sample: PhaseSample) {
        (**self).observe(sample);
    }
    fn predict(&self) -> PhaseId {
        (**self).predict()
    }
    fn reset(&mut self) {
        (**self).reset();
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::last_value::LastValue;
    use super::*;

    #[test]
    fn sample_construction() {
        let s = PhaseSample::new(0.012, PhaseId::new(3));
        assert_eq!(s.phase.get(), 3);
        assert!((s.rate.get() - 0.012).abs() < 1e-12);
    }

    #[test]
    fn boxed_predictor_dispatches() {
        let mut p: Box<dyn Predictor> = Box::new(LastValue::new());
        assert_eq!(p.predict(), PhaseId::CPU_BOUND);
        let got = p.next(PhaseSample::new(0.04, PhaseId::new(6)));
        assert_eq!(got.get(), 6);
        assert_eq!(p.name(), "LastValue");
        p.reset();
        assert_eq!(p.predict(), PhaseId::CPU_BOUND);
    }
}
