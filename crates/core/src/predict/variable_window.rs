//! The variable history window predictor.
//!
//! Like [`FixedWindow`](super::fixed_window::FixedWindow), but "the history
//! can be shrunk in case of a phase transition, where previous history
//! becomes obsolete for the following phase predictions" (Section 3). A
//! transition is detected when the observed Mem/Uop rate moves by more than
//! a configurable threshold between consecutive samples — the paper uses
//! thresholds of **0.005** and **0.030** with a 128-entry window.

use super::{PhaseSample, Predictor};
use crate::phase::PhaseId;
use std::collections::VecDeque;

/// A windowed majority predictor whose history is flushed whenever the
/// Mem/Uop rate jumps by more than `transition_threshold`.
///
/// ```
/// use livephase_core::{VariableWindow, PhaseSample, PhaseId, Predictor};
/// let mut p = VariableWindow::new(128, 0.005);
/// for _ in 0..10 { p.observe(PhaseSample::new(0.001, PhaseId::new(1))); }
/// // A large jump flushes the stale history; the new phase wins instantly.
/// p.observe(PhaseSample::new(0.04, PhaseId::new(6)));
/// assert_eq!(p.predict().get(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct VariableWindow {
    max_window: usize,
    transition_threshold: f64,
    history: VecDeque<PhaseId>,
    last_rate: Option<f64>,
}

impl VariableWindow {
    /// Creates a predictor with at most `max_window` retained phases and the
    /// given Mem/Uop transition threshold.
    ///
    /// # Panics
    ///
    /// Panics if `max_window` is zero, or if the threshold is negative or
    /// non-finite.
    #[must_use]
    pub fn new(max_window: usize, transition_threshold: f64) -> Self {
        assert!(max_window >= 1, "window size must be at least 1");
        assert!(
            transition_threshold.is_finite() && transition_threshold >= 0.0,
            "transition threshold must be finite and non-negative, got {transition_threshold}"
        );
        Self {
            max_window,
            transition_threshold,
            history: VecDeque::with_capacity(max_window),
            last_rate: None,
        }
    }

    /// The maximum number of retained phases.
    #[must_use]
    pub fn max_window(&self) -> usize {
        self.max_window
    }

    /// The Mem/Uop jump that invalidates accumulated history.
    #[must_use]
    pub fn transition_threshold(&self) -> f64 {
        self.transition_threshold
    }

    /// Number of phases currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no history is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

impl Predictor for VariableWindow {
    fn observe(&mut self, sample: PhaseSample) {
        let rate = sample.rate.get();
        if let Some(last) = self.last_rate {
            if (rate - last).abs() > self.transition_threshold {
                // Phase transition: everything before it is obsolete.
                self.history.clear();
            }
        }
        if self.history.len() == self.max_window {
            self.history.pop_front();
        }
        self.history.push_back(sample.phase);
        self.last_rate = Some(rate);
    }

    fn predict(&self) -> PhaseId {
        // Majority vote over the (possibly shrunk) history; ties break
        // toward the most recent phase, as in FixedWindow.
        if self.history.is_empty() {
            return PhaseId::CPU_BOUND;
        }
        let mut counts = [0u32; 256];
        for p in &self.history {
            counts[p.index()] += 1; // lint:allow(no-panic-path): PhaseId::index() < 255 by construction
        }
        let mut best: Option<PhaseId> = None;
        for &p in &self.history {
            match best {
                None => best = Some(p),
                Some(b) => {
                    // lint:allow(no-panic-path): PhaseId::index() < 255 by construction
                    if counts[p.index()] >= counts[b.index()] {
                        best = Some(p);
                    }
                }
            }
        }
        best.unwrap_or(PhaseId::CPU_BOUND)
    }

    fn reset(&mut self) {
        self.history.clear();
        self.last_rate = None;
    }

    fn name(&self) -> String {
        format!(
            "VarWindow_{}_{}",
            self.max_window, self.transition_threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_on_transition() {
        let mut p = VariableWindow::new(128, 0.005);
        for _ in 0..50 {
            p.observe(PhaseSample::new(0.001, PhaseId::new(1)));
        }
        assert_eq!(p.len(), 50);
        p.observe(PhaseSample::new(0.031, PhaseId::new(6)));
        assert_eq!(p.len(), 1, "jump of 0.03 > 0.005 flushed history");
        assert_eq!(p.predict().get(), 6);
    }

    #[test]
    fn small_moves_keep_history() {
        let mut p = VariableWindow::new(128, 0.030);
        for _ in 0..50 {
            p.observe(PhaseSample::new(0.001, PhaseId::new(1)));
        }
        // A 0.011 jump is below the 0.030 threshold: history persists and
        // the stale majority still wins.
        p.observe(PhaseSample::new(0.012, PhaseId::new(3)));
        assert_eq!(p.len(), 51);
        assert_eq!(p.predict().get(), 1);
    }

    #[test]
    fn caps_at_max_window() {
        let mut p = VariableWindow::new(4, 1.0);
        for i in 0..10 {
            p.observe(PhaseSample::new(0.001, PhaseId::new(1 + (i % 2))));
        }
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn empty_predicts_cpu_bound() {
        assert_eq!(VariableWindow::new(8, 0.005).predict(), PhaseId::CPU_BOUND);
    }

    #[test]
    fn reset_clears_rate_tracking() {
        let mut p = VariableWindow::new(8, 0.005);
        p.observe(PhaseSample::new(0.04, PhaseId::new(6)));
        p.reset();
        assert!(p.is_empty());
        // After reset the next observation must not be treated as a
        // transition relative to pre-reset state.
        p.observe(PhaseSample::new(0.001, PhaseId::new(1)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn name_encodes_parameters() {
        assert_eq!(
            VariableWindow::new(128, 0.005).name(),
            "VarWindow_128_0.005"
        );
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let _ = VariableWindow::new(0, 0.005);
    }

    #[test]
    #[should_panic(expected = "transition threshold")]
    fn negative_threshold_rejected() {
        let _ = VariableWindow::new(8, -0.1);
    }
}
