//! Streaming evaluation of phase predictors.
//!
//! Reproduces the accuracy methodology of Section 3.2: at each sampling
//! interval the prediction made at the *previous* interval is scored
//! against the phase actually observed now. The very first interval has no
//! prior prediction and is not scored.

use crate::phase::PhaseId;
use crate::predict::{PhaseSample, Predictor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scale of confidence values reported in basis points: 10 000 means
/// every scored prediction so far was correct.
///
/// This is the canonical definition; the serve wire protocol re-exports
/// it so `Decision::confidence` on the wire and
/// [`PredictionStats::confidence_bp`] share one scale.
pub const CONFIDENCE_SCALE: u16 = 10_000;

/// Aggregate accuracy of one predictor over one phase stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Number of scored intervals (stream length minus one).
    pub total: u64,
    /// Predictions that matched the subsequently observed phase.
    pub correct: u64,
}

impl PredictionStats {
    /// Fraction of scored intervals predicted correctly, in `[0, 1]`.
    ///
    /// Returns `1.0` for an empty evaluation (nothing was mispredicted).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Fraction of scored intervals mispredicted, in `[0, 1]`.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Number of mispredicted intervals.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.total - self.correct
    }

    /// Accuracy in basis points of [`CONFIDENCE_SCALE`]
    /// (`CONFIDENCE_SCALE` for an empty evaluation, mirroring
    /// [`accuracy`](Self::accuracy)).
    #[must_use]
    pub fn confidence_bp(&self) -> u16 {
        if self.total == 0 {
            return CONFIDENCE_SCALE;
        }
        let bp = self.correct * u64::from(CONFIDENCE_SCALE) / self.total;
        // correct <= total, so bp <= CONFIDENCE_SCALE and always fits.
        u16::try_from(bp).unwrap_or(CONFIDENCE_SCALE)
    }

    fn score(&mut self, predicted: PhaseId, observed: PhaseId) -> bool {
        self.total += 1;
        let correct = predicted == observed;
        if correct {
            self.correct += 1;
        }
        correct
    }
}

/// The one streaming scoring loop of Section 3.2, shared by every
/// consumer of prediction accuracy: at each interval the prediction
/// *standing* when the sample arrives is scored against the phase
/// actually observed; the first interval has no standing prediction and
/// is not scored.
///
/// [`evaluate`], the governor's run accounting and the decision engine's
/// per-pid confidence all drive this same state machine, so their
/// accuracy numbers are one implementation, not three.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamScorer {
    pending: Option<PhaseId>,
    stats: PredictionStats,
}

impl StreamScorer {
    /// Creates a scorer with no prediction standing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores the standing prediction (if any) against `observed`,
    /// consuming it. Returns the prediction and whether it was correct,
    /// or `None` if nothing was standing (the stream's first interval).
    pub fn score(&mut self, observed: PhaseId) -> Option<(PhaseId, bool)> {
        let predicted = self.pending.take()?;
        let correct = self.stats.score(predicted, observed);
        Some((predicted, correct))
    }

    /// Stands a prediction for the next interval.
    pub fn predict(&mut self, predicted: PhaseId) {
        self.pending = Some(predicted);
    }

    /// Withdraws any standing prediction without scoring it (used by
    /// non-predicting policies such as the unmanaged baseline).
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }

    /// The prediction currently standing, if any.
    #[must_use]
    pub fn pending(&self) -> Option<PhaseId> {
        self.pending
    }

    /// Aggregate statistics over everything scored so far.
    #[must_use]
    pub fn stats(&self) -> PredictionStats {
        self.stats
    }

    /// Running accuracy in basis points of [`CONFIDENCE_SCALE`].
    #[must_use]
    pub fn confidence_bp(&self) -> u16 {
        self.stats.confidence_bp()
    }
}

impl fmt::Display for PredictionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} correct ({:.1}%)",
            self.correct,
            self.total,
            self.accuracy() * 100.0
        )
    }
}

/// Full per-interval record of an evaluation, for trace-style figures
/// (Figure 2 plots actual vs predicted phase series for `applu`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvaluationTrace {
    /// The observed sample at each interval.
    pub observed: Vec<PhaseSample>,
    /// The prediction that had been made *for* each interval (index 0 is
    /// the predictor's initial prediction).
    pub predicted: Vec<crate::phase::PhaseId>,
    /// Aggregate statistics.
    pub stats: PredictionStats,
}

/// Evaluates `predictor` over a sample stream, returning aggregate stats.
///
/// The predictor is driven exactly as the live PMI handler would: each
/// sample is observed, the resulting prediction is scored against the
/// *next* sample's phase.
///
/// ```
/// use livephase_core::{evaluate, LastValue, PhaseSample, PhaseId};
/// let stream = [1u8, 1, 2, 2].iter()
///     .map(|&p| PhaseSample::new(0.001 * f64::from(p), PhaseId::new(p)));
/// let stats = evaluate(&mut LastValue::new(), stream);
/// assert_eq!(stats.total, 3);
/// assert_eq!(stats.correct, 2); // mispredicts only the 1 -> 2 transition
/// ```
pub fn evaluate<P, I>(predictor: &mut P, samples: I) -> PredictionStats
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut scorer = StreamScorer::new();
    for sample in samples {
        scorer.score(sample.phase);
        scorer.predict(predictor.next(sample));
    }
    scorer.stats()
}

/// A per-phase breakdown of prediction outcomes: rows are the phase that
/// actually occurred, columns the phase that had been predicted for it.
///
/// Aggregate accuracy hides *where* a predictor fails; for management the
/// direction matters — predicting too CPU-bound wastes energy, predicting
/// too memory-bound costs performance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// `counts[(actual, predicted)]` over scored intervals.
    counts: std::collections::BTreeMap<(u8, u8), u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one scored interval.
    pub fn record(&mut self, actual: crate::phase::PhaseId, predicted: crate::phase::PhaseId) {
        *self
            .counts
            .entry((actual.get(), predicted.get()))
            .or_insert(0) += 1;
    }

    /// Count for an (actual, predicted) cell.
    #[must_use]
    pub fn get(&self, actual: u8, predicted: u8) -> u64 {
        self.counts.get(&(actual, predicted)).copied().unwrap_or(0)
    }

    /// Intervals whose actual phase was `phase`.
    #[must_use]
    pub fn actual_total(&self, phase: u8) -> u64 {
        self.counts
            .iter()
            .filter(|&(&(a, _), _)| a == phase)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Recall for one actual phase (1.0 when the phase never occurred).
    #[must_use]
    pub fn recall(&self, phase: u8) -> f64 {
        let total = self.actual_total(phase);
        if total == 0 {
            1.0
        } else {
            self.get(phase, phase) as f64 / total as f64
        }
    }

    /// Of the scored mispredictions, the fraction that guessed a *more
    /// CPU-bound* phase than actually occurred — the energy-wasting (but
    /// performance-safe) direction.
    #[must_use]
    pub fn underestimation_share(&self) -> f64 {
        let mut wrong = 0u64;
        let mut under = 0u64;
        for (&(a, p), &c) in &self.counts {
            if a != p {
                wrong += c;
                if p < a {
                    under += c;
                }
            }
        }
        if wrong == 0 {
            0.0
        } else {
            under as f64 / wrong as f64
        }
    }

    /// Total scored intervals.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The distinct phases appearing as actual or predicted, ascending.
    #[must_use]
    pub fn phases(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.counts.keys().flat_map(|&(a, p)| [a, p]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Evaluates a predictor and builds the per-phase confusion matrix
/// alongside the aggregate statistics.
pub fn evaluate_confusion<P, I>(predictor: &mut P, samples: I) -> (PredictionStats, ConfusionMatrix)
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut scorer = StreamScorer::new();
    let mut matrix = ConfusionMatrix::new();
    for sample in samples {
        if let Some((predicted, _)) = scorer.score(sample.phase) {
            matrix.record(sample.phase, predicted);
        }
        scorer.predict(predictor.next(sample));
    }
    (scorer.stats(), matrix)
}

/// Like [`evaluate`] but also records the full per-interval trace.
pub fn evaluate_trace<P, I>(predictor: &mut P, samples: I) -> EvaluationTrace
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut trace = EvaluationTrace::default();
    let mut scorer = StreamScorer::new();
    for sample in samples {
        // Index 0 records the predictor's initial prediction even though
        // nothing is standing to score yet.
        let standing = scorer.pending().unwrap_or_else(|| predictor.predict());
        scorer.score(sample.phase);
        trace.predicted.push(standing);
        trace.observed.push(sample);
        scorer.predict(predictor.next(sample));
    }
    trace.stats = scorer.stats();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseId;
    use crate::predict::gpht::{Gpht, GphtConfig};
    use crate::predict::last_value::LastValue;

    fn stream(ids: &[u8]) -> Vec<PhaseSample> {
        ids.iter()
            .map(|&p| PhaseSample::new(0.001 * f64::from(p), PhaseId::new(p)))
            .collect()
    }

    #[test]
    fn empty_stream() {
        let st = evaluate(&mut LastValue::new(), stream(&[]));
        assert_eq!(st.total, 0);
        assert_eq!(st.accuracy(), 1.0);
    }

    #[test]
    fn single_sample_scores_nothing() {
        let st = evaluate(&mut LastValue::new(), stream(&[4]));
        assert_eq!(st.total, 0);
    }

    #[test]
    fn last_value_scoring() {
        // 1 1 1 2 2: transitions at index 3 only -> 3/4 correct.
        let st = evaluate(&mut LastValue::new(), stream(&[1, 1, 1, 2, 2]));
        assert_eq!(st.total, 4);
        assert_eq!(st.correct, 3);
        assert_eq!(st.mispredictions(), 1);
        assert!((st.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trace_records_everything() {
        let tr = evaluate_trace(&mut LastValue::new(), stream(&[1, 2, 2]));
        assert_eq!(tr.observed.len(), 3);
        assert_eq!(tr.predicted.len(), 3);
        // Initial prediction is CPU-bound phase 1.
        assert_eq!(tr.predicted[0].get(), 1);
        // Prediction for interval 1 was made after seeing phase 1.
        assert_eq!(tr.predicted[1].get(), 1);
        assert_eq!(tr.predicted[2].get(), 2);
        assert_eq!(tr.stats.total, 2);
        assert_eq!(tr.stats.correct, 1);
    }

    #[test]
    fn trace_and_evaluate_agree() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(200).collect();
        let st = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        let tr = evaluate_trace(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        assert_eq!(st, tr.stats);
    }

    #[test]
    fn gpht_beats_last_value_on_periodic_stream() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(400).collect();
        let g = evaluate(&mut Gpht::new(GphtConfig::REFERENCE), stream(&ids));
        let l = evaluate(&mut LastValue::new(), stream(&ids));
        assert!(g.accuracy() > 0.9);
        assert!(l.accuracy() < 0.3);
    }

    #[test]
    fn confusion_matrix_bookkeeping() {
        // actual: 1 1 2 2 1; last-value predictions: -, 1, 1, 2, 2.
        let (stats, m) = evaluate_confusion(&mut LastValue::new(), stream(&[1, 1, 2, 2, 1]));
        assert_eq!(stats.total, 4);
        assert_eq!(m.total(), 4);
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.get(2, 1), 1, "2 arrived while 1 was predicted");
        assert_eq!(m.get(2, 2), 1);
        assert_eq!(m.get(1, 2), 1);
        assert_eq!(m.actual_total(2), 2);
        assert!((m.recall(2) - 0.5).abs() < 1e-12);
        assert_eq!(m.recall(6), 1.0, "never-seen phase has vacuous recall");
        // Of the 2 errors, 1 guessed a more CPU-bound phase than actual.
        assert!((m.underestimation_share() - 0.5).abs() < 1e-12);
        assert_eq!(m.phases(), vec![1, 2]);
    }

    #[test]
    fn confusion_agrees_with_evaluate() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(100).collect();
        let st = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        let (st2, m) = evaluate_confusion(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        assert_eq!(st, st2);
        let diag: u64 = m.phases().iter().map(|&p| m.get(p, p)).sum();
        assert_eq!(diag, st.correct);
    }

    #[test]
    fn scorer_matches_evaluate_step_for_step() {
        let ids: Vec<u8> = [1u8, 3, 6, 3, 2]
            .iter()
            .copied()
            .cycle()
            .take(150)
            .collect();
        let st = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        let mut predictor = Gpht::new(GphtConfig::DEPLOYED);
        let mut scorer = StreamScorer::new();
        for sample in stream(&ids) {
            scorer.score(sample.phase);
            scorer.predict(predictor.next(sample));
        }
        assert_eq!(scorer.stats(), st);
        assert_eq!(scorer.confidence_bp(), st.confidence_bp());
    }

    #[test]
    fn scorer_first_interval_is_unscored() {
        let mut scorer = StreamScorer::new();
        assert_eq!(scorer.score(PhaseId::new(3)), None);
        scorer.predict(PhaseId::new(4));
        assert_eq!(scorer.pending(), Some(PhaseId::new(4)));
        assert_eq!(scorer.score(PhaseId::new(4)), Some((PhaseId::new(4), true)));
        assert_eq!(scorer.pending(), None, "scoring consumes the prediction");
        scorer.predict(PhaseId::new(1));
        assert_eq!(
            scorer.score(PhaseId::new(2)),
            Some((PhaseId::new(1), false))
        );
        assert_eq!(scorer.stats().total, 2);
        assert_eq!(scorer.stats().correct, 1);
        assert_eq!(scorer.confidence_bp(), CONFIDENCE_SCALE / 2);
    }

    #[test]
    fn clear_pending_withdraws_without_scoring() {
        let mut scorer = StreamScorer::new();
        scorer.predict(PhaseId::new(5));
        scorer.clear_pending();
        assert_eq!(scorer.score(PhaseId::new(5)), None);
        assert_eq!(scorer.stats().total, 0);
    }

    #[test]
    fn confidence_bp_bounds() {
        assert_eq!(PredictionStats::default().confidence_bp(), CONFIDENCE_SCALE);
        let perfect = PredictionStats {
            total: 7,
            correct: 7,
        };
        assert_eq!(perfect.confidence_bp(), CONFIDENCE_SCALE);
        let none = PredictionStats {
            total: 7,
            correct: 0,
        };
        assert_eq!(none.confidence_bp(), 0);
        let third = PredictionStats {
            total: 3,
            correct: 1,
        };
        assert_eq!(third.confidence_bp(), 3_333);
    }

    #[test]
    fn display_is_informative() {
        let st = PredictionStats {
            total: 10,
            correct: 9,
        };
        assert_eq!(st.to_string(), "9/10 correct (90.0%)");
    }
}
