//! Streaming evaluation of phase predictors.
//!
//! Reproduces the accuracy methodology of Section 3.2: at each sampling
//! interval the prediction made at the *previous* interval is scored
//! against the phase actually observed now. The very first interval has no
//! prior prediction and is not scored.

use crate::predict::{PhaseSample, Predictor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate accuracy of one predictor over one phase stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictionStats {
    /// Number of scored intervals (stream length minus one).
    pub total: u64,
    /// Predictions that matched the subsequently observed phase.
    pub correct: u64,
}

impl PredictionStats {
    /// Fraction of scored intervals predicted correctly, in `[0, 1]`.
    ///
    /// Returns `1.0` for an empty evaluation (nothing was mispredicted).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Fraction of scored intervals mispredicted, in `[0, 1]`.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Number of mispredicted intervals.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.total - self.correct
    }
}

impl fmt::Display for PredictionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} correct ({:.1}%)",
            self.correct,
            self.total,
            self.accuracy() * 100.0
        )
    }
}

/// Full per-interval record of an evaluation, for trace-style figures
/// (Figure 2 plots actual vs predicted phase series for `applu`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvaluationTrace {
    /// The observed sample at each interval.
    pub observed: Vec<PhaseSample>,
    /// The prediction that had been made *for* each interval (index 0 is
    /// the predictor's initial prediction).
    pub predicted: Vec<crate::phase::PhaseId>,
    /// Aggregate statistics.
    pub stats: PredictionStats,
}

/// Evaluates `predictor` over a sample stream, returning aggregate stats.
///
/// The predictor is driven exactly as the live PMI handler would: each
/// sample is observed, the resulting prediction is scored against the
/// *next* sample's phase.
///
/// ```
/// use livephase_core::{evaluate, LastValue, PhaseSample, PhaseId};
/// let stream = [1u8, 1, 2, 2].iter()
///     .map(|&p| PhaseSample::new(0.001 * f64::from(p), PhaseId::new(p)));
/// let stats = evaluate(&mut LastValue::new(), stream);
/// assert_eq!(stats.total, 3);
/// assert_eq!(stats.correct, 2); // mispredicts only the 1 -> 2 transition
/// ```
pub fn evaluate<P, I>(predictor: &mut P, samples: I) -> PredictionStats
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut stats = PredictionStats::default();
    let mut first = true;
    let mut pending = predictor.predict();
    for sample in samples {
        if !first {
            stats.total += 1;
            if pending == sample.phase {
                stats.correct += 1;
            }
        }
        first = false;
        pending = predictor.next(sample);
    }
    stats
}

/// A per-phase breakdown of prediction outcomes: rows are the phase that
/// actually occurred, columns the phase that had been predicted for it.
///
/// Aggregate accuracy hides *where* a predictor fails; for management the
/// direction matters — predicting too CPU-bound wastes energy, predicting
/// too memory-bound costs performance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// `counts[(actual, predicted)]` over scored intervals.
    counts: std::collections::BTreeMap<(u8, u8), u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one scored interval.
    pub fn record(&mut self, actual: crate::phase::PhaseId, predicted: crate::phase::PhaseId) {
        *self
            .counts
            .entry((actual.get(), predicted.get()))
            .or_insert(0) += 1;
    }

    /// Count for an (actual, predicted) cell.
    #[must_use]
    pub fn get(&self, actual: u8, predicted: u8) -> u64 {
        self.counts.get(&(actual, predicted)).copied().unwrap_or(0)
    }

    /// Intervals whose actual phase was `phase`.
    #[must_use]
    pub fn actual_total(&self, phase: u8) -> u64 {
        self.counts
            .iter()
            .filter(|&(&(a, _), _)| a == phase)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Recall for one actual phase (1.0 when the phase never occurred).
    #[must_use]
    pub fn recall(&self, phase: u8) -> f64 {
        let total = self.actual_total(phase);
        if total == 0 {
            1.0
        } else {
            self.get(phase, phase) as f64 / total as f64
        }
    }

    /// Of the scored mispredictions, the fraction that guessed a *more
    /// CPU-bound* phase than actually occurred — the energy-wasting (but
    /// performance-safe) direction.
    #[must_use]
    pub fn underestimation_share(&self) -> f64 {
        let mut wrong = 0u64;
        let mut under = 0u64;
        for (&(a, p), &c) in &self.counts {
            if a != p {
                wrong += c;
                if p < a {
                    under += c;
                }
            }
        }
        if wrong == 0 {
            0.0
        } else {
            under as f64 / wrong as f64
        }
    }

    /// Total scored intervals.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The distinct phases appearing as actual or predicted, ascending.
    #[must_use]
    pub fn phases(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.counts.keys().flat_map(|&(a, p)| [a, p]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Evaluates a predictor and builds the per-phase confusion matrix
/// alongside the aggregate statistics.
pub fn evaluate_confusion<P, I>(predictor: &mut P, samples: I) -> (PredictionStats, ConfusionMatrix)
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut stats = PredictionStats::default();
    let mut matrix = ConfusionMatrix::new();
    let mut first = true;
    let mut pending = predictor.predict();
    for sample in samples {
        if !first {
            stats.total += 1;
            if pending == sample.phase {
                stats.correct += 1;
            }
            matrix.record(sample.phase, pending);
        }
        first = false;
        pending = predictor.next(sample);
    }
    (stats, matrix)
}

/// Like [`evaluate`] but also records the full per-interval trace.
pub fn evaluate_trace<P, I>(predictor: &mut P, samples: I) -> EvaluationTrace
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = PhaseSample>,
{
    let mut trace = EvaluationTrace::default();
    let mut pending = predictor.predict();
    for sample in samples {
        if !trace.observed.is_empty() {
            trace.stats.total += 1;
            if pending == sample.phase {
                trace.stats.correct += 1;
            }
        }
        trace.predicted.push(pending);
        trace.observed.push(sample);
        pending = predictor.next(sample);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseId;
    use crate::predict::gpht::{Gpht, GphtConfig};
    use crate::predict::last_value::LastValue;

    fn stream(ids: &[u8]) -> Vec<PhaseSample> {
        ids.iter()
            .map(|&p| PhaseSample::new(0.001 * f64::from(p), PhaseId::new(p)))
            .collect()
    }

    #[test]
    fn empty_stream() {
        let st = evaluate(&mut LastValue::new(), stream(&[]));
        assert_eq!(st.total, 0);
        assert_eq!(st.accuracy(), 1.0);
    }

    #[test]
    fn single_sample_scores_nothing() {
        let st = evaluate(&mut LastValue::new(), stream(&[4]));
        assert_eq!(st.total, 0);
    }

    #[test]
    fn last_value_scoring() {
        // 1 1 1 2 2: transitions at index 3 only -> 3/4 correct.
        let st = evaluate(&mut LastValue::new(), stream(&[1, 1, 1, 2, 2]));
        assert_eq!(st.total, 4);
        assert_eq!(st.correct, 3);
        assert_eq!(st.mispredictions(), 1);
        assert!((st.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trace_records_everything() {
        let tr = evaluate_trace(&mut LastValue::new(), stream(&[1, 2, 2]));
        assert_eq!(tr.observed.len(), 3);
        assert_eq!(tr.predicted.len(), 3);
        // Initial prediction is CPU-bound phase 1.
        assert_eq!(tr.predicted[0].get(), 1);
        // Prediction for interval 1 was made after seeing phase 1.
        assert_eq!(tr.predicted[1].get(), 1);
        assert_eq!(tr.predicted[2].get(), 2);
        assert_eq!(tr.stats.total, 2);
        assert_eq!(tr.stats.correct, 1);
    }

    #[test]
    fn trace_and_evaluate_agree() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(200).collect();
        let st = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        let tr = evaluate_trace(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        assert_eq!(st, tr.stats);
    }

    #[test]
    fn gpht_beats_last_value_on_periodic_stream() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(400).collect();
        let g = evaluate(&mut Gpht::new(GphtConfig::REFERENCE), stream(&ids));
        let l = evaluate(&mut LastValue::new(), stream(&ids));
        assert!(g.accuracy() > 0.9);
        assert!(l.accuracy() < 0.3);
    }

    #[test]
    fn confusion_matrix_bookkeeping() {
        // actual: 1 1 2 2 1; last-value predictions: -, 1, 1, 2, 2.
        let (stats, m) = evaluate_confusion(&mut LastValue::new(), stream(&[1, 1, 2, 2, 1]));
        assert_eq!(stats.total, 4);
        assert_eq!(m.total(), 4);
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.get(2, 1), 1, "2 arrived while 1 was predicted");
        assert_eq!(m.get(2, 2), 1);
        assert_eq!(m.get(1, 2), 1);
        assert_eq!(m.actual_total(2), 2);
        assert!((m.recall(2) - 0.5).abs() < 1e-12);
        assert_eq!(m.recall(6), 1.0, "never-seen phase has vacuous recall");
        // Of the 2 errors, 1 guessed a more CPU-bound phase than actual.
        assert!((m.underestimation_share() - 0.5).abs() < 1e-12);
        assert_eq!(m.phases(), vec![1, 2]);
    }

    #[test]
    fn confusion_agrees_with_evaluate() {
        let ids: Vec<u8> = [1u8, 3, 6, 3].iter().copied().cycle().take(100).collect();
        let st = evaluate(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        let (st2, m) = evaluate_confusion(&mut Gpht::new(GphtConfig::DEPLOYED), stream(&ids));
        assert_eq!(st, st2);
        let diag: u64 = m.phases().iter().map(|&p| m.get(p, p)).sum();
        assert_eq!(diag, st.correct);
    }

    #[test]
    fn display_is_informative() {
        let st = PredictionStats {
            total: 10,
            correct: 9,
        };
        assert_eq!(st.to_string(), "9/10 correct (90.0%)");
    }
}
