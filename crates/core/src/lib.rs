//! # livephase-core
//!
//! Phase classification and live, runtime phase *prediction*, reproducing the
//! primary contribution of Isci, Contreras and Martonosi, *"Live, Runtime
//! Phase Monitoring and Prediction on Real Systems with Application to
//! Dynamic Power Management"*, MICRO-39, 2006.
//!
//! The paper classifies coarse-grained (100 M instruction) execution
//! intervals into **phases** by their memory-boundedness — memory bus
//! transactions per retired micro-op (*Mem/Uop*, [`MemUopRate`]) — and then
//! predicts the phase of the *next* interval with a **Global Phase History
//! Table** ([`Gpht`]) predictor borrowed from two-level global branch
//! prediction. Statistical baselines from the paper ([`LastValue`],
//! [`FixedWindow`], [`VariableWindow`]) are provided for comparison.
//!
//! ## Quick example
//!
//! ```
//! use livephase_core::{PhaseMap, PhaseSample, Predictor, Gpht, GphtConfig};
//!
//! // Table 1 of the paper: six phases over Mem/Uop.
//! let map = PhaseMap::pentium_m();
//! let mut gpht = Gpht::new(GphtConfig { gphr_depth: 8, pht_entries: 128 });
//!
//! // A periodic workload: Mem/Uop swings between CPU- and memory-bound.
//! let rates = [0.001, 0.012, 0.035, 0.012, 0.001, 0.012, 0.035, 0.012];
//! for &rate in rates.iter().cycle().take(64) {
//!     let phase = map.classify(rate);
//!     let predicted_next = gpht.next(PhaseSample::new(rate, phase));
//!     // ... drive DVFS from `predicted_next` ...
//!     let _ = predicted_next;
//! }
//! ```
//!
//! All predictors implement the [`Predictor`] trait and can be evaluated on a
//! phase stream with [`evaluate`].
//!
//! The crate is `#![forbid(unsafe_code)]` and fully deterministic: it
//! contains no clocks and no randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod eval;
pub mod metrics;
pub mod phase;
pub mod predict;

pub use eval::{
    evaluate, evaluate_confusion, evaluate_trace, ConfusionMatrix, EvaluationTrace,
    PredictionStats, StreamScorer, CONFIDENCE_SCALE,
};
pub use metrics::{IntervalMetrics, MemUopRate, Upc};
pub use phase::{PhaseId, PhaseMap, PhaseMapError};
pub use predict::confidence::ConfidentPredictor;
pub use predict::duration::{DurationPredictor, DurationScheme, PhaseRun, RunLengthEncoder};
pub use predict::fixed_window::{FixedWindow, Selector};
pub use predict::gpht::{Gpht, GphtConfig};
pub use predict::hashed_gpht::{HashedGpht, HashedGphtConfig};
pub use predict::last_value::LastValue;
pub use predict::markov::MarkovPredictor;
pub use predict::per_process::PerProcess;
pub use predict::spec::{from_spec as predictor_from_spec, PredictorSpecError};
pub use predict::variable_window::VariableWindow;
pub use predict::{PhaseSample, Predictor};
