//! Fixture for the suppression protocol: justified, unjustified, unused.

fn first(v: &[u8]) -> u8 {
    v[0] // lint:allow(no-panic-path): caller guarantees a non-empty slice
}

fn second(v: &[u8]) -> u8 {
    v[0] // lint:allow(no-panic-path)
}

// lint:allow(no-panic-path): nothing on the next line can panic
fn third() {}
