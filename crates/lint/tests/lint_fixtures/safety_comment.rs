//! Fixture for `safety-comment`: one undocumented `unsafe`, one documented.

unsafe fn undocumented() {}

// SAFETY: no preconditions; the function body is empty.
unsafe fn documented() {}
