//! Fixture for `telemetry-naming`: four misnamed registrations.

fn register(reg: &Registry) {
    reg.counter("BadCase_total", "Non-snake-case name.", &[]);
    reg.counter("requests", "Counter missing `_total`.", &[]);
    reg.histogram("latency_total", "Histogram missing `_us`.", &[]);
    reg.gauge("depth_bucket", "Gauge on a reserved rendered suffix.", &[]);
}
