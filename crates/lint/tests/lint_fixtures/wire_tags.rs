//! Fixture for `wire-tag-uniqueness`: two tags share the value 1.

const TAG_HELLO: u8 = 1;
const TAG_SAMPLE: u8 = 2;
const TAG_SHADOW: u8 = 0x01;
