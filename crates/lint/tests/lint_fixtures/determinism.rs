//! Fixture for `determinism`: wall clock, process env, map iteration.

use std::collections::HashMap;
use std::time::Instant;

fn decide(m: HashMap<u32, u32>) -> u64 {
    let t = Instant::now();
    let seed = std::env::var("SEED");
    let mut acc = 0u64;
    for v in m.values() {
        acc += u64::from(*v);
    }
    let _ = (t, seed);
    acc
}
