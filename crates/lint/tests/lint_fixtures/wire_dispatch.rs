//! Fixture for `wire-dispatch-exhaustive`: `TAG_BYE` is declared but
//! no dispatch match handles it; frames with it hit the wildcard.

const TAG_HELLO: u8 = 1;
const TAG_SAMPLE: u8 = 2;
const TAG_BYE: u8 = 3;

fn dispatch(tag: u8) -> u8 {
    match tag {
        TAG_HELLO => 1,
        TAG_SAMPLE => 2,
        _ => 0,
    }
}
