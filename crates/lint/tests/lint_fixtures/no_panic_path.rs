//! Fixture for `no-panic-path`: each forbidden construct on its own line.

fn decide(v: Vec<u8>, m: &[u8]) -> u8 {
    let a = v.first().unwrap();
    let b = v.first().expect("non-empty");
    if m.is_empty() {
        panic!("empty sample window");
    }
    let c = m[0];
    let _ = (a, b, c);
    todo!()
}
