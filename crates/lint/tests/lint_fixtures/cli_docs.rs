//! Fixture for `cli-flag-docs`: `--ghost` is parsed below but
//! documented nowhere; the companion README in the test documents
//! `--vanished`, which no arm parses.

fn parse(arg: &str) -> u8 {
    match arg {
        "--seed" => 1,
        "--ghost" => 2,
        "help" | "--help" => 3,
        _ => 0,
    }
}
