//! Fixture for `doc-metric-names`: registers two series the test's
//! README may mention; a ghost metric in the README must fire.

fn wire(reg: &Registry) {
    reg.counter("fixture_frames_total", "Frames seen.", &[]);
    reg.histogram("fixture_decode_us", "Decode latency.", &[]);
}
