//! Fixture for `determinism-taint`: the hot-path root `step_decision`
//! reaches a wall-clock read through a helper. The local `determinism`
//! rule and the chain rule both fire at the read site.

pub fn step_decision(budget: u64) -> u64 {
    jitter(budget)
}

fn jitter(budget: u64) -> u64 {
    let t = std::time::Instant::now();
    let _ = t;
    budget
}
