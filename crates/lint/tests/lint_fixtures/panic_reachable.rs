//! Fixture for `panic-reachable`: the hot-path root `step_decision`
//! reaches an indexing site two calls deep. The finding must print
//! the full root-to-site chain, hop by hop.

pub fn step_decision(xs: &[u64], i: usize) -> u64 {
    route(xs, i)
}

fn route(xs: &[u64], i: usize) -> u64 {
    pick(xs, i)
}

fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i]
}
