//! Golden AST dumps: one representative file per workspace crate,
//! parsed and rendered with [`Ast::render`], compared byte-for-byte
//! against committed snapshots under `tests/ast_golden/`.
//!
//! These pin what the parser *sees* — item structure, fn signatures,
//! call sites, match arms — so a parser change that silently drops or
//! reshapes facts the rules depend on fails loudly here, with a diff.
//!
//! When a snapshot is stale because the source or the renderer changed
//! on purpose, regenerate with:
//! `LINT_AST_GOLDEN_REGEN=1 cargo test -p livephase-lint --test ast_golden`

use livephase_lint::parser::parse;
use livephase_lint::source::SourceFile;
use std::fs;
use std::path::Path;

/// (crate, workspace-relative path) of each representative file.
const REPRESENTATIVES: &[(&str, &str)] = &[
    ("core", "crates/core/src/lib.rs"),
    ("engine", "crates/engine/src/config.rs"),
    ("serve", "crates/serve/src/engine.rs"),
    ("governor", "crates/governor/src/lib.rs"),
    ("pmsim", "crates/pmsim/src/lib.rs"),
    ("tenants", "crates/tenants/src/report.rs"),
    ("telemetry", "crates/telemetry/src/lib.rs"),
    ("workloads", "crates/workloads/src/lib.rs"),
    ("daq", "crates/daq/src/sense.rs"),
    ("experiments", "crates/experiments/src/table1.rs"),
    ("cli", "crates/cli/src/spec.rs"),
    ("lint", "crates/lint/src/report.rs"),
    ("bench", "crates/bench/src/lib.rs"),
];

#[test]
fn representative_files_match_their_committed_ast_dumps() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ast_golden");
    let regen = std::env::var_os("LINT_AST_GOLDEN_REGEN").is_some();
    let mut failures = Vec::new();
    for (crate_name, rel) in REPRESENTATIVES {
        let src_path = root.join(rel);
        let text =
            fs::read_to_string(&src_path).unwrap_or_else(|e| panic!("{}: {e}", src_path.display()));
        let file = SourceFile::analyze(*rel, *crate_name, text);
        let rendered = parse(&file).render();
        let golden_path = golden_dir.join(format!("{crate_name}.ast.txt"));
        if regen {
            fs::create_dir_all(&golden_dir).unwrap();
            fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}; regenerate with LINT_AST_GOLDEN_REGEN=1",
                golden_path.display()
            )
        });
        if rendered != want {
            failures.push(format!(
                "{rel}: AST dump drifted from {} (regenerate with \
                 LINT_AST_GOLDEN_REGEN=1 if the change is intended)",
                golden_path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn dumps_are_nonempty_and_name_real_items() {
    // Sanity independent of the snapshots: every representative file
    // parses to at least one item and renders deterministically.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for (crate_name, rel) in REPRESENTATIVES {
        let text = fs::read_to_string(root.join(rel)).unwrap();
        let file = SourceFile::analyze(*rel, *crate_name, text);
        let ast = parse(&file);
        assert!(ast.item_count() > 0, "{rel} parsed to zero items");
        assert_eq!(
            ast.render(),
            parse(&file).render(),
            "{rel} nondeterministic"
        );
    }
}
