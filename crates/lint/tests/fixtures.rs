//! Fixture-driven end-to-end tests.
//!
//! Each file under `lint_fixtures/` trips exactly one rule at known
//! locations; the `lint_allow` fixture exercises the suppression
//! protocol (justified, unjustified, unused). Together they pin the
//! exit-code contract the CI gate relies on: a fixture report is never
//! clean, so `livephase-cli lint` over such code exits 1.

use livephase_lint::report::{Report, Severity};
use livephase_lint::rules::Doc;
use livephase_lint::source::SourceFile;
use livephase_lint::{lint_files, lint_with, RULE_ALLOW_JUSTIFICATION, RULE_UNUSED_SUPPRESSION};

/// Lints one fixture in isolation under the given crate identity.
fn lint_fixture(path: &str, crate_name: &str, src: &str) -> Report {
    let files = vec![SourceFile::analyze(path, crate_name, src.to_owned())];
    lint_files(&files, None)
}

/// Like [`lint_fixture`], with documentation artifacts alongside —
/// the cross-artifact rules check code against these.
fn lint_fixture_with_docs(path: &str, crate_name: &str, src: &str, docs: &[Doc]) -> Report {
    let files = vec![SourceFile::analyze(path, crate_name, src.to_owned())];
    lint_with(&files, None, docs, false)
}

/// Lines at which `rule` fired, in report order.
fn lines(report: &Report, rule: &str) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn no_panic_path_fixture_fires_on_every_construct() {
    let report = lint_fixture(
        "no_panic_path.rs",
        "core",
        include_str!("lint_fixtures/no_panic_path.rs"),
    );
    assert!(!report.is_clean(), "fixtures must gate");
    assert_eq!(
        lines(&report, "no-panic-path"),
        vec![4, 5, 7, 9, 11],
        "{}",
        report.render_text()
    );
    assert_eq!(report.findings.len(), 5, "no other rule fires here");
}

#[test]
fn determinism_fixture_fires_on_clock_env_and_map_iteration() {
    let report = lint_fixture(
        "determinism.rs",
        "engine",
        include_str!("lint_fixtures/determinism.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "determinism"),
        vec![4, 7, 8, 10],
        "{}",
        report.render_text()
    );
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn safety_fixture_fires_only_on_the_undocumented_site() {
    // Inside the sanctioned unsafe island, documentation is what gates.
    let report = lint_fixture(
        "crates/serve/src/reactor.rs",
        "serve",
        include_str!("lint_fixtures/safety_comment.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "safety-comment"),
        vec![3],
        "{}",
        report.render_text()
    );
    assert_eq!(report.findings.len(), 1, "the documented site passes");
}

#[test]
fn safety_fixture_fires_everywhere_outside_the_island() {
    // Off the island, even the impeccably documented site is a finding:
    // the allowlist in `rules::safety` is the only sanctioned scope.
    let report = lint_fixture(
        "safety_comment.rs",
        "workloads", // the rule applies workspace-wide, not just decision crates
        include_str!("lint_fixtures/safety_comment.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "safety-comment"),
        vec![3, 6],
        "{}",
        report.render_text()
    );
    assert_eq!(report.findings.len(), 2, "both sites fire off-island");
}

#[test]
fn telemetry_fixture_fires_once_per_misnamed_registration() {
    let report = lint_fixture(
        "telemetry_naming.rs",
        "telemetry",
        include_str!("lint_fixtures/telemetry_naming.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "telemetry-naming"),
        vec![4, 5, 6, 7],
        "{}",
        report.render_text()
    );
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn wire_tag_fixture_fires_at_the_later_duplicate() {
    let report = lint_fixture(
        "wire_tags.rs",
        "serve",
        include_str!("lint_fixtures/wire_tags.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "wire-tag-uniqueness"),
        vec![5],
        "{}",
        report.render_text()
    );
    let finding = &report.findings[0];
    assert!(
        finding.message.contains("TAG_HELLO"),
        "names the shadowed tag: {}",
        finding.message
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn panic_reachable_fixture_prints_the_full_call_chain() {
    let report = lint_fixture(
        "crates/tenants/src/cluster.rs",
        "tenants",
        include_str!("lint_fixtures/panic_reachable.rs"),
    );
    assert!(!report.is_clean());
    // The local rule fires at the site; the chain rule proves the hot
    // path reaches it and names every hop from root to site.
    assert_eq!(
        lines(&report, "no-panic-path"),
        vec![14],
        "{}",
        report.render_text()
    );
    assert_eq!(lines(&report, "panic-reachable"), vec![14]);
    let chain = report
        .findings
        .iter()
        .find(|f| f.rule == "panic-reachable")
        .expect("chain finding");
    assert!(
        chain
            .message
            .contains("reachable from hot path `tenants::step_decision`"),
        "{}",
        chain.message
    );
    for hop in ["tenants::step_decision", "tenants::route", "tenants::pick"] {
        assert!(
            chain.message.contains(hop),
            "missing hop {hop}: {}",
            chain.message
        );
    }
    assert!(
        chain.message.contains(" -> ") && chain.message.contains("crates/tenants/src/cluster.rs:"),
        "hops carry clickable locations: {}",
        chain.message
    );
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn determinism_taint_fixture_chains_through_the_helper() {
    let report = lint_fixture(
        "crates/tenants/src/sched.rs",
        "tenants",
        include_str!("lint_fixtures/determinism_taint.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "determinism"),
        vec![10],
        "{}",
        report.render_text()
    );
    assert_eq!(lines(&report, "determinism-taint"), vec![10]);
    let chain = report
        .findings
        .iter()
        .find(|f| f.rule == "determinism-taint")
        .expect("chain finding");
    assert!(
        chain.message.contains("tenants::step_decision")
            && chain.message.contains("tenants::jitter"),
        "{}",
        chain.message
    );
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn wire_dispatch_fixture_fires_at_the_unhandled_declaration() {
    let report = lint_fixture(
        "crates/serve/src/wire.rs",
        "serve",
        include_str!("lint_fixtures/wire_dispatch.rs"),
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "wire-dispatch-exhaustive"),
        vec![6],
        "{}",
        report.render_text()
    );
    let finding = &report.findings[0];
    assert!(
        finding.message.contains("TAG_BYE")
            && finding.message.contains("crates/serve/src/wire.rs:9"),
        "names the tag and the decoder: {}",
        finding.message
    );
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn cli_docs_fixture_fires_in_both_directions() {
    let docs = [Doc {
        path: "README.md".to_owned(),
        text: "Run it like so:\n\n    livephase-cli run --seed 7 --vanished\n".to_owned(),
    }];
    let report = lint_fixture_with_docs(
        "crates/cli/src/args.rs",
        "cli",
        include_str!("lint_fixtures/cli_docs.rs"),
        &docs,
    );
    assert!(!report.is_clean());
    // `--ghost` is parsed but documented nowhere: fires at its arm.
    // `--vanished` is documented but parsed nowhere: fires in the README.
    assert_eq!(
        lines(&report, "cli-flag-docs"),
        vec![3, 8],
        "{}",
        report.render_text()
    );
    let by_path = |p: &str| {
        report
            .findings
            .iter()
            .find(|f| f.path == p)
            .map(|f| f.message.as_str())
            .unwrap_or_default()
    };
    assert!(by_path("crates/cli/src/args.rs").contains("`--ghost`"));
    assert!(by_path("README.md").contains("`--vanished`"));
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn doc_metrics_fixture_fires_only_on_the_ghost_metric() {
    let docs = [Doc {
        path: "README.md".to_owned(),
        text: "Watch `fixture_frames_total` and `fixture_decode_us_bucket` climb.\n\
               Query `fixture_ghosts_total` for ghosts.\n"
            .to_owned(),
    }];
    let report = lint_fixture_with_docs(
        "crates/telemetry/src/fixture.rs",
        "telemetry",
        include_str!("lint_fixtures/doc_metrics.rs"),
        &docs,
    );
    assert!(!report.is_clean());
    assert_eq!(
        lines(&report, "doc-metric-names"),
        vec![2],
        "{}",
        report.render_text()
    );
    assert!(
        report.findings[0]
            .message
            .contains("`fixture_ghosts_total`"),
        "{}",
        report.findings[0].message
    );
    assert_eq!(report.findings.len(), 1, "registered mentions pass");
}

#[test]
fn lint_allow_fixture_exercises_the_suppression_protocol() {
    let report = lint_fixture(
        "lint_allow.rs",
        "core",
        include_str!("lint_fixtures/lint_allow.rs"),
    );
    // The justified trailing allow on line 4 suppresses its finding.
    assert_eq!(report.suppressed, 1, "{}", report.render_text());
    // The unjustified allow on line 8 suppresses nothing: the indexing
    // finding survives AND the bare allow is itself a deny finding.
    assert_eq!(lines(&report, "no-panic-path"), vec![8]);
    assert_eq!(lines(&report, RULE_ALLOW_JUSTIFICATION), vec![8]);
    // The justified-but-unused allow on line 11 warns without gating.
    assert_eq!(lines(&report, RULE_UNUSED_SUPPRESSION), vec![11]);
    let unused = report
        .findings
        .iter()
        .find(|f| f.rule == RULE_UNUSED_SUPPRESSION)
        .expect("unused-suppression reported");
    assert_eq!(unused.severity, Severity::Warn);
    assert!(!report.is_clean(), "the unjustified allow still gates");
    assert_eq!(report.deny_count(), 2);
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn every_fixture_would_fail_the_ci_gate() {
    // The gate's contract: any fixture-bearing tree exits 1. Checked at
    // the library level: no fixture report is clean.
    // `doc_metrics.rs` is absent: it gates only alongside its README
    // artifact, which its own test supplies.
    let fixtures: [(&str, &str, &str); 10] = [
        (
            "no_panic_path.rs",
            "core",
            include_str!("lint_fixtures/no_panic_path.rs"),
        ),
        (
            "determinism.rs",
            "engine",
            include_str!("lint_fixtures/determinism.rs"),
        ),
        (
            "safety_comment.rs",
            "workloads",
            include_str!("lint_fixtures/safety_comment.rs"),
        ),
        (
            "telemetry_naming.rs",
            "telemetry",
            include_str!("lint_fixtures/telemetry_naming.rs"),
        ),
        (
            "wire_tags.rs",
            "serve",
            include_str!("lint_fixtures/wire_tags.rs"),
        ),
        (
            "lint_allow.rs",
            "core",
            include_str!("lint_fixtures/lint_allow.rs"),
        ),
        (
            "crates/tenants/src/cluster.rs",
            "tenants",
            include_str!("lint_fixtures/panic_reachable.rs"),
        ),
        (
            "crates/tenants/src/sched.rs",
            "tenants",
            include_str!("lint_fixtures/determinism_taint.rs"),
        ),
        (
            "crates/serve/src/wire.rs",
            "serve",
            include_str!("lint_fixtures/wire_dispatch.rs"),
        ),
        (
            "crates/cli/src/args.rs",
            "cli",
            include_str!("lint_fixtures/cli_docs.rs"),
        ),
    ];
    for (path, crate_name, src) in fixtures {
        let report = lint_fixture(path, crate_name, src);
        assert!(!report.is_clean(), "{path} must gate");
        assert!(
            report.render_json().contains("\"details\": ["),
            "{path} renders machine-readable details"
        );
    }
}

#[test]
fn power_model_zoo_module_is_inside_the_decision_perimeter() {
    // The pmsim `power/` subdirectory holds the model zoo; decision-crate
    // rules are keyed on the crate name, so a panicky construct there
    // must gate exactly like one in the crate root.
    let report = lint_fixture(
        "crates/pmsim/src/power/linear.rs",
        "pmsim",
        "fn f(xs: &[f64]) -> f64 { xs[0] }\n",
    );
    assert_eq!(
        lines(&report, "no-panic-path"),
        vec![1],
        "{}",
        report.render_text()
    );

    // And the workspace walk actually visits every zoo source file (a
    // rename could otherwise silently drop the module from the scan).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = livephase_lint::workspace::load_sources(&root).unwrap();
    for module in ["mod.rs", "analytic.rs", "linear.rs", "tree.rs"] {
        assert!(
            files
                .iter()
                .any(|f| f.crate_name == "pmsim"
                    && f.path == format!("crates/pmsim/src/power/{module}")),
            "workspace scan misses power/{module}"
        );
    }
}
