//! Property tests for the recursive-descent item parser.
//!
//! The parser runs over whatever the lexer produced from arbitrary
//! on-disk text, so its robustness contract is checked over generated
//! input:
//!
//! 1. `parse` never panics, for any string (arbitrary Unicode and
//!    Rust-shaped fragments alike);
//! 2. item spans are well-formed: in-bounds, non-empty, and nested
//!    items sit inside their parent's span;
//! 3. parsing is deterministic — the same input yields the same item
//!    count and the same rendered AST;
//! 4. on syntactically valid shapes, reparsing the `render()` header
//!    info stays stable (item counts don't drift run to run).

use livephase_lint::parser::parse;
use livephase_lint::source::SourceFile;
use proptest::collection;
use proptest::prelude::*;

fn file(src: &str) -> SourceFile {
    SourceFile::analyze("prop.rs", "prop", src.to_owned())
}

/// Arbitrary Unicode text: any scalar values, surrogates skipped.
fn arb_text() -> impl Strategy<Value = String> {
    collection::vec(0u32..=0x0010_FFFF, 0..64)
        .prop_map(|points| points.into_iter().filter_map(char::from_u32).collect())
}

/// Inputs biased toward parser-relevant structure: item keywords,
/// braces, generics, attributes, match arms, and pathological nesting.
fn arb_rusty() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("fn "),
        Just("impl "),
        Just("mod "),
        Just("trait "),
        Just("use "),
        Just("struct "),
        Just("enum "),
        Just("macro_rules! "),
        Just("match "),
        Just("x"),
        Just("a::b"),
        Just("self"),
        Just("&self"),
        Just("<T>"),
        Just("->"),
        Just("=>"),
        Just("("),
        Just(")"),
        Just("{"),
        Just("}"),
        Just("["),
        Just("]"),
        Just(","),
        Just(";"),
        Just("|"),
        Just("#[derive(Debug)]"),
        Just("\"str\""),
        Just("'a"),
        Just("0x1f"),
        Just("// comment\n"),
        Just("vec!["),
        Just(".call()"),
        Just("::<u8>"),
        Just("\n"),
        Just(" "),
    ];
    collection::vec(fragment, 0..48).prop_map(|parts| parts.concat())
}

/// A (start, end) byte span.
type Span = (usize, usize);

/// Collects every (start, end) span in the tree with its parent's span.
fn spans(
    items: &[livephase_lint::ast::Item],
    parent: Option<Span>,
    out: &mut Vec<(Span, Option<Span>)>,
) {
    use livephase_lint::ast::ItemKind;
    for item in items {
        let own = (item.span.start, item.span.end);
        out.push((own, parent));
        match &item.kind {
            ItemKind::Impl(i) => spans(&i.items, Some(own), out),
            ItemKind::Mod(children) | ItemKind::Trait(children) => {
                spans(children, Some(own), out);
            }
            _ => {}
        }
    }
}

proptest! {
    #[test]
    fn parsing_never_panics_on_arbitrary_text(src in arb_text()) {
        let _ = parse(&file(&src));
    }

    #[test]
    fn parsing_never_panics_on_rust_shaped_text(src in arb_rusty()) {
        let _ = parse(&file(&src));
    }

    #[test]
    fn item_spans_are_well_formed_and_nested(src in arb_rusty()) {
        let f = file(&src);
        let ast = parse(&f);
        let mut all = Vec::new();
        spans(&ast.items, None, &mut all);
        for ((start, end), parent) in all {
            prop_assert!(start < end, "empty span {start}..{end}");
            prop_assert!(end <= src.len(), "span {start}..{end} out of bounds");
            if let Some((ps, pe)) = parent {
                prop_assert!(
                    ps <= start && end <= pe,
                    "child {start}..{end} escapes parent {ps}..{pe}"
                );
            }
        }
    }

    #[test]
    fn parsing_is_deterministic(src in arb_rusty()) {
        let a = parse(&file(&src));
        let b = parse(&file(&src));
        prop_assert_eq!(a.item_count(), b.item_count());
        prop_assert_eq!(a.render(), b.render());
    }
}

#[test]
fn golden_shapes_parse_to_expected_item_counts() {
    // (source, total items incl. nested) — pins the parser's notion of
    // "item" so refactors can't silently change what rules see.
    let cases: &[(&str, usize)] = &[
        ("", 0),
        ("fn f() {}", 1),
        ("fn f() {} fn g() {}", 2),
        ("impl S { fn m(&self) {} }", 2),
        ("mod a { mod b { fn c() {} } }", 3),
        ("trait T { fn m(&self); }", 2),
        ("use a::b::{c, d as e};", 1),
        ("macro_rules! m { () => {} }", 1),
        ("const X: u8 = 1; static Y: u8 = 2; type Z = u8;", 3),
        ("struct S; enum E {} union U { a: u8 }", 3),
        // A fn inside a fn body is a body detail, not an item.
        ("fn f() { fn nested() {} }", 1),
        // An unclosed param list swallows to EOF (recovery is
        // conservative: one malformed item, nothing panics)...
        ("fn broken( fn next() {}", 1),
        // ...but a malformed *body* does not lose the following item.
        ("fn broken() {} fn next() {}", 2),
    ];
    for (src, want) in cases {
        let ast = parse(&file(src));
        assert_eq!(ast.item_count(), *want, "{src}");
    }
}
