//! Property tests for the hand-rolled lexer.
//!
//! The lexer is the foundation every rule stands on, and it consumes
//! arbitrary text (whatever is on disk), so its robustness properties
//! are checked over generated input:
//!
//! 1. `lex` never panics, for any string;
//! 2. token spans are well-formed: in-bounds, non-empty, strictly
//!    ordered, on char boundaries, and line/col point at the span start;
//! 3. tokens plus whitespace tile the input — no non-whitespace byte
//!    escapes tokenization;
//! 4. lexing is deterministic (same input, same tokens).
//!
//! A golden corpus of tricky literals pins the classifications the
//! rules rely on.

use livephase_lint::lexer::{lex, TokenKind};
use proptest::collection;
use proptest::prelude::*;

/// Arbitrary Unicode text: any scalar values, surrogates skipped.
fn arb_text() -> impl Strategy<Value = String> {
    collection::vec(0u32..=0x0010_FFFF, 0..64)
        .prop_map(|points| points.into_iter().filter_map(char::from_u32).collect())
}

/// Inputs biased toward lexer-relevant structure: quotes, hashes,
/// slashes, backslashes, newlines, multibyte characters, and the
/// identifier shapes the rules match on.
fn arb_tricky() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("\""),
        Just("'"),
        Just("\\"),
        Just("//"),
        Just("/*"),
        Just("*/"),
        Just("#"),
        Just("r#"),
        Just("r\""),
        Just("br#\""),
        Just("b'"),
        Just("b\""),
        Just("\n"),
        Just("é"),
        Just("日"),
        Just("unwrap"),
        Just("."),
        Just("("),
        Just("1.5"),
        Just("'a"),
        Just("ident_07"),
        Just(" "),
    ];
    collection::vec(fragment, 0..24).prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn lexing_never_panics_on_arbitrary_text(src in arb_text()) {
        let _ = lex(&src);
    }

    #[test]
    fn lexing_never_panics_on_tricky_structure(src in arb_tricky()) {
        let _ = lex(&src);
    }

    #[test]
    fn spans_are_well_formed_and_tile_the_input(src in arb_tricky()) {
        let toks = lex(&src);
        let mut prev_end = 0usize;
        for t in &toks {
            // Non-empty, in-bounds, ordered, and on char boundaries.
            prop_assert!(t.start < t.end, "empty span {:?}", t);
            prop_assert!(t.end <= src.len(), "span past EOF {:?}", t);
            prop_assert!(t.start >= prev_end, "overlapping spans at {:?}", t);
            prop_assert!(src.is_char_boundary(t.start), "start splits a char {:?}", t);
            prop_assert!(src.is_char_boundary(t.end), "end splits a char {:?}", t);
            // Gaps between tokens hold only whitespace.
            prop_assert!(
                src[prev_end..t.start].chars().all(char::is_whitespace),
                "non-whitespace byte outside any token before {:?}", t
            );
            prev_end = t.end;
        }
        prop_assert!(
            src[prev_end..].chars().all(char::is_whitespace),
            "non-whitespace tail after the last token"
        );
    }

    #[test]
    fn line_and_col_point_at_the_span_start(src in arb_tricky()) {
        let toks = lex(&src);
        for t in &toks {
            let newlines = src[..t.start].bytes().filter(|b| *b == b'\n').count();
            let line = u32::try_from(newlines).unwrap_or(u32::MAX - 1) + 1;
            prop_assert_eq!(t.line, line, "line mismatch for {:?}", t);
            let line_start = src[..t.start].rfind('\n').map_or(0, |i| i + 1);
            let col = u32::try_from(t.start - line_start).unwrap_or(u32::MAX - 1) + 1;
            prop_assert_eq!(t.col, col, "col mismatch for {:?}", t);
        }
    }

    #[test]
    fn lexing_is_deterministic(src in arb_tricky()) {
        prop_assert_eq!(lex(&src), lex(&src));
    }

    #[test]
    fn code_in_comments_and_strings_never_leaks(
        payload in collection::vec(b'a'..=b'z', 1..8)
    ) {
        // Whatever identifier we bury in a comment or string, it must
        // not surface as an Ident token a rule could fire on.
        let payload = String::from_utf8(payload).expect("ascii letters");
        for src in [
            format!("// {payload}.unwrap()"),
            format!("/* {payload}.unwrap() */"),
            format!("let s = \"{payload}.unwrap()\";"),
            format!("let s = r#\"{payload}.unwrap()\"#;"),
        ] {
            let toks = lex(&src);
            prop_assert!(
                !toks.iter().any(|t| t.kind == TokenKind::Ident
                    && t.text(&src) == "unwrap"),
                "`unwrap` leaked from: {}", src
            );
        }
    }
}

/// Golden corpus: exact classifications for the literals most likely to
/// derail a token-pattern linter.
#[test]
fn golden_corpus_of_tricky_literals() {
    let cases: [(&str, &[TokenKind]); 12] = [
        ("'a", &[TokenKind::Lifetime]),
        ("'a'", &[TokenKind::Char]),
        (r"'\''", &[TokenKind::Char]),
        ("b'x'", &[TokenKind::ByteChar]),
        (r#"b"b""#, &[TokenKind::ByteStr]),
        (r###"br#"x"#"###, &[TokenKind::ByteStr]),
        ("r#match", &[TokenKind::Ident]),
        (r####"r##"has "# inside"##"####, &[TokenKind::RawStr]),
        ("/* a /* nested */ b */", &[TokenKind::BlockComment]),
        ("//! doc", &[TokenKind::LineComment]),
        ("1_000.5e3", &[TokenKind::Num]),
        ("\"multi\nline\"", &[TokenKind::Str]),
    ];
    for (src, expect) in cases {
        let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
        assert_eq!(kinds, expect, "for input {src:?}");
    }
}
