//! The shared interprocedural analysis engine: given per-file *source
//! sites* (panicky constructs, nondeterminism reads) and the workspace
//! call graph, prove which sites the deployed hot-path roots can reach
//! and report each reachable one with its full call chain.
//!
//! Both `panic-reachable` and `determinism-taint` are instances of the
//! same fixed point: breadth-first reachability from
//! [`HOT_PATH_ROOTS`], so every reported chain is the *shortest* chain
//! from a root to the offending site — the most useful one to read.
//! Taint propagates in the caller→callee direction (a root reaching a
//! tainted function is exactly a tainted value flowing back into the
//! root), with test functions excluded from the walk.
//!
//! Suppression is chain-aware, at two levels:
//! - **edge cuts** — a justified `lint:allow(<rule>)` on a *call-site*
//!   line severs that edge for the walk. Use it where the resolver's
//!   conservative fan-out picked an impossible callee, or where the
//!   callee is provably not entered on the hot path.
//! - **source lifts** — a justified allow on the *source* line exempts
//!   the site. The rule's own id works there via the ordinary
//!   suppression machinery; additionally the corresponding *local*
//!   rule's allow (`no-panic-path`, `determinism`) lifts to chain
//!   level, so the sites triaged in PR 5 don't need a second comment.

use crate::callgraph::CallGraph;
use crate::report::{Finding, Severity};
use crate::source::SourceFile;

/// How a hot-path root function is anchored.
#[derive(Debug, Clone, Copy)]
pub enum RootContainer {
    /// A free function (no impl/trait container).
    Free,
    /// A method or associated fn of the named impl/trait container.
    Named(&'static str),
    /// Any `self`-taking method of that name (trait impls fan out).
    Method,
}

/// One hot-path root: the functions the deployed system actually calls
/// per sample/frame/quantum.
#[derive(Debug, Clone, Copy)]
pub struct RootSpec {
    /// Crate the root lives in.
    pub crate_name: &'static str,
    /// Function name.
    pub name: &'static str,
    /// Container constraint.
    pub container: RootContainer,
}

/// The deployed hot paths, per DESIGN.md: the engine's per-sample
/// decision steps, the serve reactor's shard loop, the tenants
/// scheduler quantum and arbiter grant pass, and every power-model
/// backend's costing methods (the arbiter's never-exceed-budget proof
/// rests on them).
pub const HOT_PATH_ROOTS: &[RootSpec] = &[
    RootSpec {
        crate_name: "engine",
        name: "step",
        container: RootContainer::Named("DecisionEngine"),
    },
    RootSpec {
        crate_name: "engine",
        name: "step_many",
        container: RootContainer::Named("DecisionEngine"),
    },
    RootSpec {
        crate_name: "serve",
        name: "shard_reactor_loop",
        container: RootContainer::Free,
    },
    RootSpec {
        crate_name: "tenants",
        name: "step_decision",
        container: RootContainer::Free,
    },
    RootSpec {
        crate_name: "tenants",
        name: "arbitrate",
        container: RootContainer::Named("Arbiter"),
    },
    RootSpec {
        crate_name: "pmsim",
        name: "power",
        container: RootContainer::Method,
    },
    RootSpec {
        crate_name: "pmsim",
        name: "worst_case",
        container: RootContainer::Method,
    },
];

/// Whether one function matches a root spec.
fn matches_root(graph: &CallGraph, id: usize, spec: &RootSpec) -> bool {
    let f = &graph.fns[id];
    if f.in_test || f.crate_name != spec.crate_name || f.name != spec.name {
        return false;
    }
    match spec.container {
        RootContainer::Free => f.container.is_none(),
        RootContainer::Named(c) => f.container.as_deref() == Some(c),
        RootContainer::Method => f.has_self,
    }
}

/// All function ids matching the root set, in graph order.
#[must_use]
pub fn root_ids(graph: &CallGraph, roots: &[RootSpec]) -> Vec<usize> {
    (0..graph.fns.len())
        .filter(|&id| roots.iter().any(|spec| matches_root(graph, id, spec)))
        .collect()
}

/// Root specs whose crate is present in the scan set but which match no
/// function — a rename would otherwise silently drop a root and the
/// reachability proof with it.
pub(crate) fn missing_root_findings(
    rule: &'static str,
    graph: &CallGraph,
    files: &[SourceFile],
    roots: &[RootSpec],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for spec in roots {
        let crate_present = files.iter().any(|f| f.crate_name == spec.crate_name);
        if !crate_present {
            continue;
        }
        if (0..graph.fns.len()).any(|id| matches_root(graph, id, spec)) {
            continue;
        }
        // Anchor at the first file of the crate: stable and clickable.
        let path = files
            .iter()
            .find(|f| f.crate_name == spec.crate_name)
            .map(|f| f.path.clone())
            .unwrap_or_default();
        out.push(Finding {
            rule,
            severity: Severity::Deny,
            path,
            line: 1,
            col: 1,
            message: format!(
                "hot-path root `{}::{}` matches no function — it was renamed or removed; \
                 update taint::HOT_PATH_ROOTS or the reachability proof silently shrinks",
                spec.crate_name, spec.name
            ),
        });
    }
    out
}

/// One source site for a chain analysis (a panicky construct or a
/// nondeterminism read), in file coordinates.
pub(crate) struct Source {
    /// Byte offset, for enclosing-function attribution.
    pub byte: usize,
    /// 1-based location.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short human name of the construct for the chain message.
    pub what: String,
}

/// Runs one chain analysis and returns its findings (unsorted; the
/// report sorts globally).
///
/// `sources_by_file[i]` are the source sites of `files[i]`.
/// `edge_rules` are the allow ids that cut a call edge at the call-site
/// line; `lift_rules` are the *local* allow ids that exempt a source at
/// its own line (the analysis rule's own id is handled by the generic
/// suppression pass and needs no listing here). Both mark matched
/// suppressions used.
pub(crate) fn analyze_reachable(
    rule: &'static str,
    files: &[SourceFile],
    graph: &CallGraph,
    sources_by_file: &[Vec<Source>],
    edge_rules: &[&str],
    lift_rules: &[&str],
) -> Vec<Finding> {
    let roots = root_ids(graph, HOT_PATH_ROOTS);
    let reach = graph.reach(&roots, |caller, edge| {
        let file = &files[caller.file];
        !file.suppressions.iter().any(|s| {
            s.justified
                && s.applies_line == edge.line
                && s.rules.iter().any(|r| edge_rules.contains(&r.as_str()))
        })
    });
    // Mark edge-cut allows used: any justified edge allow sitting on a
    // call-site line of a *reachable* caller did real work, whether or
    // not the callee stayed reachable through another path.
    for (id, node) in graph.fns.iter().enumerate() {
        if !reach.visited[id] {
            continue;
        }
        let file = &files[node.file];
        for edge in &node.edges {
            for s in &file.suppressions {
                if s.justified
                    && s.applies_line == edge.line
                    && s.rules.iter().any(|r| edge_rules.contains(&r.as_str()))
                {
                    s.used.set(true);
                }
            }
        }
    }

    let mut out = Vec::new();
    for (fi, (file, sources)) in files.iter().zip(sources_by_file).enumerate() {
        for src in sources {
            let Some(owner) = graph.enclosing(fi, src.byte) else {
                continue; // module-level site: no fn to attribute to
            };
            if !reach.visited[owner] || graph.fns[owner].in_test {
                continue;
            }
            // Local-rule allows lift to chain level: the site was
            // already triaged.
            let lifted = file.suppressions.iter().find(|s| {
                s.justified
                    && s.applies_line == src.line
                    && s.rules.iter().any(|r| lift_rules.contains(&r.as_str()))
            });
            if let Some(s) = lifted {
                s.used.set(true);
                continue;
            }
            let chain = graph.chain(&reach, owner);
            let hops: Vec<String> = chain
                .iter()
                .map(|&(f, line)| {
                    format!(
                        "{} ({}:{})",
                        graph.display(f),
                        files[graph.fns[f].file].path,
                        line
                    )
                })
                .collect();
            let root_name = chain
                .first()
                .map_or_else(String::new, |&(f, _)| graph.display(f));
            out.push(Finding {
                rule,
                severity: Severity::Deny,
                path: file.path.clone(),
                line: src.line,
                col: src.col,
                message: format!(
                    "{} is reachable from hot path `{}`: {} -> {} at line {}; \
                     fix the site, cut a false edge with a call-site lint:allow({}), \
                     or justify the site itself",
                    src.what,
                    root_name,
                    hops.join(" -> "),
                    src.what,
                    src.line,
                    rule,
                ),
            });
        }
    }
    out
}
