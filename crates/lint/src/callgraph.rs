//! Workspace-wide symbol table and cross-crate call graph.
//!
//! Built once per lint run from every file's AST, then shared by the
//! interprocedural rules (panic-reachability, determinism taint). The
//! design bias is *conservative over-approximation*: a call that might
//! resolve to a workspace function produces an edge, and method calls
//! resolve by name across every impl in the workspace — so trait-object
//! dispatch, generic dispatch, and closures-captured-methods are all
//! covered without type inference. The cost is false edges (reported
//! chains are always real source locations, but a chain may be
//! infeasible at runtime); the `lint:allow` protocol at chain edges is
//! the escape hatch. Calls that resolve to nothing in the workspace are
//! external (std, vendored deps) and are ignored.
//!
//! Resolution rules, in order:
//! - `.method(args)` → every workspace method (`self` receiver) of that
//!   name; argument count must match unless a closure argument makes
//!   the count opaque.
//! - `Self::name(...)` → `name` in the caller's own impl container.
//! - `Type::name(...)` (capitalized qualifier) → `name` in any impl or
//!   trait container of that type name, workspace-wide.
//! - `module::name(...)` (lowercase qualifier) → free `name` defined in
//!   a file of that module (`.../module.rs`, `.../module/...`) or in a
//!   crate of that name; `livephase_x::...` pins the crate.
//! - bare `name(...)` → a `use` import of `name` in the calling file
//!   expands it to its full path first; otherwise a free `name` in the
//!   calling crate.

use std::collections::HashMap;

use crate::ast::{Ast, CallSite, ItemKind};
use crate::source::SourceFile;

/// One function in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Crate the function lives in (`core`, `serve`, ...).
    pub crate_name: String,
    /// Enclosing impl's self type or trait's name, if any.
    pub container: Option<String>,
    /// For impl-block methods: the trait being implemented, if any.
    pub trait_impl: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based location of the definition.
    pub line: u32,
    /// 1-based column of the definition.
    pub col: u32,
    /// Byte extent of the body, when present.
    pub body: Option<(usize, usize)>,
    /// Parameter count, `self` excluded.
    pub params: usize,
    /// Whether the function takes `self`.
    pub has_self: bool,
    /// Whether the definition sits inside a test region.
    pub in_test: bool,
    /// Resolved call edges, in source order.
    pub edges: Vec<Edge>,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
    /// The callee as written at the call site (`.step`, `wire::decode`).
    pub via: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, in (file, source) order.
    pub fns: Vec<FnNode>,
}

/// Breadth-first reachability result: for each function, whether it is
/// reachable from the root set and through which call edge.
#[derive(Debug)]
pub struct Reach {
    /// `visited[f]` — `f` is reachable (roots included).
    pub visited: Vec<bool>,
    /// `parent[f]` — the `(caller, line, col)` edge that first reached
    /// `f`; `None` for roots and unreached functions.
    pub parent: Vec<Option<(usize, u32, u32)>>,
}

impl CallGraph {
    /// Builds the graph from parallel arrays of analyzed files and
    /// their ASTs.
    #[must_use]
    pub fn build(files: &[SourceFile], asts: &[Ast]) -> Self {
        let mut graph = CallGraph::default();
        // calls[i] parallels graph.fns[i].
        let mut calls: Vec<Vec<CallSite>> = Vec::new();
        for (fi, (file, ast)) in files.iter().zip(asts).enumerate() {
            collect_fns(fi, file, ast, &mut graph.fns, &mut calls);
        }

        // Secondary indexes for resolution.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, f) in graph.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
        let imports: Vec<HashMap<String, Vec<String>>> = asts.iter().map(import_map).collect();

        let all_edges: Vec<Vec<Edge>> = (0..graph.fns.len())
            .map(|id| {
                let mut edges = Vec::new();
                for call in &calls[id] {
                    let mut targets = resolve(&graph.fns, &by_name, &imports, files, id, call);
                    // Self-edges carry no reachability information.
                    targets.retain(|&t| t != id);
                    for t in targets {
                        edges.push(Edge {
                            callee: t,
                            line: call.span.line,
                            col: call.span.col,
                            via: call.display(),
                        });
                    }
                }
                edges
            })
            .collect();
        drop(by_name);
        for (node, edges) in graph.fns.iter_mut().zip(all_edges) {
            node.edges = edges;
        }
        graph
    }

    /// `crate::Container::name` (or `crate::name`) for messages.
    #[must_use]
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.container {
            Some(c) => format!("{}::{}::{}", f.crate_name, c, f.name),
            None => format!("{}::{}", f.crate_name, f.name),
        }
    }

    /// The function whose body most tightly encloses `byte` in `file`
    /// (nested-fn bytes attribute to the innermost tracked body).
    #[must_use]
    pub fn enclosing(&self, file: usize, byte: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span len, id)
        for (id, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            if let Some((s, e)) = f.body {
                if byte >= s && byte < e {
                    let len = e - s;
                    if best.is_none_or(|(blen, _)| len < blen) {
                        best = Some((len, id));
                    }
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// BFS from `roots` over edges accepted by `allow_edge` (the
    /// suppression hook: a rejected edge is cut from the graph).
    /// Deterministic: roots in given order, edges in source order.
    pub fn reach(
        &self,
        roots: &[usize],
        mut allow_edge: impl FnMut(&FnNode, &Edge) -> bool,
    ) -> Reach {
        let mut visited = vec![false; self.fns.len()];
        let mut parent: Vec<Option<(usize, u32, u32)>> = vec![None; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if r < visited.len() && !visited[r] {
                visited[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let node = &self.fns[id];
            for edge in &node.edges {
                if visited[edge.callee] || self.fns[edge.callee].in_test {
                    continue;
                }
                if !allow_edge(node, edge) {
                    continue;
                }
                visited[edge.callee] = true;
                parent[edge.callee] = Some((id, edge.line, edge.col));
                queue.push_back(edge.callee);
            }
        }
        Reach { visited, parent }
    }

    /// The call chain root → ... → `target` as `(caller id, call line)`
    /// hops, ending at `target` itself with its definition line.
    #[must_use]
    pub fn chain(&self, reach: &Reach, target: usize) -> Vec<(usize, u32)> {
        let mut rev = vec![(target, self.fns[target].line)];
        let mut cur = target;
        // Bounded by fns.len(): BFS parents cannot cycle.
        for _ in 0..self.fns.len() {
            match reach.parent[cur] {
                Some((p, line, _)) => {
                    rev.push((p, line));
                    cur = p;
                }
                None => break,
            }
        }
        rev.reverse();
        rev
    }
}

/// Walks one AST collecting `FnNode`s (container tracked through impls
/// and traits) and their raw call lists.
fn collect_fns(
    fi: usize,
    file: &SourceFile,
    ast: &Ast,
    fns: &mut Vec<FnNode>,
    calls: &mut Vec<Vec<CallSite>>,
) {
    fn go(
        fi: usize,
        file: &SourceFile,
        items: &[crate::ast::Item],
        container: Option<&str>,
        trait_impl: Option<&str>,
        fns: &mut Vec<FnNode>,
        calls: &mut Vec<Vec<CallSite>>,
    ) {
        for item in items {
            match &item.kind {
                ItemKind::Fn(def) => {
                    fns.push(FnNode {
                        file: fi,
                        crate_name: file.crate_name.clone(),
                        container: container.map(str::to_owned),
                        trait_impl: trait_impl.map(str::to_owned),
                        name: item.name.clone(),
                        line: item.span.line,
                        col: item.span.col,
                        body: def.body.map(|b| (b.start, b.end)),
                        params: def.params,
                        has_self: def.has_self,
                        in_test: file.in_test(item.span.start),
                        edges: Vec::new(),
                    });
                    calls.push(def.calls.clone());
                }
                ItemKind::Impl(imp) => go(
                    fi,
                    file,
                    &imp.items,
                    Some(&imp.self_ty),
                    imp.trait_name.as_deref(),
                    fns,
                    calls,
                ),
                ItemKind::Trait(items) => {
                    go(fi, file, items, Some(&item.name), None, fns, calls);
                }
                ItemKind::Mod(items) => {
                    go(fi, file, items, container, trait_impl, fns, calls);
                }
                _ => {}
            }
        }
    }
    go(fi, file, &ast.items, None, None, fns, calls);
}

/// `name in scope → full path` from a file's `use` declarations.
fn import_map(ast: &Ast) -> HashMap<String, Vec<String>> {
    let mut map = HashMap::new();
    ast.walk(|item| {
        if let ItemKind::Use(u) = &item.kind {
            for (name, path) in &u.leaves {
                if name != "*" && name != "self" {
                    map.insert(name.clone(), path.clone());
                }
            }
        }
    });
    map
}

/// Resolves one call site to workspace function ids (possibly many —
/// method calls fan out across impls; empty means external).
fn resolve(
    fns: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    imports: &[HashMap<String, Vec<String>>],
    files: &[SourceFile],
    caller: usize,
    call: &CallSite,
) -> Vec<usize> {
    let Some(name) = call.path.last() else {
        return Vec::new();
    };
    let candidates = match by_name.get(name.as_str()) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let caller_node = &fns[caller];

    if call.method {
        return candidates
            .iter()
            .copied()
            .filter(|&id| {
                let f = &fns[id];
                f.has_self && (call.opaque_args || f.params == call.args)
            })
            .collect();
    }

    // Expand a leading import: `use crate::wire::decode; decode(x)`
    // becomes `crate::wire::decode(x)` for resolution purposes.
    let mut path: Vec<String> = call.path.clone();
    if let Some(expansion) = imports[caller_node.file].get(&path[0]) {
        let mut full = expansion.clone();
        full.extend(path.drain(1..));
        path = full;
    }

    // Strip `crate`/`super`/`self` prefixes and pin `livephase_x` to
    // crate `x`.
    let mut target_crate: Option<String> = None;
    while path.len() > 1 && matches!(path[0].as_str(), "crate" | "super" | "self") {
        path.remove(0);
    }
    if path.len() > 1 {
        if let Some(rest) = path[0].strip_prefix("livephase_") {
            target_crate = Some(rest.replace('_', "-"));
            path.remove(0);
        }
    }
    let crate_ok = |f: &FnNode| match &target_crate {
        Some(c) => &f.crate_name == c || f.crate_name == c.replace('-', "_"),
        None => true,
    };

    let qualifier = if path.len() >= 2 {
        Some(path[path.len() - 2].clone())
    } else {
        None
    };
    match qualifier.as_deref() {
        Some("Self") => {
            let container = caller_node.container.clone();
            candidates
                .iter()
                .copied()
                .filter(|&id| fns[id].container == container && container.is_some())
                .collect()
        }
        Some(q) if q.chars().next().is_some_and(char::is_uppercase) => candidates
            .iter()
            .copied()
            .filter(|&id| {
                let f = &fns[id];
                crate_ok(f) && f.container.as_deref() == Some(q)
            })
            .collect(),
        Some(q) => {
            // Lowercase qualifier: a module. Match free fns defined in
            // that module's file(s) or in a crate of that name.
            let needle_file = format!("/{q}.rs");
            let needle_dir = format!("/{q}/");
            candidates
                .iter()
                .copied()
                .filter(|&id| {
                    let f = &fns[id];
                    if f.container.is_some() || !crate_ok(f) {
                        return false;
                    }
                    let p = &files[f.file].path;
                    f.crate_name == q || p.ends_with(&needle_file) || p.contains(&needle_dir)
                })
                .collect()
        }
        None => {
            // Bare call: a free fn in the calling crate (or the pinned
            // crate when the import told us one).
            candidates
                .iter()
                .copied()
                .filter(|&id| {
                    let f = &fns[id];
                    f.container.is_none()
                        && match &target_crate {
                            Some(_) => crate_ok(f),
                            None => f.crate_name == caller_node.crate_name,
                        }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(sources: &[(&str, &str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c, s)| SourceFile::analyze(*p, *c, (*s).to_owned()))
            .collect();
        let asts: Vec<Ast> = files.iter().map(parse).collect();
        let graph = CallGraph::build(&files, &asts);
        (files, graph)
    }

    fn id(graph: &CallGraph, name: &str) -> usize {
        graph
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"))
    }

    #[test]
    fn method_calls_fan_out_by_name_and_arity() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct S; struct T;\n\
             impl S { fn go(&self, x: u32) {} }\n\
             impl T { fn go(&self, x: u32) {} fn go2(&self) {} }\n\
             fn driver(s: S) { s.go(1); }",
        )]);
        let driver = id(&g, "driver");
        let callees: Vec<&str> = g.fns[driver]
            .edges
            .iter()
            .map(|e| g.fns[e.callee].name.as_str())
            .collect();
        assert_eq!(callees, vec!["go", "go"], "both impls, arity-matched");
    }

    #[test]
    fn qualified_and_bare_calls_resolve_within_crate() {
        let (_, g) = build(&[
            (
                "crates/a/src/wire.rs",
                "a",
                "pub fn decode(x: u8) -> u8 { x }",
            ),
            (
                "crates/a/src/main.rs",
                "a",
                "fn run() { wire::decode(1); helper(); }\nfn helper() {}",
            ),
        ]);
        let run = id(&g, "run");
        let callees: Vec<String> = g.fns[run]
            .edges
            .iter()
            .map(|e| g.display(e.callee))
            .collect();
        assert_eq!(callees, vec!["a::decode", "a::helper"]);
    }

    #[test]
    fn use_imports_pin_cross_crate_bare_calls() {
        let (_, g) = build(&[
            ("crates/core/src/phase.rs", "core", "pub fn classify() {}"),
            (
                "crates/b/src/lib.rs",
                "b",
                "use livephase_core::phase::classify;\nfn run() { classify(); }",
            ),
        ]);
        let run = id(&g, "run");
        assert_eq!(g.fns[run].edges.len(), 1);
        assert_eq!(g.display(g.fns[run].edges[0].callee), "core::classify");
    }

    #[test]
    fn self_calls_resolve_to_own_impl_only() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct A; struct B;\n\
             impl A { fn new() {} fn go(&self) { Self::new(); } }\n\
             impl B { fn new() {} }",
        )]);
        let go = id(&g, "go");
        assert_eq!(g.fns[go].edges.len(), 1);
        assert_eq!(g.display(g.fns[go].edges[0].callee), "a::A::new");
    }

    #[test]
    fn test_fns_are_excluded_from_reachability() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { leaf(); }\nfn leaf() {}\n\
             #[cfg(test)]\nmod tests { fn check() { super::leaf(); } }",
        )]);
        let root = id(&g, "root");
        let reach = g.reach(&[root], |_, _| true);
        let check = id(&g, "check");
        assert!(g.fns[check].in_test);
        assert!(reach.visited[id(&g, "leaf")]);
        assert!(!reach.visited[check]);
    }

    #[test]
    fn chains_reconstruct_shortest_paths() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { mid(); }\nfn mid() { deep(); }\nfn deep() {}",
        )]);
        let reach = g.reach(&[id(&g, "root")], |_, _| true);
        let chain = g.chain(&reach, id(&g, "deep"));
        let names: Vec<&str> = chain.iter().map(|&(f, _)| g.fns[f].name.as_str()).collect();
        assert_eq!(names, vec!["root", "mid", "deep"]);
        assert_eq!(chain[0].1, 1, "hop line is the call site");
        assert_eq!(chain[1].1, 2);
    }

    #[test]
    fn edge_filter_cuts_reachability() {
        let (_, g) = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn root() { mid(); }\nfn mid() { deep(); }\nfn deep() {}",
        )]);
        let reach = g.reach(&[id(&g, "root")], |_, e| e.line != 2);
        assert!(reach.visited[id(&g, "mid")]);
        assert!(!reach.visited[id(&g, "deep")], "cut edge stops the walk");
    }

    #[test]
    fn enclosing_maps_bytes_to_fns() {
        let src = "fn a() { inner(); }\nfn b() {}";
        let (files, g) = build(&[("crates/a/src/lib.rs", "a", src)]);
        let at = files[0].text.find("inner").unwrap();
        assert_eq!(g.enclosing(0, at), Some(id(&g, "a")));
        assert_eq!(g.enclosing(0, files[0].text.len() - 1), Some(id(&g, "b")));
    }
}
