//! Workspace discovery: which files the linter scans and in what order.
//!
//! The scan set is the first-party source — `crates/<name>/src/**/*.rs`
//! (crate name taken from the directory) plus the root façade
//! `src/**/*.rs` (crate name `livephase`) — and the `ci.sh` driver for
//! cross-checks. Vendored dependencies (`vendor/`), integration tests,
//! benches, and examples are deliberately out of scope: the invariants
//! the rules encode are about shipped decision-path code. The walk is
//! sorted at every level so reports and JSON output are byte-stable
//! across runs and filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{CiScript, Doc};
use crate::source::SourceFile;

/// A failure to read the workspace (before any rule ran).
#[derive(Debug)]
pub struct WorkspaceError {
    /// The path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for WorkspaceError {}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, WorkspaceError> {
    let iter = fs::read_dir(dir).map_err(|source| WorkspaceError {
        path: dir.to_owned(),
        source,
    })?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|source| WorkspaceError {
            path: dir.to_owned(),
            source,
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Collects every `.rs` file under `dir`, recursively, sorted.
fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), WorkspaceError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Loads and analyzes every first-party source file under `root`.
///
/// # Errors
///
/// Returns an error if a directory or file in the scan set cannot be
/// read. A missing `crates/` or `src/` directory is an error too: a
/// lint run that silently scanned nothing would report a clean
/// workspace it never looked at.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, WorkspaceError> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in read_dir_sorted(&crates_dir)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut paths = Vec::new();
        rs_files_under(&src, &mut paths)?;
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|source| WorkspaceError {
                path: path.clone(),
                source,
            })?;
            files.push(SourceFile::analyze(rel(root, &path), &crate_name, text));
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        let mut paths = Vec::new();
        rs_files_under(&facade, &mut paths)?;
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|source| WorkspaceError {
                path: path.clone(),
                source,
            })?;
            files.push(SourceFile::analyze(rel(root, &path), "livephase", text));
        }
    }
    Ok(files)
}

/// Loads `ci.sh` from the workspace root, if present. A workspace
/// without a CI driver just skips the cross-checks.
#[must_use]
pub fn load_ci_script(root: &Path) -> Option<CiScript> {
    let path = root.join("ci.sh");
    let text = fs::read_to_string(&path).ok()?;
    Some(CiScript {
        path: rel(root, &path),
        text,
    })
}

/// Loads the documentation artifacts the cross-artifact rules read
/// (currently `README.md`), skipping any that are absent.
#[must_use]
pub fn load_docs(root: &Path) -> Vec<Doc> {
    ["README.md"]
        .iter()
        .filter_map(|name| {
            let path = root.join(name);
            let text = fs::read_to_string(&path).ok()?;
            Some(Doc {
                path: rel(root, &path),
                text,
            })
        })
        .collect()
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_owned());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_scoped() {
        let dir = std::env::temp_dir().join(format!("lint-ws-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for sub in [
            "crates/beta/src",
            "crates/alpha/src/inner",
            "src",
            "vendor/dep/src",
        ] {
            fs::create_dir_all(dir.join(sub)).unwrap();
        }
        fs::write(dir.join("crates/beta/src/lib.rs"), "fn b() {}").unwrap();
        fs::write(dir.join("crates/alpha/src/lib.rs"), "fn a() {}").unwrap();
        fs::write(dir.join("crates/alpha/src/inner/m.rs"), "fn m() {}").unwrap();
        fs::write(dir.join("crates/alpha/src/notes.txt"), "skip me").unwrap();
        fs::write(dir.join("src/lib.rs"), "fn root() {}").unwrap();
        fs::write(dir.join("vendor/dep/src/lib.rs"), "fn v() {}").unwrap();

        let files = load_sources(&dir).unwrap();
        let got: Vec<(&str, &str)> = files
            .iter()
            .map(|f| (f.crate_name.as_str(), f.path.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("alpha", "crates/alpha/src/inner/m.rs"),
                ("alpha", "crates/alpha/src/lib.rs"),
                ("beta", "crates/beta/src/lib.rs"),
                ("livephase", "src/lib.rs"),
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workspace_root_is_found_from_a_nested_dir() {
        let dir = std::env::temp_dir().join(format!("lint-root-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/x/src")).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        fs::write(dir.join("crates/x/Cargo.toml"), "[package]\nname = \"x\"\n").unwrap();
        let found = find_workspace_root(&dir.join("crates/x/src")).unwrap();
        assert_eq!(found, dir);
        fs::remove_dir_all(&dir).unwrap();
    }
}
