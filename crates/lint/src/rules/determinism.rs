//! `determinism`: decision streams must be bit-reproducible, so the
//! non-test code of decision-path crates must not read wall-clock time
//! (`std::time::Instant` / `SystemTime`), consult the process
//! environment (`std::env`), or iterate a `HashMap`/`HashSet` (iteration
//! order varies run to run under the default seeded hasher). Simulated
//! time and sorted or dense structures only. Wall-clock reads that feed
//! *telemetry only* — latency histograms, trace timestamps — are the
//! sanctioned exception, carried per-site with a justified
//! `lint:allow(determinism)` so each one stays visible and reviewed.

use super::{finding_at, Rule, DECISION_CRATES};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct Determinism;

const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const MAP_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// One nondeterminism source in non-test code, crate-agnostic: a
/// wall-clock read, an environment read, or a hash-order iteration.
/// The local `determinism` rule reports these inside the decision
/// crates; the interprocedural `determinism-taint` rule reports the
/// ones any hot-path root can reach, whatever crate they live in.
pub(crate) struct DetSite {
    /// Byte offset of the construct (for enclosing-fn attribution).
    pub byte: usize,
    /// 1-based location.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short construct name: `` wall-clock `Instant` ``,
    /// `` `std::env` ``, `` iteration of `seen` (HashMap/HashSet) ``.
    pub what: String,
    /// The full local-rule message.
    pub message: String,
}

/// Scans one file for nondeterminism sources in non-test code.
pub(crate) fn determinism_sites(file: &SourceFile) -> Vec<DetSite> {
    let toks: Vec<_> = file.code_tokens().collect();
    let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));

    // Aliases of map types (`type PidMap = HashMap<...>;`) count too.
    let mut map_types: Vec<String> = MAP_TYPES.iter().map(|s| (*s).to_owned()).collect();
    for k in 0..toks.len() {
        if text(k) == "type" && toks.get(k + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            let mut m = k + 2;
            while m < toks.len() && text(m) != ";" {
                if MAP_TYPES.contains(&text(m)) {
                    map_types.push(text(k + 1).to_owned());
                    break;
                }
                m += 1;
            }
        }
    }

    // Variables declared with a map type: `name: HashMap<..>`,
    // `name: PidMap`, or `let [mut] name = HashMap::new()`.
    let mut map_vars: Vec<String> = Vec::new();
    for k in 0..toks.len() {
        if toks[k].kind != TokenKind::Ident || !map_types.contains(&text(k).to_owned()) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut j = k;
        while j >= 3 && text(j - 1) == ":" && text(j - 2) == ":" {
            j -= 3; // the preceding path segment ident
        }
        if j >= 2 && text(j - 1) == ":" && text(j - 2) != ":" {
            // `name : <map type>` — an annotation.
            if toks[j - 2].kind == TokenKind::Ident {
                map_vars.push(text(j - 2).to_owned());
            }
        } else if j >= 2 && text(j - 1) == "=" && toks[j - 2].kind == TokenKind::Ident {
            // `let [mut] name = HashMap::new()` — a constructor bind.
            map_vars.push(text(j - 2).to_owned());
        }
    }

    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = toks[k];
        if file.in_test(t.start) || file.in_attr(t.start) {
            continue;
        }
        if t.kind == TokenKind::Ident && WALL_CLOCK_TYPES.contains(&text(k)) {
            out.push(DetSite {
                byte: t.start,
                line: t.line,
                col: t.col,
                what: format!("wall-clock `{}`", text(k)),
                message: format!(
                    "wall-clock `{}` in a decision-path crate; decisions must use \
                         simulated time (telemetry-only reads need a justified lint:allow)",
                    text(k)
                ),
            });
        }
        if text(k) == "std" && text(k + 1) == ":" && text(k + 2) == ":" && text(k + 3) == "env" {
            out.push(DetSite {
                byte: t.start,
                line: t.line,
                col: t.col,
                what: "`std::env`".to_owned(),
                message: "`std::env` makes behavior environment-dependent in a decision-path crate"
                    .to_owned(),
            });
        }
        // `map.iter()`-family calls on a known map variable.
        if t.kind == TokenKind::Ident
            && map_vars.contains(&text(k).to_owned())
            && text(k + 1) == "."
            && ITER_METHODS.contains(&text(k + 2))
            && text(k + 3) == "("
        {
            out.push(DetSite {
                byte: t.start,
                line: t.line,
                col: t.col,
                what: format!("iteration of `{}` (HashMap/HashSet)", text(k)),
                message: format!(
                    "iterating `{}` (a HashMap/HashSet) is order-nondeterministic; \
                         use a BTreeMap/Vec, sort first, or justify order-independence",
                    text(k)
                ),
            });
        }
        // `for ... in <expr mentioning a map var> {`
        if text(k) == "for" {
            let mut m = k + 1;
            let mut seen_in = false;
            while m < toks.len() && m < k + 64 && text(m) != "{" {
                if text(m) == "in" {
                    seen_in = true;
                } else if seen_in
                        && toks[m].kind == TokenKind::Ident
                        && map_vars.contains(&text(m).to_owned())
                        // `for x in map.keys()` is already reported above.
                        && text(m + 1) != "."
                {
                    out.push(DetSite {
                        byte: toks[m].start,
                        line: toks[m].line,
                        col: toks[m].col,
                        what: format!("iteration of `{}` (HashMap/HashSet)", text(m)),
                        message: format!(
                            "`for` over `{}` (a HashMap/HashSet) is order-nondeterministic",
                            text(m)
                        ),
                    });
                }
                m += 1;
            }
        }
    }
    out
}

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DECISION_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for site in determinism_sites(file) {
            let at = crate::lexer::Token {
                kind: TokenKind::Ident,
                start: site.byte,
                end: site.byte,
                line: site.line,
                col: site.col,
            };
            out.push(finding_at(
                self.id(),
                self.severity(),
                file,
                &at,
                site.message,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze("x.rs", crate_name, src.to_owned());
        let mut out = Vec::new();
        Determinism.check_file(&f, &mut out);
        out
    }

    #[test]
    fn wall_clock_and_env_fire() {
        let src = "use std::time::Instant;\nfn f() {\n    let t = Instant::now();\n    let s = SystemTime::now();\n    let v = std::env::var(\"X\");\n}";
        let lines: Vec<u32> = check("engine", src).iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 3, 4, 5]);
    }

    #[test]
    fn hashmap_iteration_fires_but_lookup_does_not() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {\n    let _ = m.get(&1);\n    for v in m.values() { let _ = v; }\n    m.insert(1, 2);\n}";
        let got = check("serve", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn alias_and_constructor_binds_are_tracked() {
        let src = "type PidMap = HashMap<u32, u32>;\nstruct S { pids: PidMap }\nimpl S {\n    fn g(&self) { self.pids.values().count(); }\n}\nfn h() {\n    let mut seen = HashMap::new();\n    for k in &seen { let _ = k; }\n    seen.insert(1, 1);\n}";
        let lines: Vec<u32> = check("core", src).iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![4, 8]);
    }

    #[test]
    fn btreemap_iteration_is_fine_and_scope_is_respected() {
        let src = "fn f(m: std::collections::BTreeMap<u32, u32>) { for v in m.values() {} }";
        assert!(check("core", src).is_empty());
        let src = "fn f() { let t = Instant::now(); }";
        assert!(check("experiments", src).is_empty(), "out-of-scope crate");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = std::time::Instant::now(); } }";
        assert!(check("core", src).is_empty());
    }
}
