//! The rule set: each rule encodes one invariant the workspace's tests
//! and review process previously enforced only by convention.
//!
//! | rule                  | scope                  | invariant |
//! |-----------------------|------------------------|-----------|
//! | `no-panic-path`       | decision-path crates   | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`[...]` indexing in non-test code |
//! | `determinism`         | decision-path crates   | no `Instant`/`SystemTime`/`std::env`, no `HashMap`/`HashSet` iteration in non-test code |
//! | `safety-comment`      | whole workspace        | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `telemetry-naming`    | whole workspace        | metric names are snake_case, kind-suffixed, consistent, and cover what `ci.sh` scrapes |
//! | `wire-tag-uniqueness` | `serve`                | frame tag constants are unique within a protocol version |
//!
//! The *decision-path crates* are the ones whose code can run between a
//! counter sample arriving and a DVFS decision leaving: `core`,
//! `engine`, `serve`, `governor`, `pmsim`, `tenants` (its scheduler and
//! arbiter sit between every tenant's samples and their DVFS grants),
//! and `telemetry` (its instruments run inside the decision loop even
//! though they never influence it).

pub mod determinism;
pub mod panic_path;
pub mod safety;
pub mod telemetry_names;
pub mod wire_tags;

use crate::report::{Finding, Severity};
use crate::source::SourceFile;

/// Crates whose non-test code sits on (or inside) the per-sample
/// decision path and therefore must be panic-free and deterministic.
pub const DECISION_CRATES: [&str; 7] = [
    "core",
    "engine",
    "serve",
    "governor",
    "pmsim",
    "tenants",
    "telemetry",
];

/// The CI driver script, scanned by the telemetry-naming rule so the
/// metric names it greps for cannot drift from the ones the code
/// registers.
#[derive(Debug)]
pub struct CiScript {
    /// Workspace-relative path (normally `ci.sh`).
    pub path: String,
    /// The script's text.
    pub text: String,
}

/// One lint rule.
pub trait Rule {
    /// Stable rule id, usable in `lint:allow(<id>)`.
    fn id(&self) -> &'static str;

    /// Whether findings from this rule gate the run.
    fn severity(&self) -> Severity {
        Severity::Deny
    }

    /// Scans one file in isolation.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}

    /// Scans cross-file state (after every file was analyzed).
    fn check_workspace(
        &self,
        _files: &[SourceFile],
        _ci_script: Option<&CiScript>,
        _out: &mut Vec<Finding>,
    ) {
    }
}

/// The full shipped ruleset, in a fixed order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_path::NoPanicPath),
        Box::new(determinism::Determinism),
        Box::new(safety::SafetyComment),
        Box::new(telemetry_names::TelemetryNaming),
        Box::new(wire_tags::WireTagUniqueness),
    ]
}

/// Helper: build a finding anchored at a token.
pub(crate) fn finding_at(
    rule: &'static str,
    severity: Severity,
    file: &SourceFile,
    tok: &crate::lexer::Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        severity,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Rust keywords that can legitimately precede a `[` without the bracket
/// being an index expression (slice patterns, array types, and friends).
pub(crate) const KEYWORDS_BEFORE_BRACKET: [&str; 37] = [
    "as", "await", "become", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "type", "union", "unsafe",
    "use", "where", "yield",
];
