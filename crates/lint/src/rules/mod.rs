//! The rule set: each rule encodes one invariant the workspace's tests
//! and review process previously enforced only by convention.
//!
//! | rule                       | scope                  | invariant |
//! |----------------------------|------------------------|-----------|
//! | `no-panic-path`            | decision-path crates   | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`[...]` indexing in non-test code |
//! | `determinism`              | decision-path crates   | no `Instant`/`SystemTime`/`std::env`, no `HashMap`/`HashSet` iteration in non-test code |
//! | `panic-reachable`          | whole workspace        | no panic construct is transitively reachable from the deployed hot-path roots (call graph) |
//! | `determinism-taint`        | whole workspace        | no nondeterminism source is transitively reachable from the hot-path roots (call graph) |
//! | `safety-comment`           | whole workspace        | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | `telemetry-naming`         | whole workspace        | metric names are snake_case, kind-suffixed, consistent, and cover what `ci.sh` scrapes |
//! | `doc-metric-names`         | README                 | metric names the docs mention are actually registered |
//! | `wire-tag-uniqueness`      | `serve`                | frame tag constants are unique within a protocol version |
//! | `wire-dispatch-exhaustive` | `serve`                | every declared `TAG_*` constant is handled by a decoder dispatch `match` arm |
//! | `cli-flag-docs`            | `cli` + README         | parsed `--flags` and documented `--flags` agree in both directions |
//!
//! The *decision-path crates* are the ones whose code can run between a
//! counter sample arriving and a DVFS decision leaving: `core`,
//! `engine`, `serve`, `governor`, `pmsim`, `tenants` (its scheduler and
//! arbiter sit between every tenant's samples and their DVFS grants),
//! and `telemetry` (its instruments run inside the decision loop even
//! though they never influence it). The interprocedural rules go
//! further: they start from the *hot-path roots* (see
//! [`crate::taint::HOT_PATH_ROOTS`]) and follow the workspace call
//! graph, so a helper crate outside the decision perimeter can no
//! longer launder a panic or a wall-clock read into the decision path.

pub mod cli_docs;
pub mod determinism;
pub mod determinism_taint;
pub mod doc_metrics;
pub mod panic_path;
pub mod panic_reachable;
pub mod safety;
pub mod telemetry_names;
pub mod wire_dispatch;
pub mod wire_tags;

use crate::ast::Ast;
use crate::callgraph::CallGraph;
use crate::report::{Finding, Severity};
use crate::source::SourceFile;

/// Crates whose non-test code sits on (or inside) the per-sample
/// decision path and therefore must be panic-free and deterministic.
pub const DECISION_CRATES: [&str; 7] = [
    "core",
    "engine",
    "serve",
    "governor",
    "pmsim",
    "tenants",
    "telemetry",
];

/// The CI driver script, scanned by the telemetry-naming rule so the
/// metric names it greps for cannot drift from the ones the code
/// registers.
#[derive(Debug)]
pub struct CiScript {
    /// Workspace-relative path (normally `ci.sh`).
    pub path: String,
    /// The script's text.
    pub text: String,
}

/// A non-source artifact the cross-artifact rules read (README and
/// friends). Findings can anchor into it: `path` feeds straight into
/// [`Finding::path`].
#[derive(Debug)]
pub struct Doc {
    /// Workspace-relative path (e.g. `README.md`).
    pub path: String,
    /// The document's text.
    pub text: String,
}

/// Everything a workspace-level check can see: the analyzed files, their
/// ASTs (parallel to `files`), the resolved cross-crate call graph, the
/// CI driver, and the documentation artifacts. Built once per lint run
/// and shared by every rule.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// Every analyzed first-party source file.
    pub files: &'a [SourceFile],
    /// `asts[i]` is the parse of `files[i]`.
    pub asts: &'a [Ast],
    /// The workspace call graph over `files`/`asts`.
    pub graph: &'a CallGraph,
    /// The CI driver script, when present.
    pub ci_script: Option<&'a CiScript>,
    /// Documentation artifacts (README.md), when present.
    pub docs: &'a [Doc],
    /// Whether the scan set is the *full* workspace. Guards that only
    /// make sense over everything — "hot-path root exists" — are
    /// skipped for partial scans (fixtures, unit tests).
    pub strict_roots: bool,
}

/// One lint rule.
pub trait Rule {
    /// Stable rule id, usable in `lint:allow(<id>)`.
    fn id(&self) -> &'static str;

    /// Whether findings from this rule gate the run.
    fn severity(&self) -> Severity {
        Severity::Deny
    }

    /// Scans one file in isolation.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Finding>) {}

    /// Scans cross-file state (after every file was analyzed and the
    /// call graph built).
    fn check_workspace(&self, _ws: &Workspace<'_>, _out: &mut Vec<Finding>) {}
}

/// The full shipped ruleset, in a fixed order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_path::NoPanicPath),
        Box::new(determinism::Determinism),
        Box::new(panic_reachable::PanicReachable),
        Box::new(determinism_taint::DeterminismTaint),
        Box::new(safety::SafetyComment),
        Box::new(telemetry_names::TelemetryNaming),
        Box::new(doc_metrics::DocMetricNames),
        Box::new(wire_tags::WireTagUniqueness),
        Box::new(wire_dispatch::WireDispatchExhaustive),
        Box::new(cli_docs::CliFlagDocs),
    ]
}

/// Test helper: run one rule's workspace pass over ad-hoc files with a
/// freshly built AST set and call graph.
#[cfg(test)]
pub(crate) fn run_workspace_rule(
    rule: &dyn Rule,
    files: &[SourceFile],
    ci_script: Option<&CiScript>,
    docs: &[Doc],
) -> Vec<Finding> {
    let asts: Vec<Ast> = files.iter().map(crate::parser::parse).collect();
    let graph = CallGraph::build(files, &asts);
    let ws = Workspace {
        files,
        asts: &asts,
        graph: &graph,
        ci_script,
        docs,
        strict_roots: false,
    };
    let mut out = Vec::new();
    rule.check_workspace(&ws, &mut out);
    out
}

/// Helper: build a finding anchored at a token.
pub(crate) fn finding_at(
    rule: &'static str,
    severity: Severity,
    file: &SourceFile,
    tok: &crate::lexer::Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        severity,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Rust keywords that can legitimately precede a `[` without the bracket
/// being an index expression (slice patterns, array types, and friends).
pub(crate) const KEYWORDS_BEFORE_BRACKET: [&str; 37] = [
    "as", "await", "become", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "type", "union", "unsafe",
    "use", "where", "yield",
];
