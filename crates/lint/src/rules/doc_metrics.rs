//! `doc-metric-names`: metric names the README mentions must actually
//! be registered by the code. The `telemetry-naming` rule already keeps
//! registration, rendering, and the `ci.sh` greps consistent; this rule
//! closes the last artifact, so a dashboard reader following the README
//! never queries a series that does not exist.
//!
//! A README word is metric-like under the same predicate `ci.sh`
//! scraping uses: snake_case, at least 6 chars, ending `_total` or
//! `_us` after stripping a rendered-series suffix
//! (`_bucket`/`_sum`/`_count`/`_overflow`).

use super::{telemetry_names, Rule, Workspace};
use crate::report::{Finding, Severity};

/// See the module docs.
#[derive(Debug)]
pub struct DocMetricNames;

impl Rule for DocMetricNames {
    fn id(&self) -> &'static str {
        "doc-metric-names"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        let registered = telemetry_names::registered_names(ws.files);
        if registered.is_empty() {
            return; // no telemetry in the scan set: nothing to check against
        }
        for doc in ws.docs {
            let mut reported: Vec<String> = Vec::new();
            for (i, line) in doc.text.lines().enumerate() {
                for word in line
                    .split(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
                {
                    let name = telemetry_names::normalize_rendered(word);
                    let metric_like = name.ends_with("_total") || name.ends_with("_us");
                    if !metric_like
                        || !telemetry_names::is_snake_case(name)
                        || name.len() < 6
                        || registered.iter().any(|r| r == name)
                        || reported.iter().any(|r| r == name)
                    {
                        continue;
                    }
                    reported.push(name.to_owned());
                    out.push(Finding {
                        rule: self.id(),
                        severity: Severity::Deny,
                        path: doc.path.clone(),
                        line: u32::try_from(i).unwrap_or(u32::MAX - 1) + 1,
                        col: 1,
                        message: format!(
                            "mentions metric `{name}` but no registration site defines it; \
                             rename the doc or register the series"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{run_workspace_rule, Doc};
    use crate::source::SourceFile;

    fn telemetry_file() -> SourceFile {
        SourceFile::analyze(
            "crates/telemetry/src/lib.rs",
            "telemetry",
            "fn wire() { reg.counter(\"serve_frames_total\"); reg.histogram(\"serve_frame_decode_us\"); }"
                .to_owned(),
        )
    }

    #[test]
    fn registered_mentions_pass_including_rendered_series() {
        let docs = [Doc {
            path: "README.md".to_owned(),
            text: "Watch `serve_frames_total` and `serve_frame_decode_us_bucket` climb.\n"
                .to_owned(),
        }];
        let got = run_workspace_rule(&DocMetricNames, &[telemetry_file()], None, &docs);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn an_unregistered_mention_fires_at_its_readme_line() {
        let docs = [Doc {
            path: "README.md".to_owned(),
            text: "Intro.\nQuery `serve_ghosts_total` for ghosts.\n".to_owned(),
        }];
        let got = run_workspace_rule(&DocMetricNames, &[telemetry_file()], None, &docs);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!((got[0].path.as_str(), got[0].line), ("README.md", 2));
        assert!(got[0].message.contains("`serve_ghosts_total`"));
    }

    #[test]
    fn non_metric_words_and_empty_registries_are_quiet() {
        let docs = [Doc {
            path: "README.md".to_owned(),
            text: "results_total is not snake? it is; but short_us too.\ntotal_us_whatever no.\n"
                .to_owned(),
        }];
        // Empty registry: the rule disarms rather than flagging every word.
        let f = SourceFile::analyze("crates/core/src/lib.rs", "core", "fn f() {}".to_owned());
        assert!(run_workspace_rule(&DocMetricNames, &[f], None, &docs).is_empty());
    }
}
