//! `telemetry-naming`: the metric namespace is an API. Names extracted
//! from non-test `.counter(...)` / `.gauge(...)` / `.histogram(...)`
//! registration sites must be snake_case; counters must end `_total`
//! and histograms `_us` (their rendered series add `_bucket`/`_sum`/
//! `_count`/`_overflow`, so those suffixes are reserved on every
//! kind); a name registered from several sites must agree on kind and
//! help text workspace-wide; and every metric name `ci.sh` greps out
//! of the exposition must actually be registered somewhere, so the
//! scrape gate cannot silently go stale.
//!
//! `timed_span!` spans live in the same namespace: every span feeds the
//! `span_elapsed_us{target,span}` histogram (the input to `bench
//! --profile`), so static span targets and names must be snake_case
//! (`::`-separated segments for targets) and names must not squat on
//! the rendered-series suffixes.

use super::{finding_at, CiScript, Rule, Workspace};
use crate::lexer::TokenKind;
use crate::report::{Finding, Severity};
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct TelemetryNaming;

const KINDS: [&str; 3] = ["counter", "gauge", "histogram"];
const RESERVED_RENDER_SUFFIXES: [&str; 4] = ["_bucket", "_sum", "_count", "_overflow"];

/// One registration call site.
struct Site {
    name: String,
    kind: &'static str,
    help: Option<String>,
    path: String,
    line: u32,
    col: u32,
}

pub(crate) fn is_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.contains("__")
        && !name.ends_with('_')
}

fn strip_quotes(s: &str) -> &str {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
}

/// Every registered metric name in the workspace, for cross-artifact
/// checks (the doc-metric-names rule).
pub(crate) fn registered_names(files: &[SourceFile]) -> Vec<String> {
    let mut names: Vec<String> = files
        .iter()
        .flat_map(|f| collect_sites(f).into_iter().map(|s| s.name))
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Strips a rendered-series suffix (`_bucket`/`_sum`/`_count`/
/// `_overflow`) so a mention of a rendered histogram series maps back
/// to its registered base name.
pub(crate) fn normalize_rendered(name: &str) -> &str {
    RESERVED_RENDER_SUFFIXES
        .iter()
        .find_map(|s| name.strip_suffix(s))
        .unwrap_or(name)
}

fn collect_sites(file: &SourceFile) -> Vec<Site> {
    let toks: Vec<_> = file.code_tokens().collect();
    let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));
    let mut sites = Vec::new();
    for k in 0..toks.len() {
        if file.in_test(toks[k].start) {
            continue;
        }
        if text(k) != "." || !KINDS.contains(&text(k + 1)) || text(k + 2) != "(" {
            continue;
        }
        let Some(name_tok) = toks.get(k + 3) else {
            continue;
        };
        if name_tok.kind != TokenKind::Str {
            continue; // dynamic name: out of this rule's static reach
        }
        let kind = KINDS
            .iter()
            .find(|s| **s == text(k + 1))
            .copied()
            .unwrap_or("counter");
        // Help is the second argument when it is a string literal.
        let help = (text(k + 4) == ",")
            .then(|| toks.get(k + 5))
            .flatten()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| strip_quotes(file.tok_text(t)).to_owned());
        sites.push(Site {
            name: strip_quotes(file.tok_text(name_tok)).to_owned(),
            kind,
            help,
            path: file.path.clone(),
            line: name_tok.line,
            col: name_tok.col,
        });
    }
    sites
}

/// One static `timed_span!(target, name, ...)` call site.
struct SpanSite {
    target: String,
    name: String,
    line: u32,
    col: u32,
}

/// A span target is a `::`-separated path of snake_case segments
/// (e.g. `serve::conn`).
fn is_span_target(target: &str) -> bool {
    !target.is_empty() && target.split("::").all(is_snake_case)
}

fn collect_span_sites(file: &SourceFile) -> Vec<SpanSite> {
    let toks: Vec<_> = file.code_tokens().collect();
    let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));
    let mut sites = Vec::new();
    for k in 0..toks.len() {
        if file.in_test(toks[k].start) {
            continue;
        }
        if text(k) != "timed_span" || text(k + 1) != "!" || text(k + 2) != "(" {
            continue;
        }
        // Only fully static sites are in reach: string target, comma,
        // string name. (The macro definition itself matches `$target`
        // metavariables, which are not string tokens.)
        let (Some(target_tok), Some(name_tok)) = (toks.get(k + 3), toks.get(k + 5)) else {
            continue;
        };
        if target_tok.kind != TokenKind::Str
            || text(k + 4) != ","
            || name_tok.kind != TokenKind::Str
        {
            continue;
        }
        sites.push(SpanSite {
            target: strip_quotes(file.tok_text(target_tok)).to_owned(),
            name: strip_quotes(file.tok_text(name_tok)).to_owned(),
            line: name_tok.line,
            col: name_tok.col,
        });
    }
    sites
}

/// Metric names `ci.sh` greps for, normalized to the registered form
/// (rendered `_bucket`/`_sum`/`_count` histogram series map back to the
/// `_us` base name), with the 1-based line of first occurrence.
fn ci_metric_names(ci: &CiScript) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for (i, line) in ci.text.lines().enumerate() {
        for word in
            line.split(|c: char| !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'))
        {
            let normalized = RESERVED_RENDER_SUFFIXES
                .iter()
                .find_map(|s| word.strip_suffix(s))
                .unwrap_or(word);
            let metric_like = normalized.ends_with("_total") || normalized.ends_with("_us");
            if !metric_like || !is_snake_case(normalized) || normalized.len() < 6 {
                continue;
            }
            if !out.iter().any(|(n, _)| n == normalized) {
                out.push((
                    normalized.to_owned(),
                    u32::try_from(i).unwrap_or(u32::MAX - 1) + 1,
                ));
            }
        }
    }
    out
}

impl Rule for TelemetryNaming {
    fn id(&self) -> &'static str {
        "telemetry-naming"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        let files = ws.files;
        let ci_script = ws.ci_script;
        let mut sites: Vec<(usize, Site)> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for s in collect_sites(file) {
                sites.push((fi, s));
            }
        }
        // Per-site: case and kind suffix.
        for (fi, s) in &sites {
            let file = &files[*fi];
            let at = crate::lexer::Token {
                kind: TokenKind::Str,
                start: 0,
                end: 0,
                line: s.line,
                col: s.col,
            };
            let mut complain = |msg: String| {
                out.push(finding_at(self.id(), Severity::Deny, file, &at, msg));
            };
            if !is_snake_case(&s.name) {
                complain(format!("metric name `{}` is not snake_case", s.name));
            }
            match s.kind {
                "counter" if !s.name.ends_with("_total") => {
                    complain(format!("counter `{}` must be suffixed `_total`", s.name));
                }
                "histogram" if !s.name.ends_with("_us") => {
                    complain(format!(
                        "histogram `{}` must be suffixed `_us` (series render as `_bucket`/`_sum`/`_count`/`_overflow`)",
                        s.name
                    ));
                }
                "gauge" if s.name.ends_with("_total") || s.name.ends_with("_us") => {
                    complain(format!(
                        "gauge `{}` uses a suffix reserved for another kind",
                        s.name
                    ));
                }
                _ => {}
            }
            if s.kind != "histogram"
                && RESERVED_RENDER_SUFFIXES
                    .iter()
                    .any(|suf| s.name.ends_with(suf))
            {
                complain(format!(
                    "`{}` ends with a suffix reserved for rendered histogram series",
                    s.name
                ));
            }
        }
        // Cross-site: one name, one kind, one help string.
        for (i, (fi, s)) in sites.iter().enumerate() {
            for (_, earlier) in &sites[..i] {
                if earlier.name != s.name {
                    continue;
                }
                let file = &files[*fi];
                let at = crate::lexer::Token {
                    kind: TokenKind::Str,
                    start: 0,
                    end: 0,
                    line: s.line,
                    col: s.col,
                };
                if earlier.kind != s.kind {
                    out.push(finding_at(
                        self.id(),
                        Severity::Deny,
                        file,
                        &at,
                        format!(
                            "metric `{}` registered as {} here but as {} at {}:{}",
                            s.name, s.kind, earlier.kind, earlier.path, earlier.line
                        ),
                    ));
                } else if let (Some(a), Some(b)) = (&earlier.help, &s.help) {
                    if a != b {
                        out.push(finding_at(
                            self.id(),
                            Severity::Deny,
                            file,
                            &at,
                            format!(
                                "metric `{}` help text diverges from {}:{} — one name, one meaning",
                                s.name, earlier.path, earlier.line
                            ),
                        ));
                    }
                }
                break;
            }
        }
        // Span targets and names feed span_elapsed_us{target,span}: same
        // namespace, same discipline.
        for (fi, file) in files.iter().enumerate() {
            let _ = fi;
            for s in collect_span_sites(file) {
                let at = crate::lexer::Token {
                    kind: TokenKind::Str,
                    start: 0,
                    end: 0,
                    line: s.line,
                    col: s.col,
                };
                if !is_span_target(&s.target) {
                    out.push(finding_at(
                        self.id(),
                        Severity::Deny,
                        file,
                        &at,
                        format!(
                            "timed_span! target `{}` is not a snake_case `::` path",
                            s.target
                        ),
                    ));
                }
                if !is_snake_case(&s.name) {
                    out.push(finding_at(
                        self.id(),
                        Severity::Deny,
                        file,
                        &at,
                        format!("timed_span! name `{}` is not snake_case", s.name),
                    ));
                } else if RESERVED_RENDER_SUFFIXES
                    .iter()
                    .any(|suf| s.name.ends_with(suf))
                {
                    out.push(finding_at(
                        self.id(),
                        Severity::Deny,
                        file,
                        &at,
                        format!(
                            "timed_span! name `{}` ends with a suffix reserved for rendered histogram series",
                            s.name
                        ),
                    ));
                }
            }
        }
        // The scrape gate in ci.sh must name real metrics.
        if let Some(ci) = ci_script {
            for (name, line) in ci_metric_names(ci) {
                if !sites.iter().any(|(_, s)| s.name == name) {
                    out.push(Finding {
                        rule: self.id(),
                        severity: Severity::Deny,
                        path: ci.path.clone(),
                        line,
                        col: 1,
                        message: format!(
                            "ci greps for metric `{name}`, but no registration site defines it"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::analyze(*p, "serve", (*s).to_owned()))
            .collect()
    }

    fn check(srcs: &[(&str, &str)], ci: Option<&str>) -> Vec<Finding> {
        let fs = files(srcs);
        let ci = ci.map(|t| CiScript {
            path: "ci.sh".to_owned(),
            text: t.to_owned(),
        });
        crate::rules::run_workspace_rule(&TelemetryNaming, &fs, ci.as_ref(), &[])
    }

    #[test]
    fn well_formed_registrations_pass() {
        let src = r#"fn f(reg: &Registry) {
            reg.counter("serve_connections_total", "Connections.", &[]);
            reg.gauge("serve_shard_sessions", "Sessions.", &[]);
            reg.histogram("serve_frame_decode_us", "Decode time.", &[]);
        }"#;
        assert!(check(&[("a.rs", src)], None).is_empty());
    }

    #[test]
    fn bad_names_and_suffixes_fire() {
        let src = r#"fn f(reg: &Registry) {
            reg.counter("BadCase_total", "x", &[]);
            reg.counter("requests", "x", &[]);
            reg.histogram("latency_total", "x", &[]);
            reg.gauge("depth_us", "x", &[]);
            reg.gauge("depth_bucket", "x", &[]);
        }"#;
        let got = check(&[("a.rs", src)], None);
        assert_eq!(got.len(), 5, "{got:?}");
    }

    #[test]
    fn kind_and_help_conflicts_fire_across_files() {
        let a = r#"fn f(r: &Registry) { r.counter("x_total", "Things.", &[]); }"#;
        let b = r#"fn g(r: &Registry) { r.gauge("x_total", "Things.", &[]); }"#;
        let c = r#"fn h(r: &Registry) { r.counter("x_total", "Other.", &[]); }"#;
        let got = check(&[("a.rs", a), ("b.rs", b), ("c.rs", c)], None);
        // Three: the kind conflict, the help conflict, and the per-site
        // suffix check the mis-kinded gauge necessarily also trips.
        assert_eq!(got.len(), 3, "{got:?}");
        assert!(got
            .iter()
            .any(|f| f.message.contains("registered as gauge")));
        assert!(got.iter().any(|f| f.message.contains("help text diverges")));
    }

    #[test]
    fn ci_cross_check_finds_stale_greps() {
        let src = r#"fn f(r: &Registry) { r.counter("serve_connections_total", "c", &[]); }"#;
        let ci = "grep -q serve_connections_total out\ngrep -q '^ghost_metric_us_bucket{' out\n";
        let got = check(&[("a.rs", src)], Some(ci));
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("ghost_metric_us"));
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn well_formed_span_sites_pass() {
        let src = r#"fn f() {
            let v = timed_span!("serve::conn", "drain_shard", { 1 });
            let w = livephase_telemetry::timed_span!("bench::calibrate", "calibration", { 2 });
        }"#;
        assert!(check(&[("a.rs", src)], None).is_empty());
    }

    #[test]
    fn bad_span_targets_and_names_fire() {
        let src = r#"fn f() {
            let a = timed_span!("Serve::Conn", "drain", { 1 });
            let b = timed_span!("serve", "DrainShard", { 1 });
            let c = timed_span!("serve", "drain_count", { 1 });
            let d = timed_span!("serve", "drain_overflow", { 1 });
        }"#;
        let got = check(&[("a.rs", src)], None);
        assert_eq!(got.len(), 4, "{got:?}");
        assert!(got
            .iter()
            .any(|f| f.message.contains("`Serve::Conn` is not a snake_case")));
        assert!(got
            .iter()
            .any(|f| f.message.contains("`DrainShard` is not snake_case")));
        assert!(got
            .iter()
            .any(|f| f.message.contains("`drain_count` ends with a suffix")));
        assert!(got
            .iter()
            .any(|f| f.message.contains("`drain_overflow` ends with a suffix")));
    }

    #[test]
    fn span_sites_in_tests_and_dynamic_sites_are_exempt() {
        let test_src =
            "#[cfg(test)]\nmod tests { fn f() { let v = timed_span!(\"X\", \"Y\", { 1 }); } }";
        assert!(check(&[("a.rs", test_src)], None).is_empty());
        let dynamic = r#"fn f(t: &'static str) { let v = timed_span!(t, "ok_name", { 1 }); }"#;
        assert!(check(&[("b.rs", dynamic)], None).is_empty());
    }

    #[test]
    fn overflow_suffix_is_reserved_and_normalized_in_ci() {
        // A gauge squatting on the rendered `_overflow` suffix fires.
        let src = r#"fn f(r: &Registry) {
            r.gauge("queue_overflow", "x", &[]);
            r.histogram("serve_frame_decode_us", "Decode time.", &[]);
        }"#;
        let got = check(&[("a.rs", src)], None);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("queue_overflow"));
        // A ci.sh grep for the rendered `_overflow` series normalizes
        // back to the registered histogram name.
        let ci = "grep -q 'serve_frame_decode_us_overflow{' out\n";
        let got = check(&[("a.rs", src)], Some(ci));
        assert_eq!(got.len(), 1, "{got:?}"); // still only the gauge finding
        let ci = "grep -q 'ghost_us_overflow{' out\n";
        let got = check(&[("a.rs", src)], Some(ci));
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().any(|f| f.message.contains("ghost_us")));
    }

    #[test]
    fn test_code_registrations_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests { fn f(r: &Registry) { r.counter(\"Bad\", \"x\", &[]); } }";
        assert!(check(&[("a.rs", src)], None).is_empty());
    }
}
