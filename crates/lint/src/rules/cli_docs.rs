//! `cli-flag-docs`: the CLI's parsed `--flags` and its documented
//! `--flags` must agree, in both directions. The parsed set comes from
//! the string-literal match arms of `crates/cli/src/args.rs` (the
//! hand-rolled parser dispatches on exact flag strings); the documented
//! set comes from string literals in `crates/cli/src/lib.rs` (the
//! `usage()` text) plus the README's command lines. A parsed flag no
//! document mentions is invisible to users; a documented flag the
//! parser rejects is a promise the binary breaks with "unknown option".
//!
//! README lines count as command lines when they invoke the binary:
//! `cargo run ... -- <args>` lines contribute the text after the last
//! ` -- ` separator (so cargo's own `--release` is not misread), and
//! non-cargo lines mentioning `livephase` contribute the text after it.

use super::{Rule, Workspace};
use crate::report::{Finding, Severity};

/// See the module docs.
#[derive(Debug)]
pub struct CliFlagDocs;

/// `--help` aliases the `help` subcommand in the command (not flag)
/// dispatch; it is not an option and needs no flag-table entry.
const EXEMPT: [&str; 1] = ["--help"];

/// Extracts every `--flag` occurrence from `text` with its byte offset.
/// A flag starts at `--` not preceded by `-`/alphanumeric, continues
/// with a lowercase letter, then `[-a-z0-9]*`.
fn extract_flags(text: &str) -> Vec<(String, usize)> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < b.len() {
        let boundary = i == 0 || !(b[i - 1] == b'-' || b[i - 1].is_ascii_alphanumeric());
        if boundary && b[i] == b'-' && b[i + 1] == b'-' && b[i + 2].is_ascii_lowercase() {
            let mut j = i + 2;
            while j < b.len()
                && (b[j] == b'-' || b[j].is_ascii_lowercase() || b[j].is_ascii_digit())
            {
                j += 1;
            }
            out.push((text[i..j].to_owned(), i));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Flags a README line documents, if it is a command line at all.
fn readme_line_flags(line: &str) -> Vec<String> {
    let segment = if line.contains("cargo") {
        // Only the binary's own args, after the last ` -- ` separator;
        // a cargo line without one documents nothing (its flags are
        // cargo's).
        match line.rfind(" -- ") {
            Some(at) => &line[at + 4..],
            None => return Vec::new(),
        }
    } else if let Some(at) = line.find("livephase") {
        &line[at..]
    } else {
        return Vec::new();
    };
    extract_flags(segment).into_iter().map(|(f, _)| f).collect()
}

impl Rule for CliFlagDocs {
    fn id(&self) -> &'static str {
        "cli-flag-docs"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        let Some(args_idx) = ws
            .files
            .iter()
            .position(|f| f.crate_name == "cli" && f.path.ends_with("src/args.rs"))
        else {
            return; // no CLI parser in the scan set
        };

        // Parsed flags: string-literal match-arm patterns of args.rs.
        let mut parsed: Vec<(String, u32)> = Vec::new();
        ws.asts[args_idx].walk(|item| {
            if let crate::ast::ItemKind::Fn(f) = &item.kind {
                for m in &f.matches {
                    for arm in &m.arms {
                        for pat in &arm.pat {
                            let lit = pat.trim_matches('"');
                            if pat.starts_with('"')
                                && lit.starts_with("--")
                                && lit.len() > 2
                                && !EXEMPT.contains(&lit)
                            {
                                parsed.push((lit.to_owned(), arm.span.line));
                            }
                        }
                    }
                }
            }
        });

        // Documented flags: usage() string literals + README command
        // lines, each with an anchor for the reverse direction.
        let mut documented: Vec<(String, String, u32)> = Vec::new();
        for file in ws.files {
            if file.crate_name != "cli" || !file.path.ends_with("src/lib.rs") {
                continue;
            }
            for tok in file.code_tokens() {
                if tok.kind != crate::lexer::TokenKind::Str {
                    continue;
                }
                let text = file.tok_text(tok);
                for (flag, off) in extract_flags(text) {
                    // Multi-line literal: count newlines up to the match.
                    let line = tok.line
                        + u32::try_from(text[..off].bytes().filter(|&b| b == b'\n').count())
                            .unwrap_or(0);
                    documented.push((flag, file.path.clone(), line));
                }
            }
        }
        for doc in ws.docs {
            for (i, line) in doc.text.lines().enumerate() {
                for flag in readme_line_flags(line) {
                    let lineno = u32::try_from(i + 1).unwrap_or(u32::MAX);
                    documented.push((flag, doc.path.clone(), lineno));
                }
            }
        }

        let args_path = &ws.files[args_idx].path;
        let mut reported: Vec<&str> = Vec::new();
        for (flag, line) in &parsed {
            if documented.iter().any(|(d, _, _)| d == flag) || reported.contains(&flag.as_str()) {
                continue;
            }
            reported.push(flag);
            out.push(Finding {
                rule: self.id(),
                severity: Severity::Deny,
                path: args_path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "flag `{flag}` is parsed but documented nowhere (usage() or README); \
                     users cannot discover it"
                ),
            });
        }
        let mut reported: Vec<&str> = Vec::new();
        for (flag, path, line) in &documented {
            if parsed.iter().any(|(p, _)| p == flag) || reported.contains(&flag.as_str()) {
                continue;
            }
            reported.push(flag);
            out.push(Finding {
                rule: self.id(),
                severity: Severity::Deny,
                path: path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "documents flag `{flag}` but no parser match arm accepts it; \
                     the binary would reject it as an unknown option"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{run_workspace_rule, Doc};
    use crate::source::SourceFile;

    fn cli_files(args_src: &str, usage_src: &str) -> Vec<SourceFile> {
        vec![
            SourceFile::analyze("crates/cli/src/args.rs", "cli", args_src.to_owned()),
            SourceFile::analyze("crates/cli/src/lib.rs", "cli", usage_src.to_owned()),
        ]
    }

    const ARGS: &str = "fn parse(a: &str) -> u8 {\n    match a {\n        \"--seed\" => 1,\n        \"--port\" => 2,\n        \"help\" | \"--help\" | \"-h\" => 3,\n        _ => 0,\n    }\n}\n";

    #[test]
    fn agreeing_sets_pass() {
        let usage =
            "fn usage() -> &'static str { \"  --seed <n>  the seed\\n  --port <n>  the port\\n\" }";
        let files = cli_files(ARGS, usage);
        let got = run_workspace_rule(&CliFlagDocs, &files, None, &[]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn undocumented_parsed_flag_fires_at_its_arm() {
        let usage = "fn usage() -> &'static str { \"  --seed <n>  the seed\\n\" }";
        let files = cli_files(ARGS, usage);
        let got = run_workspace_rule(&CliFlagDocs, &files, None, &[]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].path.ends_with("args.rs"));
        assert_eq!(got[0].line, 4, "the --port arm");
        assert!(got[0].message.contains("`--port`"), "{}", got[0].message);
    }

    #[test]
    fn documented_unparsed_flag_fires_at_the_doc() {
        let usage =
            "fn usage() -> &'static str { \"  --seed <n>\\n  --port <n>\\n  --turbo  gone\\n\" }";
        let files = cli_files(ARGS, usage);
        let got = run_workspace_rule(&CliFlagDocs, &files, None, &[]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].path.ends_with("lib.rs"));
        assert!(got[0].message.contains("`--turbo`"), "{}", got[0].message);
    }

    #[test]
    fn readme_counts_and_cargo_flags_are_not_misread() {
        let usage = "fn usage() -> &'static str { \"  --seed <n>  --port <n>\" }";
        let files = cli_files(ARGS, usage);
        let docs = [Doc {
            path: "README.md".to_owned(),
            text: "Build with cargo build --release first.\n\
                   cargo run -p livephase-cli --release -- serve --port 7070\n\
                   livephase-cli serve --frobnicate\n"
                .to_owned(),
        }];
        let got = run_workspace_rule(&CliFlagDocs, &files, None, &docs);
        assert_eq!(got.len(), 1, "--release must not be misread: {got:?}");
        assert_eq!(got[0].path, "README.md");
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("`--frobnicate`"));
    }

    #[test]
    fn no_cli_crate_means_no_findings() {
        let f = SourceFile::analyze(
            "crates/engine/src/lib.rs",
            "engine",
            "fn f(a: &str) -> u8 { match a { \"--x\" => 1, _ => 0 } }".to_owned(),
        );
        assert!(run_workspace_rule(&CliFlagDocs, &[f], None, &[]).is_empty());
    }
}
