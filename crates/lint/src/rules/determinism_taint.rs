//! `determinism-taint`: the interprocedural upgrade of `determinism`.
//! The local rule polices nondeterminism *inside* the decision crates;
//! this one proves the hot-path roots cannot *reach* a wall-clock read,
//! `std::env` access, or hash-order iteration anywhere in the
//! workspace, including helper crates outside the decision perimeter.
//! Each violation prints the shortest call chain from the root to the
//! tainting construct.
//!
//! Suppression mirrors `panic-reachable`: a justified
//! `lint:allow(determinism-taint)` on a call-site line cuts that edge;
//! a site's existing justified `lint:allow(determinism)` (the
//! telemetry-only wall-clock exception) lifts to chain level.

use super::{determinism, Rule, Workspace};
use crate::report::Finding;
use crate::taint;

/// See the module docs.
#[derive(Debug)]
pub struct DeterminismTaint;

impl Rule for DeterminismTaint {
    fn id(&self) -> &'static str {
        "determinism-taint"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        let sources: Vec<Vec<taint::Source>> = ws
            .files
            .iter()
            .map(|f| {
                determinism::determinism_sites(f)
                    .into_iter()
                    .map(|s| taint::Source {
                        byte: s.byte,
                        line: s.line,
                        col: s.col,
                        what: s.what,
                    })
                    .collect()
            })
            .collect();
        out.extend(taint::analyze_reachable(
            self.id(),
            ws.files,
            ws.graph,
            &sources,
            &["determinism-taint"],
            &["determinism"],
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_workspace_rule;
    use crate::source::SourceFile;

    fn check(sources: &[(&str, &str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c, s)| SourceFile::analyze(*p, *c, (*s).to_owned()))
            .collect();
        run_workspace_rule(&DeterminismTaint, &files, None, &[])
    }

    #[test]
    fn wall_clock_behind_a_helper_crate_is_caught() {
        let got = check(&[
            (
                "crates/engine/src/engine.rs",
                "engine",
                "use livephase_clock::stamp;\n\
                 pub struct DecisionEngine;\n\
                 impl DecisionEngine { pub fn step(&mut self) -> u64 { stamp() } }\n",
            ),
            (
                "crates/clock/src/lib.rs",
                "clock",
                "pub fn stamp() -> u64 { Instant::now().elapsed().as_micros() as u64 }\n",
            ),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "determinism-taint");
        assert!(
            got[0].message.contains("engine::DecisionEngine::step")
                && got[0].message.contains("clock::stamp")
                && got[0].message.contains("wall-clock `Instant`"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn local_determinism_allow_lifts_and_cold_sites_stay_quiet() {
        let got = check(&[
            (
                "crates/engine/src/engine.rs",
                "engine",
                "use livephase_clock::stamp;\n\
                 pub struct DecisionEngine;\n\
                 impl DecisionEngine { pub fn step(&mut self) -> u64 { stamp() } }\n",
            ),
            (
                "crates/clock/src/lib.rs",
                "clock",
                "pub fn stamp() -> u64 { Instant::now().elapsed().as_micros() as u64 } // lint:allow(determinism): telemetry-only timestamp, never feeds a decision\n\
                 pub fn cold() -> String { std::env::var(\"HOME\").unwrap_or_default() }\n",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }
}
