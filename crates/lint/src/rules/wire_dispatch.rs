//! `wire-dispatch-exhaustive`: every declared `TAG_*` frame constant in
//! the `serve` crate must be handled by the wire decoder's dispatch
//! `match`. Declaring a tag the decoder never matches means the peer can
//! send a legal frame kind that falls into the wildcard arm — usually a
//! protocol error masquerading as "unknown frame".
//!
//! A *dispatch match* is any non-test `match` whose arm patterns name at
//! least two distinct `TAG_*` identifiers (one alone is a guard, not a
//! decoder). Tags may be handled across several dispatch matches
//! (encode and decode sides); a tag handled by none is reported at its
//! declaration site, naming the decoder match it should join.

use super::{Rule, Workspace};
use crate::ast::{Item, ItemKind};
use crate::lexer::TokenKind;
use crate::report::{Finding, Severity};
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct WireDispatchExhaustive;

/// Declared `const TAG_X: u8 = ...` names with their declaration sites,
/// non-test code only.
fn declared_tags(file: &SourceFile) -> Vec<(String, u32, u32)> {
    let toks: Vec<_> = file.code_tokens().collect();
    let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));
    let mut out = Vec::new();
    for k in 0..toks.len() {
        if file.in_test(toks[k].start) || text(k) != "const" {
            continue;
        }
        let Some(name_tok) = toks.get(k + 1) else {
            continue;
        };
        let name = file.tok_text(name_tok);
        if name_tok.kind == TokenKind::Ident
            && name.starts_with("TAG_")
            && text(k + 2) == ":"
            && text(k + 3) == "u8"
        {
            out.push((name.to_owned(), name_tok.line, name_tok.col));
        }
    }
    out
}

/// Walks items collecting, from every non-test fn body, the `TAG_*`
/// identifiers used in each match's arm patterns.
fn dispatch_matches(file: &SourceFile, items: &[Item], out: &mut Vec<(u32, Vec<String>)>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => {
                if file.in_test(item.span.start) {
                    continue;
                }
                for m in &f.matches {
                    let mut tags: Vec<String> = m
                        .arms
                        .iter()
                        .flat_map(|a| a.pat.iter())
                        .filter(|p| p.starts_with("TAG_"))
                        .cloned()
                        .collect();
                    tags.sort();
                    tags.dedup();
                    if tags.len() >= 2 {
                        out.push((m.span.line, tags));
                    }
                }
            }
            ItemKind::Impl(i) => dispatch_matches(file, &i.items, out),
            ItemKind::Mod(items) | ItemKind::Trait(items) => dispatch_matches(file, items, out),
            _ => {}
        }
    }
}

impl Rule for WireDispatchExhaustive {
    fn id(&self) -> &'static str {
        "wire-dispatch-exhaustive"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        // (file idx, match line, tags) of every dispatch match, and the
        // declared tags, across the whole serve crate: the decoder and
        // the tag table may live in different files.
        let mut decls: Vec<(usize, String, u32, u32)> = Vec::new();
        let mut dispatches: Vec<(usize, u32, Vec<String>)> = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.crate_name != "serve" {
                continue;
            }
            for (name, line, col) in declared_tags(file) {
                decls.push((fi, name, line, col));
            }
            let mut local = Vec::new();
            dispatch_matches(file, &ws.asts[fi].items, &mut local);
            for (line, tags) in local {
                dispatches.push((fi, line, tags));
            }
        }
        if dispatches.is_empty() {
            // No decoder in the scan set (single-file fixtures): the
            // uniqueness rule still covers the tag table.
            return;
        }
        // The canonical decoder: the dispatch handling the most tags.
        let canonical = dispatches
            .iter()
            .max_by_key(|(_, _, tags)| tags.len())
            .map(|&(fi, line, _)| format!("{}:{}", ws.files[fi].path, line))
            .unwrap_or_default();
        for (fi, name, line, col) in decls {
            let handled = dispatches
                .iter()
                .any(|(_, _, tags)| tags.iter().any(|t| t == &name));
            if !handled {
                out.push(Finding {
                    rule: self.id(),
                    severity: Severity::Deny,
                    path: ws.files[fi].path.clone(),
                    line,
                    col,
                    message: format!(
                        "wire tag `{name}` is declared but no dispatch `match` handles it \
                         (decoder at {canonical}); frames with this tag fall into the \
                         wildcard arm"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_workspace_rule;

    fn check(src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze("crates/serve/src/wire.rs", "serve", src.to_owned());
        run_workspace_rule(&WireDispatchExhaustive, &[f], None, &[])
    }

    const DECODER: &str = "fn dispatch(tag: u8) -> u8 {\n    match tag {\n        TAG_HELLO => 1,\n        TAG_SAMPLE => 2,\n        _ => 0,\n    }\n}\n";

    #[test]
    fn handled_tags_pass() {
        let src = format!("const TAG_HELLO: u8 = 1;\nconst TAG_SAMPLE: u8 = 2;\n{DECODER}");
        assert!(check(&src).is_empty());
    }

    #[test]
    fn unhandled_tag_fires_at_its_declaration() {
        let src =
            format!("const TAG_HELLO: u8 = 1;\nconst TAG_SAMPLE: u8 = 2;\nconst TAG_BYE: u8 = 3;\n{DECODER}");
        let got = check(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("TAG_BYE"), "{}", got[0].message);
        assert!(
            got[0].message.contains("crates/serve/src/wire.rs:"),
            "names the decoder: {}",
            got[0].message
        );
    }

    #[test]
    fn single_tag_matches_are_not_dispatches() {
        // A guard match on one tag plus an orphan tag: without a real
        // (>= 2 tags) dispatch there is nothing to be exhaustive about.
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\nfn f(t: u8) -> bool { match t { TAG_A => true, _ => false } }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn tags_may_be_split_across_encode_and_decode_matches() {
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\nconst TAG_C: u8 = 3;\n\
             fn dec(t: u8) -> u8 { match t { TAG_A => 1, TAG_B => 2, _ => 0 } }\n\
             fn enc(t: u8) -> u8 { match t { TAG_B => 2, TAG_C => 3, _ => 0 } }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_code_and_other_crates_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    const TAG_X: u8 = 9;\n    fn f(t: u8) -> u8 { match t { TAG_X => 1, TAG_Y => 2, _ => 0 } }\n}";
        assert!(check(src).is_empty());
        let f = SourceFile::analyze(
            "crates/engine/src/lib.rs",
            "engine",
            "const TAG_A: u8 = 1;\nfn f(t: u8) -> u8 { match t { TAG_A => 1, TAG_B => 2, _ => 0 } }".to_owned(),
        );
        assert!(run_workspace_rule(&WireDispatchExhaustive, &[f], None, &[]).is_empty());
    }
}
