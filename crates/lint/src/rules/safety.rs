//! `safety-comment`: every `unsafe` keyword — block, fn, impl, or trait
//! — must be preceded (within three lines, or trailed on the same line)
//! by a comment containing `SAFETY:` stating why the invariants hold.
//! Applies to the whole workspace, test code included: an unsound test
//! is still unsound.
//!
//! The rule also pins the workspace's unsafe-island scoping: `unsafe`
//! is sanctioned only in the files listed in [`UNSAFE_ISLANDS`] (today,
//! the serve crate's raw epoll/fcntl syscall layer — every other crate
//! carries `forbid(unsafe_code)` or `deny(unsafe_code)`). An `unsafe`
//! anywhere else is a finding even when impeccably documented: grow the
//! allowlist deliberately, in this file, or keep the code safe.

use super::{finding_at, Rule};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// The only files sanctioned to contain `unsafe` code, by
/// workspace-relative path. Each island is expected to justify every
/// site with a `// SAFETY:` comment and keep the unsafety behind a safe
/// public API.
pub const UNSAFE_ISLANDS: [&str; 1] = ["crates/serve/src/reactor.rs"];

/// See the module docs.
#[derive(Debug)]
pub struct SafetyComment;

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        "safety-comment"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let island = UNSAFE_ISLANDS.contains(&file.path.as_str());
        for t in file.code_tokens() {
            if t.kind != TokenKind::Ident || file.tok_text(t) != "unsafe" {
                continue;
            }
            if file.in_attr(t.start) {
                continue; // e.g. `#[forbid(unsafe_code)]` paths never match, but stay safe
            }
            if !island {
                out.push(finding_at(
                    self.id(),
                    self.severity(),
                    file,
                    t,
                    "`unsafe` outside the sanctioned island(s); keep raw \
                     syscalls behind the existing island or extend \
                     UNSAFE_ISLANDS deliberately"
                        .to_owned(),
                ));
                continue;
            }
            // A `SAFETY:` comment opens a window: three lines past the
            // end of its contiguous comment block (so a multi-line
            // justification does not push its own `unsafe` out of
            // range), or trailing on the same line.
            let documented = file.tokens.iter().enumerate().any(|(i, c)| {
                if !c.kind.is_comment() || !file.tok_text(c).contains("SAFETY:") {
                    return false;
                }
                if c.line == t.line && c.start > t.start {
                    return true; // trailing justification
                }
                let mut end = c.line + file.tok_text(c).matches('\n').count() as u32;
                for cont in file.tokens.iter().skip(i + 1) {
                    if cont.kind.is_comment() && cont.line == end + 1 {
                        end = cont.line;
                    } else if cont.line > end {
                        break;
                    }
                }
                end <= t.line && end + 3 > t.line && c.start < t.start
            });
            if !documented {
                out.push(finding_at(
                    self.id(),
                    self.severity(),
                    file,
                    t,
                    "`unsafe` without a preceding `// SAFETY:` comment naming the \
                     invariants that make it sound"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze(path, "serve", src.to_owned());
        let mut out = Vec::new();
        SafetyComment.check_file(&f, &mut out);
        out
    }

    fn check(src: &str) -> Vec<Finding> {
        check_at("crates/serve/src/reactor.rs", src)
    }

    #[test]
    fn undocumented_unsafe_fires() {
        let got = check("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn safety_comment_satisfies() {
        assert!(
            check("// SAFETY: the pointer is non-null by construction\nunsafe { g() }").is_empty()
        );
        assert!(check("unsafe { g() } // SAFETY: g has no preconditions").is_empty());
        assert!(check("/* SAFETY: checked above */\nunsafe fn f() {}").is_empty());
    }

    #[test]
    fn stale_comment_too_far_above_does_not_satisfy() {
        let src = "// SAFETY: old\n\n\n\nunsafe { g() }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn multi_line_safety_block_extends_the_window() {
        // The `SAFETY:` opener is 3 lines above, but its continuation
        // lines carry the window down to the `unsafe`.
        let src = "// SAFETY: the descriptor was just created\n\
                   // and is owned exclusively here;\n\
                   // nothing closes it twice.\n\
                   unsafe { g() }";
        assert!(check(src).is_empty());
        // Non-comment code between the block and the site still breaks it.
        let src =
            "// SAFETY: stale\n// continuation\nlet x = 1;\nlet y = 2;\nlet z = 3;\nunsafe { g() }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn the_word_in_a_string_does_not_count() {
        let src = "let s = \"SAFETY:\";\nunsafe { g() }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn unsafe_outside_the_island_fires_even_when_documented() {
        let src = "// SAFETY: impeccably argued\nunsafe { g() }";
        let got = check_at("crates/engine/src/lib.rs", src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("outside the sanctioned island"));
    }

    #[test]
    fn the_island_allowlist_names_real_files() {
        for path in UNSAFE_ISLANDS {
            assert!(
                path.starts_with("crates/") && path.ends_with(".rs"),
                "island path {path:?} must be a workspace-relative .rs file"
            );
        }
    }
}
