//! `safety-comment`: every `unsafe` keyword — block, fn, impl, or trait
//! — must be preceded (within three lines, or trailed on the same line)
//! by a comment containing `SAFETY:` stating why the invariants hold.
//! Applies to the whole workspace, test code included: an unsound test
//! is still unsound. The workspace currently carries `forbid(unsafe_code)`
//! everywhere, so this rule guards the first future `unsafe` rather than
//! existing sites.

use super::{finding_at, Rule};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct SafetyComment;

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        "safety-comment"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for t in file.code_tokens() {
            if t.kind != TokenKind::Ident || file.tok_text(t) != "unsafe" {
                continue;
            }
            if file.in_attr(t.start) {
                continue; // e.g. `#[forbid(unsafe_code)]` paths never match, but stay safe
            }
            let documented = file.tokens.iter().any(|c| {
                c.kind.is_comment()
                    && file.tok_text(c).contains("SAFETY:")
                    && ((c.line <= t.line && c.line + 3 > t.line && c.start < t.start)
                        || (c.line == t.line && c.start > t.start))
            });
            if !documented {
                out.push(finding_at(
                    self.id(),
                    self.severity(),
                    file,
                    t,
                    "`unsafe` without a preceding `// SAFETY:` comment naming the \
                     invariants that make it sound"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze("x.rs", "telemetry", src.to_owned());
        let mut out = Vec::new();
        SafetyComment.check_file(&f, &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_fires() {
        let got = check("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn safety_comment_satisfies() {
        assert!(
            check("// SAFETY: the pointer is non-null by construction\nunsafe { g() }").is_empty()
        );
        assert!(check("unsafe { g() } // SAFETY: g has no preconditions").is_empty());
        assert!(check("/* SAFETY: checked above */\nunsafe fn f() {}").is_empty());
    }

    #[test]
    fn stale_comment_too_far_above_does_not_satisfy() {
        let src = "// SAFETY: old\n\n\n\nunsafe { g() }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn the_word_in_a_string_does_not_count() {
        let src = "let s = \"SAFETY:\";\nunsafe { g() }";
        assert_eq!(check(src).len(), 1);
    }
}
