//! `no-panic-path`: the per-sample decision path must not be able to
//! panic. In the non-test code of decision-path crates this forbids
//! `.unwrap()`, `.expect(...)`, the `panic!`/`todo!`/`unimplemented!`
//! macros, and slice/array indexing with `[...]` (which hides a bounds
//! panic). `unreachable!` stays legal: the workspace idiom for
//! construction-time impossibilities (validated static configuration)
//! is an explicit `unreachable!` with the invariant named, and those
//! sites run before any sample is in flight.

use super::{finding_at, Rule, DECISION_CRATES, KEYWORDS_BEFORE_BRACKET};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct NoPanicPath;

const METHODS: [&str; 2] = ["unwrap", "expect"];
const MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// One panicky construct in non-test code, crate-agnostic. The local
/// `no-panic-path` rule reports these inside the decision crates; the
/// interprocedural `panic-reachable` rule reports the ones any hot-path
/// root can reach, whatever crate they live in.
pub(crate) struct PanicSite {
    /// Byte offset of the construct (for enclosing-fn attribution).
    pub byte: usize,
    /// 1-based location.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human name of the construct: `` `.unwrap()` ``, `` `panic!` ``,
    /// `` indexing `[...]` ``.
    pub what: String,
}

/// Scans one file for panicky constructs in non-test, non-attr code.
pub(crate) fn panic_sites(file: &SourceFile) -> Vec<PanicSite> {
    let toks: Vec<_> = file.code_tokens().collect();
    let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = toks[k];
        if file.in_test(t.start) || file.in_attr(t.start) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if text(k) == "."
            && METHODS.contains(&text(k + 1))
            && text(k + 2) == "("
            && !file.in_test(toks[k + 1].start)
        {
            let site = toks[k + 1];
            out.push(PanicSite {
                byte: site.start,
                line: site.line,
                col: site.col,
                what: format!("`.{}()`", text(k + 1)),
            });
        }
        // `panic!` / `todo!` / `unimplemented!`
        if t.kind == TokenKind::Ident && MACROS.contains(&text(k)) && text(k + 1) == "!" {
            out.push(PanicSite {
                byte: t.start,
                line: t.line,
                col: t.col,
                what: format!("`{}!`", text(k)),
            });
        }
        // Index expressions: `expr[...]`. A `[` is an index when the
        // previous code token can end an expression (identifier that
        // is not a keyword, `)`, `]`, or `?`) and is not the tail of
        // an attribute.
        if text(k) == "[" && k > 0 {
            let prev = toks[k - 1];
            if file.in_attr(prev.start) {
                continue;
            }
            let prev_text = file.tok_text(prev);
            let indexes = match prev.kind {
                TokenKind::Ident => !KEYWORDS_BEFORE_BRACKET.contains(&prev_text),
                TokenKind::Punct => matches!(prev_text, ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                out.push(PanicSite {
                    byte: t.start,
                    line: t.line,
                    col: t.col,
                    what: "indexing `[...]`".to_owned(),
                });
            }
        }
    }
    out
}

impl Rule for NoPanicPath {
    fn id(&self) -> &'static str {
        "no-panic-path"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DECISION_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for site in panic_sites(file) {
            let at = crate::lexer::Token {
                kind: TokenKind::Ident,
                start: site.byte,
                end: site.byte,
                line: site.line,
                col: site.col,
            };
            let message = if site.what.starts_with("indexing") {
                "indexing with `[...]` hides a bounds panic; use `.get()` \
                 or justify the bound with lint:allow"
                    .to_owned()
            } else if site.what.ends_with("()`") {
                format!(
                    "{} can panic on the decision path; return a typed error, \
                     restructure, or justify with lint:allow",
                    site.what
                )
            } else {
                format!("{} is forbidden in decision-path crates", site.what)
            };
            out.push(finding_at(self.id(), self.severity(), file, &at, message));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze("x.rs", crate_name, src.to_owned());
        let mut out = Vec::new();
        NoPanicPath.check_file(&f, &mut out);
        out
    }

    #[test]
    fn flags_the_forbidden_constructs() {
        let src = "fn f(v: Vec<u8>) {\n    v.unwrap();\n    v.expect(\"x\");\n    panic!(\"no\");\n    todo!();\n    unimplemented!();\n    let _ = v[0];\n}";
        let rules: Vec<u32> = check("core", src).iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn out_of_scope_crates_and_test_code_are_exempt() {
        let src = "fn f(v: Vec<u8>) { v.unwrap(); }";
        assert!(check("workloads", src).is_empty());
        let src = "#[cfg(test)]\nmod tests { fn f(v: Vec<u8>) { v.unwrap(); let _ = v[0]; } }";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn non_index_brackets_do_not_fire() {
        let src = "#[derive(Debug)]\n#[repr(u8)]\nstruct S;\nfn f() {\n    let a: [u8; 2] = [0, 1];\n    let v = vec![1];\n    let [x, y] = a;\n    let s: &[u8] = &a;\n    let _ = (x, y, v, s);\n}";
        let got = check("core", src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn index_after_call_or_question_mark_fires() {
        let src = "fn f() { g()[0]; h?[1]; m[0][1]; }";
        assert_eq!(check("core", src).len(), 4, "g()[0], h?[1], m[0], [1]");
    }

    #[test]
    fn unreachable_is_legal() {
        assert!(check(
            "core",
            "fn f() { unreachable!(\"static config is valid\") }"
        )
        .is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// v.unwrap() in a comment\nfn f() { let s = \"v.unwrap()\"; let _ = s; }";
        assert!(check("core", src).is_empty());
    }
}
