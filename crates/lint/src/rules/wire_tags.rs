//! `wire-tag-uniqueness`: the serve wire protocol dispatches frames on a
//! one-byte tag, so two `TAG_*` constants sharing a value would make one
//! frame kind silently shadow another. Scans non-test code of the
//! `serve` crate for `const TAG_<X>: u8 = <n>;` items and reports any
//! value collision at the later declaration site.

use super::{finding_at, Rule};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// See the module docs.
#[derive(Debug)]
pub struct WireTagUniqueness;

fn parse_u8(text: &str) -> Option<u8> {
    // Tags are small decimal or hex literals; underscores are legal.
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        u8::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

impl Rule for WireTagUniqueness {
    fn id(&self) -> &'static str {
        "wire-tag-uniqueness"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name != "serve" {
            return;
        }
        let toks: Vec<_> = file.code_tokens().collect();
        let text = |k: usize| toks.get(k).map_or("", |t| file.tok_text(t));
        // (value, name, line) of each tag constant seen so far in this file.
        let mut seen: Vec<(u8, String, u32)> = Vec::new();
        for k in 0..toks.len() {
            if file.in_test(toks[k].start) || text(k) != "const" {
                continue;
            }
            let Some(name_tok) = toks.get(k + 1) else {
                continue;
            };
            let name = file.tok_text(name_tok);
            if name_tok.kind != TokenKind::Ident || !name.starts_with("TAG_") {
                continue;
            }
            if text(k + 2) != ":" || text(k + 3) != "u8" || text(k + 4) != "=" {
                continue;
            }
            let Some(val_tok) = toks.get(k + 5).filter(|t| t.kind == TokenKind::Num) else {
                continue;
            };
            let Some(value) = parse_u8(file.tok_text(val_tok)) else {
                continue;
            };
            if let Some((_, other, line)) = seen.iter().find(|(v, _, _)| *v == value) {
                out.push(finding_at(
                    self.id(),
                    self.severity(),
                    file,
                    name_tok,
                    format!(
                        "wire tag `{name}` = {value} collides with `{other}` (line {line}); \
                         one frame kind would shadow the other at dispatch"
                    ),
                ));
            } else {
                seen.push((value, name.to_owned(), name_tok.line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(crate_name: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::analyze("wire.rs", crate_name, src.to_owned());
        let mut out = Vec::new();
        WireTagUniqueness.check_file(&f, &mut out);
        out
    }

    #[test]
    fn unique_tags_pass() {
        let src = "const TAG_HELLO: u8 = 1;\nconst TAG_SAMPLE: u8 = 2;\nconst TAG_ERR: u8 = 0xff;";
        assert!(check("serve", src).is_empty());
    }

    #[test]
    fn duplicate_values_fire_at_the_later_site() {
        let src = "const TAG_A: u8 = 3;\nconst TAG_B: u8 = 0x03;";
        let got = check("serve", src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
        assert!(got[0].message.contains("TAG_A"));
    }

    #[test]
    fn non_tag_consts_and_other_crates_are_ignored() {
        let src = "const MAX: u8 = 3;\nconst LIMIT: u8 = 3;";
        assert!(check("serve", src).is_empty());
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 1;";
        assert!(check("engine", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    const TAG_X: u8 = 9;\n    const TAG_Y: u8 = 9;\n}";
        assert!(check("serve", src).is_empty());
    }
}
