//! `panic-reachable`: the interprocedural upgrade of `no-panic-path`.
//! Instead of asking "is this construct in a decision crate?", it asks
//! the question the fleet actually cares about: *can the deployed hot
//! paths reach a panic?* Sources are the same panicky constructs
//! (`unwrap`/`expect`/`panic!`-family/indexing) in any crate's non-test
//! code; reachability runs over the workspace call graph from
//! [`crate::taint::HOT_PATH_ROOTS`]; each violation prints the full
//! shortest call chain from the root to the site.
//!
//! Suppression: a justified `lint:allow(panic-reachable)` on the call
//! site cuts that edge; on the source line it exempts the site (via the
//! ordinary suppression pass); and a site's existing justified
//! `lint:allow(no-panic-path)` lifts to chain level so PR 5's triage is
//! not re-litigated.

use super::{panic_path, Rule, Workspace};
use crate::report::Finding;
use crate::taint;

/// See the module docs.
#[derive(Debug)]
pub struct PanicReachable;

impl Rule for PanicReachable {
    fn id(&self) -> &'static str {
        "panic-reachable"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Finding>) {
        if ws.strict_roots {
            out.extend(taint::missing_root_findings(
                self.id(),
                ws.graph,
                ws.files,
                taint::HOT_PATH_ROOTS,
            ));
        }
        let sources: Vec<Vec<taint::Source>> = ws
            .files
            .iter()
            .map(|f| {
                panic_path::panic_sites(f)
                    .into_iter()
                    .map(|s| taint::Source {
                        byte: s.byte,
                        line: s.line,
                        col: s.col,
                        what: s.what,
                    })
                    .collect()
            })
            .collect();
        out.extend(taint::analyze_reachable(
            self.id(),
            ws.files,
            ws.graph,
            &sources,
            &["panic-reachable"],
            &["no-panic-path"],
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_workspace_rule;
    use crate::source::SourceFile;

    fn check(sources: &[(&str, &str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, c, s)| SourceFile::analyze(*p, *c, (*s).to_owned()))
            .collect();
        run_workspace_rule(&PanicReachable, &files, None, &[])
    }

    // A minimal tenants crate: both roots present so the missing-root
    // guard stays quiet even in strict mode.
    const TENANTS_ROOTS: &str = "pub struct Arbiter;\n\
         impl Arbiter { pub fn arbitrate(&mut self, r: u32) -> u32 { helper(r) } }\n\
         pub fn step_decision(x: u32) -> u32 { x }\n";

    #[test]
    fn reachable_panic_reports_the_full_chain() {
        let got = check(&[(
            "crates/tenants/src/cluster.rs",
            "tenants",
            &format!("{TENANTS_ROOTS}fn helper(r: u32) -> u32 {{ deep(r) }}\nfn deep(r: u32) -> u32 {{ VALUES[r as usize] }}\nconst VALUES: [u32; 4] = [0, 1, 2, 3];\n"),
        )]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = &got[0];
        assert_eq!(f.rule, "panic-reachable");
        assert!(
            f.message.contains("tenants::Arbiter::arbitrate")
                && f.message.contains("tenants::helper")
                && f.message.contains("tenants::deep"),
            "chain names every hop: {}",
            f.message
        );
        assert!(f.message.contains("indexing `[...]`"), "{}", f.message);
    }

    #[test]
    fn unreachable_panics_do_not_fire() {
        let got = check(&[(
            "crates/tenants/src/cluster.rs",
            "tenants",
            &format!("{TENANTS_ROOTS}fn cold_path(v: &[u8]) -> u8 {{ v[0] }}\n"),
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cross_crate_laundering_is_caught() {
        // A helper crate outside the decision perimeter unwraps; the
        // tenants hot path calls into it.
        let got = check(&[
            (
                "crates/tenants/src/cluster.rs",
                "tenants",
                &format!("{}\n", TENANTS_ROOTS.trim_end()),
            ),
            (
                "crates/util/src/lib.rs",
                "util",
                "pub fn helper(r: u32) -> u32 { std::env::var(\"X\").unwrap(); r }\n",
            ),
        ]);
        // The arbiter's bare `helper(r)` resolves within its own crate
        // only, so wire it explicitly via an import.
        let got2 = check(&[
            (
                "crates/tenants/src/cluster.rs",
                "tenants",
                &format!("use livephase_util::helper;\n{TENANTS_ROOTS}"),
            ),
            (
                "crates/util/src/lib.rs",
                "util",
                "pub fn helper(r: u32) -> u32 { std::env::var(\"X\").unwrap(); r }\n",
            ),
        ]);
        assert!(got.is_empty(), "bare name does not cross crates: {got:?}");
        assert_eq!(got2.len(), 1, "{got2:?}");
        assert!(got2[0].path.contains("util"), "{got2:?}");
        assert!(got2[0].message.contains("`.unwrap()`"));
    }

    #[test]
    fn call_site_allow_cuts_the_edge() {
        let got = check(&[(
            "crates/tenants/src/cluster.rs",
            "tenants",
            "pub struct Arbiter;\n\
             impl Arbiter { pub fn arbitrate(&mut self, r: u32) -> u32 { helper(r) } } // lint:allow(panic-reachable): helper's panic is a cold startup path\n\
             pub fn step_decision(x: u32) -> u32 { x }\n\
             fn helper(r: u32) -> u32 { panic!(\"boom\") }\n",
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn local_no_panic_path_allow_lifts_to_chain_level() {
        let got = check(&[(
            "crates/tenants/src/cluster.rs",
            "tenants",
            &format!(
                "{TENANTS_ROOTS}fn helper(r: u32) -> u32 {{ TABLE[(r % 4) as usize] }} // lint:allow(no-panic-path): index is r % 4, always in bounds\nconst TABLE: [u32; 4] = [0, 1, 2, 3];\n"
            ),
        )]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn strict_mode_reports_renamed_roots() {
        let files = vec![SourceFile::analyze(
            "crates/engine/src/engine.rs",
            "engine",
            "pub struct DecisionEngine;\nimpl DecisionEngine { pub fn stepp(&mut self) {} }"
                .to_owned(),
        )];
        let asts: Vec<crate::ast::Ast> = files.iter().map(crate::parser::parse).collect();
        let graph = crate::callgraph::CallGraph::build(&files, &asts);
        let ws = Workspace {
            files: &files,
            asts: &asts,
            graph: &graph,
            ci_script: None,
            docs: &[],
            strict_roots: true,
        };
        let mut out = Vec::new();
        PanicReachable.check_workspace(&ws, &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("engine::step`")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("engine::step_many`")),
            "{msgs:?}"
        );
        assert_eq!(out.len(), 2, "only the engine roots are checked here");
    }
}
