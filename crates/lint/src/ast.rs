//! The item-level AST the parser produces and the rules consume.
//!
//! This is deliberately *not* a full Rust AST: the interprocedural
//! analyses need item boundaries, function facts (name, arity, body
//! extent), the call sites and `match` expressions inside each body,
//! and `use` declarations for path resolution — nothing below
//! expression granularity. Everything carries a [`Span`] back into the
//! source so findings stay clickable, and every node is a plain value
//! (`PartialEq`, no interning) so golden dumps and property tests can
//! compare whole trees.

/// A source extent: byte offsets plus the 1-based line/column of its
/// first token, as produced by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

/// One parsed file: a tree of items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (possibly nested inside a `mod`, `impl`, or `trait`).
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// The item's name (`""` for anonymous items such as foreign
    /// blocks or trait impls of unnamed kinds).
    pub name: String,
    /// Extent of the whole item, attributes excluded.
    pub span: Span,
    /// What the item is, with kind-specific facts.
    pub kind: ItemKind,
}

/// Item classification at the granularity the rules need.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// `fn name(...) { ... }` (or a bodyless trait method).
    Fn(FnDef),
    /// `impl Type { ... }` / `impl Trait for Type { ... }`.
    Impl(ImplDef),
    /// `mod name { ... }` (items) or `mod name;` (empty).
    Mod(Vec<Item>),
    /// `trait Name { ... }` with its default methods.
    Trait(Vec<Item>),
    /// `use path::{...};` with the names it brings into scope.
    Use(UseDef),
    /// An item-position macro invocation, `name! { ... }`.
    MacroCall,
    /// `macro_rules! name { ... }`.
    MacroDef,
    /// `const NAME: T = ...;`
    Const,
    /// `static NAME: T = ...;`
    Static,
    /// `struct` / `enum` / `union` definition.
    Type,
    /// `type Alias = ...;`
    TypeAlias,
    /// Anything else the parser recognized enough to skip soundly
    /// (`extern` blocks, `extern crate`, stray tokens).
    Other,
}

/// Facts about one `fn`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnDef {
    /// Parameter count, `self` excluded.
    pub params: usize,
    /// Whether the first parameter is (any flavor of) `self`.
    pub has_self: bool,
    /// Extent of the `{ ... }` body; `None` for bodyless trait methods.
    pub body: Option<Span>,
    /// Call sites inside the body, in source order (macro arguments
    /// included — conservative for reachability).
    pub calls: Vec<CallSite>,
    /// Macro invocations inside the body, `(name, span)`.
    pub macros: Vec<(String, Span)>,
    /// `match` expressions inside the body, outermost first.
    pub matches: Vec<MatchExpr>,
}

/// Facts about one `impl` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplDef {
    /// Last path segment of the implemented-on type (`DecisionEngine`
    /// for `impl<'a> foo::DecisionEngine<'a>`).
    pub self_ty: String,
    /// Last path segment of the trait, for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// The associated items.
    pub items: Vec<Item>,
}

/// Facts about one `use` declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UseDef {
    /// `(name-in-scope, full path segments)` per leaf; a glob import
    /// records the name `*`.
    pub leaves: Vec<(String, Vec<String>)>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Path segments of the callee: `["f"]` for `f(x)`,
    /// `["wire", "encode_into"]` for `wire::encode_into(x)`, and the
    /// bare method name for `.m(x)`.
    pub path: Vec<String>,
    /// Whether this is a `.method(...)` call.
    pub method: bool,
    /// Argument count (commas at depth 0 of the argument list;
    /// receiver excluded for method calls).
    pub args: usize,
    /// Whether the argument list contains a `|` (a closure or
    /// or-pattern makes the `args` count unreliable).
    pub opaque_args: bool,
    /// Location of the callee name.
    pub span: Span,
}

impl CallSite {
    /// The callee as written, `a::b` or `.m`.
    #[must_use]
    pub fn display(&self) -> String {
        if self.method {
            format!(".{}", self.path.join("::"))
        } else {
            self.path.join("::")
        }
    }
}

/// One `match` expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchExpr {
    /// Extent from the `match` keyword to the closing brace.
    pub span: Span,
    /// The arms, in source order.
    pub arms: Vec<MatchArm>,
}

/// One match arm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchArm {
    /// Location of the arm's first pattern token.
    pub span: Span,
    /// The pattern's token texts (guard included), in order.
    pub pat: Vec<String>,
}

impl Ast {
    /// Depth-first walk over every item, parents before children.
    pub fn walk(&self, mut visit: impl FnMut(&Item)) {
        fn go(items: &[Item], visit: &mut impl FnMut(&Item)) {
            for item in items {
                visit(item);
                match &item.kind {
                    ItemKind::Impl(i) => go(&i.items, visit),
                    ItemKind::Mod(items) | ItemKind::Trait(items) => go(items, visit),
                    _ => {}
                }
            }
        }
        go(&self.items, &mut visit);
    }

    /// Total item count, nested items included. Deterministic for a
    /// given input (pinned by the parser property tests).
    #[must_use]
    pub fn item_count(&self) -> usize {
        let mut n = 0usize;
        self.walk(|_| n += 1);
        n
    }

    /// A stable, human-diffable dump of the tree — the golden-test
    /// format. One line per item; function lines carry arity, body
    /// presence, and the resolved call list so a parser regression
    /// shows up as a one-line diff.
    #[must_use]
    pub fn render(&self) -> String {
        fn go(items: &[Item], depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let pad = "  ".repeat(depth);
            for item in items {
                match &item.kind {
                    ItemKind::Fn(f) => {
                        let _ = write!(
                            out,
                            "{pad}fn {}/{}{} [L{}]",
                            item.name,
                            f.params,
                            if f.has_self { " self" } else { "" },
                            item.span.line
                        );
                        if f.body.is_none() {
                            out.push_str(" no-body");
                        }
                        if !f.calls.is_empty() {
                            let calls: Vec<String> =
                                f.calls.iter().map(CallSite::display).collect();
                            let _ = write!(out, " calls=[{}]", calls.join(", "));
                        }
                        if !f.macros.is_empty() {
                            let macros: Vec<&str> =
                                f.macros.iter().map(|(n, _)| n.as_str()).collect();
                            let _ = write!(out, " macros=[{}]", macros.join(", "));
                        }
                        if !f.matches.is_empty() {
                            let arms: Vec<String> =
                                f.matches.iter().map(|m| m.arms.len().to_string()).collect();
                            let _ = write!(out, " match-arms=[{}]", arms.join(", "));
                        }
                        out.push('\n');
                    }
                    ItemKind::Impl(i) => {
                        let _ = match &i.trait_name {
                            Some(t) => {
                                writeln!(
                                    out,
                                    "{pad}impl {} for {} [L{}]",
                                    t, i.self_ty, item.span.line
                                )
                            }
                            None => writeln!(out, "{pad}impl {} [L{}]", i.self_ty, item.span.line),
                        };
                        go(&i.items, depth + 1, out);
                    }
                    ItemKind::Mod(items) => {
                        let _ = writeln!(out, "{pad}mod {} [L{}]", item.name, item.span.line);
                        go(items, depth + 1, out);
                    }
                    ItemKind::Trait(items) => {
                        let _ = writeln!(out, "{pad}trait {} [L{}]", item.name, item.span.line);
                        go(items, depth + 1, out);
                    }
                    ItemKind::Use(u) => {
                        let leaves: Vec<String> = u
                            .leaves
                            .iter()
                            .map(|(name, path)| {
                                let joined = path.join("::");
                                if *name == path.last().cloned().unwrap_or_default() {
                                    joined
                                } else {
                                    format!("{joined} as {name}")
                                }
                            })
                            .collect();
                        let _ = writeln!(
                            out,
                            "{pad}use [{}] [L{}]",
                            leaves.join(", "),
                            item.span.line
                        );
                    }
                    ItemKind::MacroCall => {
                        let _ =
                            writeln!(out, "{pad}macro-call {}! [L{}]", item.name, item.span.line);
                    }
                    ItemKind::MacroDef => {
                        let _ =
                            writeln!(out, "{pad}macro-def {}! [L{}]", item.name, item.span.line);
                    }
                    ItemKind::Const => {
                        let _ = writeln!(out, "{pad}const {} [L{}]", item.name, item.span.line);
                    }
                    ItemKind::Static => {
                        let _ = writeln!(out, "{pad}static {} [L{}]", item.name, item.span.line);
                    }
                    ItemKind::Type => {
                        let _ = writeln!(out, "{pad}type {} [L{}]", item.name, item.span.line);
                    }
                    ItemKind::TypeAlias => {
                        let _ =
                            writeln!(out, "{pad}type-alias {} [L{}]", item.name, item.span.line);
                    }
                    ItemKind::Other => {
                        let _ = writeln!(out, "{pad}other {} [L{}]", item.name, item.span.line);
                    }
                }
            }
        }
        let mut out = String::new();
        go(&self.items, 0, &mut out);
        out
    }
}
