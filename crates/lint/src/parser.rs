//! A recursive-descent item parser over the lexer's token stream.
//!
//! The contract mirrors the lexer's: arbitrary input must never panic
//! or hang (every loop provably makes progress, nesting depth is
//! bounded), spans always point back into the real source, and parsing
//! is deterministic. Fidelity is bounded by what the interprocedural
//! rules consume — items, function facts, call sites, `match` arms,
//! `use` leaves — so expression structure beyond calls/matches is
//! deliberately skipped token-wise. Two Rust-grammar subtleties the
//! rules depend on are handled properly: `->` inside generics must not
//! close an angle-bracket balance, and turbofish (`::<T>`) must not
//! hide a call site.

use crate::ast::{
    Ast, CallSite, FnDef, ImplDef, Item, ItemKind, MatchArm, MatchExpr, Span, UseDef,
};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Rust keywords: excluded as call names and item names.
const KEYWORDS: [&str; 40] = [
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Item nesting deeper than this is skipped as [`ItemKind::Other`]
/// (arbitrary fuzz input can nest `mod a { mod a { ...` without bound;
/// real code never approaches this).
const MAX_ITEM_DEPTH: usize = 64;

/// Parses one analyzed file into its item tree.
#[must_use]
pub fn parse(file: &SourceFile) -> Ast {
    // The parser sees code tokens with attribute bodies removed: `#`,
    // `[`, `]` and everything between never reach item dispatch, so
    // `#[derive(Debug)]` cannot masquerade as an item or a call.
    let toks: Vec<&Token> = file
        .code
        .iter()
        .map(|&i| &file.tokens[i])
        .filter(|t| !file.in_attr(t.start))
        .collect();
    let mut p = Parser {
        text: &file.text,
        toks,
        pos: 0,
    };
    Ast {
        items: p.items(0, false),
    }
}

struct Parser<'a> {
    text: &'a str,
    toks: Vec<&'a Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&'a Token> {
        self.toks.get(at).copied()
    }

    fn txt(&self, at: usize) -> &'a str {
        self.tok(at).map_or("", |t| t.text(self.text))
    }

    fn kind(&self, at: usize) -> Option<TokenKind> {
        self.tok(at).map(|t| t.kind)
    }

    fn span_from(&self, start: usize) -> Span {
        let first = self.tok(start).or_else(|| self.toks.last().copied());
        let last = self
            .tok(self.pos.saturating_sub(1))
            .or_else(|| self.toks.last().copied());
        match (first, last) {
            (Some(f), Some(l)) => Span {
                start: f.start,
                end: l.end.max(f.start),
                line: f.line,
                col: f.col,
            },
            _ => Span::default(),
        }
    }

    /// Two tokens form a composite operator only when adjacent in the
    /// source (`=` `>` is `=>` only without intervening space/comment).
    fn adjacent(&self, at: usize) -> bool {
        match (self.tok(at), self.tok(at + 1)) {
            (Some(a), Some(b)) => a.end == b.start,
            _ => false,
        }
    }

    /// Parses items until end of input (or, inside a block, the closing
    /// `}`, which is consumed). Progress is guaranteed: an iteration
    /// that recognizes nothing advances one token.
    fn items(&mut self, depth: usize, in_block: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < self.toks.len() {
            if in_block && self.txt(self.pos) == "}" {
                self.pos += 1;
                return out;
            }
            let before = self.pos;
            if let Some(item) = self.item(depth) {
                out.push(item);
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        out
    }

    /// Tries to parse one item at the cursor. Returns `None` (without
    /// necessarily consuming anything) when the cursor is not at a
    /// recognizable item head.
    fn item(&mut self, depth: usize) -> Option<Item> {
        let start = self.pos;
        self.skip_qualifiers();
        let kw = self.txt(self.pos);
        if self.kind(self.pos) != Some(TokenKind::Ident) {
            self.pos = start;
            return None;
        }
        let item = match kw {
            "fn" => self.fn_item(start),
            "impl" => self.impl_item(start, depth),
            "mod" => self.mod_item(start, depth),
            "trait" => self.trait_item(start, depth),
            "use" => self.use_item(start),
            "struct" | "enum" | "union" => self.type_item(start),
            "const" | "static" => self.const_item(start, kw == "static"),
            "type" => self.alias_item(start),
            "macro_rules" => self.macro_def_item(start),
            "extern" => {
                // `extern crate x;` or a foreign block `extern "C" { .. }`
                // (qualifier skipping already ate `extern "C"` when a
                // real item follows, so reaching here means the block
                // form or `extern crate`).
                self.pos += 1;
                self.skip_to_semi_or_block();
                Some(Item {
                    name: String::new(),
                    span: self.span_from(start),
                    kind: ItemKind::Other,
                })
            }
            _ => {
                // Item-position macro invocation: `name!` + delimiter.
                if self.txt(self.pos + 1) == "!"
                    && !KEYWORDS.contains(&kw)
                    && matches!(self.txt(self.pos + 2), "(" | "[" | "{")
                {
                    let name = kw.to_owned();
                    self.pos += 2;
                    self.skip_balanced();
                    if self.txt(self.pos) == ";" {
                        self.pos += 1;
                    }
                    Some(Item {
                        name,
                        span: self.span_from(start),
                        kind: ItemKind::MacroCall,
                    })
                } else {
                    self.pos = start;
                    None
                }
            }
        };
        item
    }

    /// Skips visibility and function/impl qualifiers: `pub`,
    /// `pub(crate)`, `default`, `const`, `async`, `unsafe`, and
    /// `extern "C"` *when an item keyword follows* (so a bare foreign
    /// block still dispatches as `extern`).
    fn skip_qualifiers(&mut self) {
        loop {
            match self.txt(self.pos) {
                "pub" => {
                    self.pos += 1;
                    if self.txt(self.pos) == "(" {
                        self.skip_balanced();
                    }
                }
                "default" | "async" | "unsafe" => self.pos += 1,
                "const" if self.txt(self.pos + 1) == "fn" => self.pos += 1,
                "extern"
                    if self.kind(self.pos + 1) == Some(TokenKind::Str)
                        && self.txt(self.pos + 2) == "fn" =>
                {
                    self.pos += 2;
                }
                _ => return,
            }
        }
    }

    fn fn_item(&mut self, start: usize) -> Option<Item> {
        self.pos += 1; // `fn`
        if self.kind(self.pos) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.txt(self.pos).to_owned();
        self.pos += 1;
        if self.txt(self.pos) == "<" {
            self.skip_angles();
        }
        let mut def = FnDef::default();
        if self.txt(self.pos) == "(" {
            let (params, has_self) = self.fn_params();
            def.params = params;
            def.has_self = has_self;
        }
        // Return type and where clause: skip to the body `{` or a `;`.
        loop {
            match self.txt(self.pos) {
                "" | ";" => {
                    if self.txt(self.pos) == ";" {
                        self.pos += 1;
                    }
                    break;
                }
                "{" => {
                    let body_start = self.pos;
                    self.skip_balanced();
                    let body = self.body_span(body_start);
                    self.scan_body(body_start, &mut def);
                    def.body = Some(body);
                    break;
                }
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ => self.pos += 1,
            }
        }
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::Fn(def),
        })
    }

    /// At `(`: counts parameters and detects `self`. Commas inside
    /// nested delimiters or generics do not count.
    fn fn_params(&mut self) -> (usize, bool) {
        let close = self.matching_close(self.pos);
        let mut i = self.pos + 1;
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut commas = 0usize;
        let mut any = false;
        let mut has_self = false;
        while i < close {
            let t = self.txt(i);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" => angle += 1,
                ">" => {
                    let arrow = i > 0 && self.txt(i - 1) == "-" && self.adjacent(i - 1);
                    if !arrow && angle > 0 {
                        angle -= 1;
                    }
                }
                "," if depth == 0 && angle == 0 => {
                    commas += 1;
                    i += 1;
                    continue;
                }
                "self" if depth == 0 && angle == 0 && commas == 0 => has_self = true,
                _ => {}
            }
            if t != "," {
                any = true;
            }
            i += 1;
        }
        self.pos = close.saturating_add(1).min(self.toks.len());
        if !any {
            return (0, false);
        }
        // A trailing comma leaves an empty final segment.
        let trailing_comma = close > 0 && self.txt(close - 1) == ",";
        let segments = commas + 1 - usize::from(trailing_comma && commas > 0);
        (segments.saturating_sub(usize::from(has_self)), has_self)
    }

    fn impl_item(&mut self, start: usize, depth: usize) -> Option<Item> {
        self.pos += 1; // `impl`
        if self.txt(self.pos) == "<" {
            self.skip_angles();
        }
        // First path: the trait (if `for` follows) or the self type.
        let first = self.type_path_head();
        let (trait_name, self_ty) = if self.txt(self.pos) == "for" {
            self.pos += 1;
            let second = self.type_path_head();
            (Some(first), second)
        } else {
            (None, first)
        };
        // Where clause.
        while !matches!(self.txt(self.pos), "" | "{" | ";") {
            match self.txt(self.pos) {
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ => self.pos += 1,
            }
        }
        let items = if self.txt(self.pos) == "{" {
            self.pos += 1;
            if depth >= MAX_ITEM_DEPTH {
                self.pos -= 1;
                self.skip_balanced();
                Vec::new()
            } else {
                self.items(depth + 1, true)
            }
        } else {
            if self.txt(self.pos) == ";" {
                self.pos += 1;
            }
            Vec::new()
        };
        Some(Item {
            name: self_ty.clone(),
            span: self.span_from(start),
            kind: ItemKind::Impl(ImplDef {
                self_ty,
                trait_name: trait_name.filter(|t| !t.is_empty()),
                items,
            }),
        })
    }

    /// Reads a type path up to `for` / `where` / `{` / `;` / end,
    /// returning its last identifier (generic arguments skipped, so
    /// `foo::Bar<Baz>` yields `Bar`, and `&'a mut T` yields `T`).
    fn type_path_head(&mut self) -> String {
        let mut last = String::new();
        while self.pos < self.toks.len() {
            match self.txt(self.pos) {
                "for" | "where" | "{" | ";" | "" => break,
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                t => {
                    if self.kind(self.pos) == Some(TokenKind::Ident) && !KEYWORDS.contains(&t) {
                        last = t.to_owned();
                    }
                    self.pos += 1;
                }
            }
        }
        last
    }

    fn mod_item(&mut self, start: usize, depth: usize) -> Option<Item> {
        self.pos += 1; // `mod`
        if self.kind(self.pos) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.txt(self.pos).to_owned();
        self.pos += 1;
        let items = match self.txt(self.pos) {
            "{" => {
                self.pos += 1;
                if depth >= MAX_ITEM_DEPTH {
                    self.pos -= 1;
                    self.skip_balanced();
                    Vec::new()
                } else {
                    self.items(depth + 1, true)
                }
            }
            ";" => {
                self.pos += 1;
                Vec::new()
            }
            _ => Vec::new(),
        };
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::Mod(items),
        })
    }

    fn trait_item(&mut self, start: usize, depth: usize) -> Option<Item> {
        self.pos += 1; // `trait`
        if self.kind(self.pos) != Some(TokenKind::Ident) {
            return None;
        }
        let name = self.txt(self.pos).to_owned();
        self.pos += 1;
        // Generics, supertrait bounds, where clause.
        while !matches!(self.txt(self.pos), "" | "{" | ";") {
            match self.txt(self.pos) {
                "<" => self.skip_angles(),
                "(" | "[" => self.skip_balanced(),
                _ => self.pos += 1,
            }
        }
        let items = if self.txt(self.pos) == "{" {
            self.pos += 1;
            if depth >= MAX_ITEM_DEPTH {
                self.pos -= 1;
                self.skip_balanced();
                Vec::new()
            } else {
                self.items(depth + 1, true)
            }
        } else {
            if self.txt(self.pos) == ";" {
                self.pos += 1;
            }
            Vec::new()
        };
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::Trait(items),
        })
    }

    fn use_item(&mut self, start: usize) -> Option<Item> {
        self.pos += 1; // `use`
        let mut def = UseDef::default();
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix, &mut def, 0);
        if self.txt(self.pos) == ";" {
            self.pos += 1;
        }
        Some(Item {
            name: def
                .leaves
                .first()
                .map(|(n, _)| n.clone())
                .unwrap_or_default(),
            span: self.span_from(start),
            kind: ItemKind::Use(def),
        })
    }

    /// Parses one `use`-tree level: `a::b::{c, d as e, *}`. Stops at
    /// `;`, `,` (at this level), `}` or end of input.
    fn use_tree(&mut self, prefix: &mut Vec<String>, def: &mut UseDef, depth: usize) {
        let base_len = prefix.len();
        loop {
            let t = self.txt(self.pos);
            match t {
                "" | ";" | "," | "}" => break,
                "{" => {
                    self.pos += 1;
                    if depth >= MAX_ITEM_DEPTH {
                        self.pos -= 1;
                        self.skip_balanced();
                        break;
                    }
                    loop {
                        self.use_tree(prefix, def, depth + 1);
                        match self.txt(self.pos) {
                            "," => {
                                self.pos += 1;
                                prefix.truncate(base_len);
                            }
                            "}" => {
                                self.pos += 1;
                                break;
                            }
                            _ => break,
                        }
                    }
                    prefix.truncate(base_len);
                    return;
                }
                "*" => {
                    self.pos += 1;
                    def.leaves.push(("*".to_owned(), prefix.clone()));
                    prefix.truncate(base_len);
                    return;
                }
                "as" => {
                    self.pos += 1;
                    let alias = if self.kind(self.pos) == Some(TokenKind::Ident) {
                        let a = self.txt(self.pos).to_owned();
                        self.pos += 1;
                        a
                    } else {
                        String::new()
                    };
                    if !alias.is_empty() {
                        def.leaves.push((alias, prefix.clone()));
                    }
                    prefix.truncate(base_len);
                    return;
                }
                ":" => self.pos += 1,
                _ if self.kind(self.pos) == Some(TokenKind::Ident) => {
                    prefix.push(t.to_owned());
                    self.pos += 1;
                    // A leaf ends when no `::` or `as` follows.
                    if self.txt(self.pos) != ":" && self.txt(self.pos) != "as" {
                        def.leaves.push((t.to_owned(), prefix.clone()));
                        prefix.truncate(base_len);
                        return;
                    }
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        prefix.truncate(base_len);
    }

    fn type_item(&mut self, start: usize) -> Option<Item> {
        self.pos += 1; // `struct` / `enum` / `union`
        let name = if self.kind(self.pos) == Some(TokenKind::Ident) {
            let n = self.txt(self.pos).to_owned();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        self.skip_to_semi_or_block();
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::Type,
        })
    }

    fn const_item(&mut self, start: usize, is_static: bool) -> Option<Item> {
        self.pos += 1; // `const` / `static`
        if self.txt(self.pos) == "mut" {
            self.pos += 1;
        }
        let name = if self.kind(self.pos) == Some(TokenKind::Ident) {
            let n = self.txt(self.pos).to_owned();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        self.skip_to_semi();
        Some(Item {
            name,
            span: self.span_from(start),
            kind: if is_static {
                ItemKind::Static
            } else {
                ItemKind::Const
            },
        })
    }

    fn alias_item(&mut self, start: usize) -> Option<Item> {
        self.pos += 1; // `type`
        let name = if self.kind(self.pos) == Some(TokenKind::Ident) {
            let n = self.txt(self.pos).to_owned();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        self.skip_to_semi();
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::TypeAlias,
        })
    }

    fn macro_def_item(&mut self, start: usize) -> Option<Item> {
        self.pos += 1; // `macro_rules`
        if self.txt(self.pos) == "!" {
            self.pos += 1;
        }
        let name = if self.kind(self.pos) == Some(TokenKind::Ident) {
            let n = self.txt(self.pos).to_owned();
            self.pos += 1;
            n
        } else {
            String::new()
        };
        if matches!(self.txt(self.pos), "(" | "[" | "{") {
            self.skip_balanced();
        }
        if self.txt(self.pos) == ";" {
            self.pos += 1;
        }
        Some(Item {
            name,
            span: self.span_from(start),
            kind: ItemKind::MacroDef,
        })
    }

    // ---- low-level skipping -------------------------------------------------

    /// At any token: advances past a balanced `(...)`/`[...]`/`{...}`
    /// group (or one token if not at an opener). Never recurses.
    fn skip_balanced(&mut self) {
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            match self.txt(self.pos) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
            }
            self.pos += 1;
        }
    }

    /// Token index of the `)`/`]`/`}` matching the opener at `open`
    /// (or the last token if unbalanced).
    fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.txt(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    /// At `<`: advances past the balanced generic-argument list. `->`
    /// does not close a level (`fn(T) -> U` bounds), shifts (`>>`) are
    /// two closes, and any bracketed group inside is skipped whole. A
    /// `;` or end of input bails out (malformed input must not absorb
    /// the rest of the file).
    fn skip_angles(&mut self) {
        let mut angle = 0i32;
        while self.pos < self.toks.len() {
            match self.txt(self.pos) {
                "<" => angle += 1,
                ">" => {
                    let arrow = self.pos > 0
                        && self.txt(self.pos - 1) == "-"
                        && self.adjacent(self.pos - 1);
                    if !arrow {
                        angle -= 1;
                        if angle <= 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                }
                "(" | "[" | "{" => {
                    self.skip_balanced();
                    continue;
                }
                ";" | "" => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Advances past the item tail: to just after a `;`, or past the
    /// first balanced `{...}` (struct/enum bodies), whichever first.
    fn skip_to_semi_or_block(&mut self) {
        while self.pos < self.toks.len() {
            match self.txt(self.pos) {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                "<" => self.skip_angles(),
                _ => self.pos += 1,
            }
        }
    }

    /// Advances past the next `;` at delimiter depth 0.
    fn skip_to_semi(&mut self) {
        while self.pos < self.toks.len() {
            match self.txt(self.pos) {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "(" | "[" | "{" => self.skip_balanced(),
                "<" => self.skip_angles(),
                _ => self.pos += 1,
            }
        }
    }

    /// The span of the balanced block opening at token `open` given the
    /// cursor has already been advanced past it.
    fn body_span(&self, open: usize) -> Span {
        let first = self.tok(open);
        let last = self.tok(self.pos.saturating_sub(1));
        match (first, last) {
            (Some(f), Some(l)) => Span {
                start: f.start,
                end: l.end.max(f.start),
                line: f.line,
                col: f.col,
            },
            _ => Span::default(),
        }
    }

    // ---- body facts ---------------------------------------------------------

    /// Linear scan of a function body (tokens `open ..= close`) for
    /// call sites, macro invocations, and `match` expressions. The scan
    /// is flat: nested items, closures, and macro arguments are all
    /// visited, which over-approximates reachability — exactly the
    /// conservative direction the analyses need.
    fn scan_body(&self, open: usize, def: &mut FnDef) {
        let close = self.matching_close(open);
        let mut i = open + 1;
        while i < close {
            let t = self.txt(i);
            let kind = self.kind(i);
            if kind == Some(TokenKind::Ident) {
                if t == "match" {
                    if let Some(m) = self.parse_match(i, close) {
                        def.matches.push(m);
                    }
                    i += 1;
                    continue;
                }
                // Macro invocation: `name!` + delimiter.
                if self.txt(i + 1) == "!"
                    && !KEYWORDS.contains(&t)
                    && matches!(self.txt(i + 2), "(" | "[" | "{")
                {
                    def.macros.push((t.to_owned(), self.tok_span(i)));
                    i += 1; // args still scanned: calls inside count
                    continue;
                }
                // Path call: `seg::seg::name(...)`, possibly turbofish.
                if !KEYWORDS.contains(&t) && self.txt(i - 1) != "." && self.txt(i - 1) != "fn" {
                    let after = self.after_turbofish(i + 1);
                    if self.txt(after) == "(" && after < close {
                        let path = self.path_back(i);
                        let (args, opaque) = self.count_args(after, close);
                        def.calls.push(CallSite {
                            path,
                            method: false,
                            args,
                            opaque_args: opaque,
                            span: self.tok_span(i),
                        });
                    }
                }
            } else if t == "." && self.kind(i + 1) == Some(TokenKind::Ident) {
                // Method call: `.name(...)`, possibly turbofish.
                let name_at = i + 1;
                let name = self.txt(name_at);
                if !KEYWORDS.contains(&name) {
                    let after = self.after_turbofish(name_at + 1);
                    if self.txt(after) == "(" && after < close {
                        let (args, opaque) = self.count_args(after, close);
                        def.calls.push(CallSite {
                            path: vec![name.to_owned()],
                            method: true,
                            args,
                            opaque_args: opaque,
                            span: self.tok_span(name_at),
                        });
                    }
                }
                i += 2;
                continue;
            }
            i += 1;
        }
    }

    fn tok_span(&self, at: usize) -> Span {
        self.tok(at).map_or_else(Span::default, |t| Span {
            start: t.start,
            end: t.end,
            line: t.line,
            col: t.col,
        })
    }

    /// If tokens at `at` start a turbofish (`::` `<` ... `>`), the
    /// index just past it; otherwise `at` unchanged.
    fn after_turbofish(&self, at: usize) -> usize {
        if self.txt(at) == ":" && self.txt(at + 1) == ":" && self.txt(at + 2) == "<" {
            let mut angle = 0i32;
            let mut i = at + 2;
            while i < self.toks.len() {
                match self.txt(i) {
                    "<" => angle += 1,
                    ">" => {
                        let arrow = self.txt(i - 1) == "-" && self.adjacent(i - 1);
                        if !arrow {
                            angle -= 1;
                            if angle <= 0 {
                                return i + 1;
                            }
                        }
                    }
                    ";" | "" => return at,
                    _ => {}
                }
                i += 1;
            }
            at
        } else {
            at
        }
    }

    /// Walks backwards from the callee name over `seg::` pairs to build
    /// the full written path (e.g. `wire::encode_into`).
    fn path_back(&self, name_at: usize) -> Vec<String> {
        let mut rev = vec![self.txt(name_at).to_owned()];
        let mut i = name_at;
        while i >= 2
            && self.txt(i - 1) == ":"
            && self.txt(i - 2) == ":"
            && i >= 3
            && self.kind(i - 3) == Some(TokenKind::Ident)
        {
            let seg = self.txt(i - 3);
            rev.push(seg.to_owned());
            i -= 3;
        }
        rev.reverse();
        rev
    }

    /// At `(`: counts call arguments (commas at depth 1, generics and
    /// nested groups skipped) and whether a `|` makes the count opaque.
    fn count_args(&self, open: usize, limit: usize) -> (usize, bool) {
        let close = self.matching_close(open).min(limit);
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut commas = 0usize;
        let mut any = false;
        let mut opaque = false;
        let mut i = open;
        while i <= close {
            match self.txt(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "<" if depth == 1 => angle += 1,
                ">" if depth == 1 => {
                    let arrow = self.txt(i - 1) == "-" && self.adjacent(i - 1);
                    if !arrow && angle > 0 {
                        angle -= 1;
                    }
                }
                "|" => opaque = true,
                "," if depth == 1 && angle == 0 => commas += 1,
                "" => {}
                _ if depth >= 1 => any = true,
                _ => {}
            }
            i += 1;
        }
        if !any {
            (0, opaque)
        } else {
            (commas + 1, opaque)
        }
    }

    /// At a `match` keyword (index `at`, inside a body bounded by
    /// `limit`): parses the match's arms. The scrutinee runs to the
    /// first `{` at depth 0 (struct literals are not legal there
    /// without parens, so that brace is the match body).
    fn parse_match(&self, at: usize, limit: usize) -> Option<MatchExpr> {
        let mut i = at + 1;
        let mut depth = 0i32;
        // Find the body `{`.
        while i < limit {
            match self.txt(i) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" => return None, // statement ended: not a match expr
                _ => {}
            }
            i += 1;
        }
        if i >= limit || self.txt(i) != "{" {
            return None;
        }
        let body_open = i;
        let body_close = self.matching_close(body_open).min(limit);
        let mut arms = Vec::new();
        let mut j = body_open + 1;
        while j < body_close {
            // Pattern: tokens until the `=>` at depth 0.
            let pat_start = j;
            let mut pat = Vec::new();
            let mut d = 0i32;
            while j < body_close {
                let t = self.txt(j);
                match t {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "=" if d == 0 && self.txt(j + 1) == ">" && self.adjacent(j) => break,
                    _ => {}
                }
                pat.push(t.to_owned());
                j += 1;
            }
            if j >= body_close {
                break;
            }
            arms.push(MatchArm {
                span: self.tok_span(pat_start),
                pat,
            });
            j += 2; // past `=>`
                    // Arm body: a balanced block, or tokens to the `,` at depth 0.
            if self.txt(j) == "{" {
                j = self.matching_close(j) + 1;
                if self.txt(j) == "," {
                    j += 1;
                }
            } else {
                let mut d = 0i32;
                while j < body_close {
                    match self.txt(j) {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        let close_tok = self.tok(body_close).or_else(|| self.tok(body_open));
        let first = self.tok(at)?;
        Some(MatchExpr {
            span: Span {
                start: first.start,
                end: close_tok.map_or(first.end, |t| t.end),
                line: first.line,
                col: first.col,
            },
            arms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ItemKind;

    fn ast_of(src: &str) -> Ast {
        let f = SourceFile::analyze("test.rs", "core", src.to_owned());
        parse(&f)
    }

    fn only_fn(ast: &Ast) -> FnDef {
        let mut found = None;
        ast.walk(|item| {
            if let ItemKind::Fn(f) = &item.kind {
                if found.is_none() {
                    found = Some(f.clone());
                }
            }
        });
        found.expect("fixture has a fn")
    }

    #[test]
    fn parses_fn_arity_and_self() {
        let ast = ast_of("impl S { pub fn m(&mut self, a: u32, b: Vec<(u8, u8)>) -> u32 { a } }");
        let f = only_fn(&ast);
        assert_eq!((f.params, f.has_self), (2, true));
        let ast = ast_of("fn free() {}");
        let f = only_fn(&ast);
        assert_eq!((f.params, f.has_self), (0, false));
        let ast = ast_of("fn one(map: HashMap<K, V>) {}");
        let f = only_fn(&ast);
        assert_eq!((f.params, f.has_self), (1, false));
    }

    #[test]
    fn generics_with_arrows_do_not_derail() {
        let ast = ast_of("fn apply<F: Fn(u32) -> u32>(f: F, x: u32) -> u32 { f(x) }");
        let f = only_fn(&ast);
        assert_eq!(f.params, 2);
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].path, vec!["f"]);
    }

    #[test]
    fn collects_path_method_and_turbofish_calls() {
        let ast = ast_of(
            "fn go() { let v = xs.iter().collect::<Vec<_>>(); wire::encode_into(&mut v, 3); helper(1, 2); }",
        );
        let f = only_fn(&ast);
        let shown: Vec<String> = f.calls.iter().map(CallSite::display).collect();
        assert_eq!(
            shown,
            vec![".iter", ".collect", "wire::encode_into", "helper"]
        );
        assert_eq!(f.calls[2].args, 2);
        assert_eq!(f.calls[3].args, 2);
    }

    #[test]
    fn macro_invocations_are_recorded_and_their_args_scanned() {
        let ast = ast_of("fn go() { assert_eq!(compute(1), 2); }");
        let f = only_fn(&ast);
        assert_eq!(f.macros.len(), 1);
        assert_eq!(f.macros[0].0, "assert_eq");
        assert!(f.calls.iter().any(|c| c.path == ["compute"]));
    }

    #[test]
    fn match_arms_are_parsed_with_patterns() {
        let ast = ast_of(
            "fn go(tag: u8) -> u8 { match tag { TAG_A => 1, TAG_B | TAG_C => { 2 } _ => 0, } }",
        );
        let f = only_fn(&ast);
        assert_eq!(f.matches.len(), 1);
        let m = &f.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert_eq!(m.arms[0].pat, vec!["TAG_A"]);
        assert_eq!(m.arms[1].pat, vec!["TAG_B", "|", "TAG_C"]);
        assert_eq!(m.arms[2].pat, vec!["_"]);
    }

    #[test]
    fn nested_matches_are_both_found() {
        let ast = ast_of("fn go(x: u8) { match x { 0 => match x { _ => () }, _ => () } }");
        let f = only_fn(&ast);
        assert_eq!(f.matches.len(), 2, "outer and inner");
        assert_eq!(f.matches[0].arms.len(), 2);
        assert_eq!(f.matches[1].arms.len(), 1);
    }

    #[test]
    fn impl_blocks_carry_trait_and_self_type() {
        let ast = ast_of("impl<'a> fmt::Display for Frame<'a> { fn fmt(&self) {} }");
        let imp = match &ast.items[0].kind {
            ItemKind::Impl(i) => i,
            other => panic!("expected impl, got {other:?}"),
        };
        assert_eq!(imp.self_ty, "Frame");
        assert_eq!(imp.trait_name.as_deref(), Some("Display"));
        assert_eq!(imp.items.len(), 1);
    }

    #[test]
    fn use_trees_expand_to_leaves() {
        let ast = ast_of("use crate::wire::{self, Frame as F, decode};\nuse std::io::*;");
        let mut leaves = Vec::new();
        ast.walk(|item| {
            if let ItemKind::Use(u) = &item.kind {
                leaves.extend(u.leaves.clone());
            }
        });
        assert!(leaves
            .iter()
            .any(|(n, p)| n == "F" && p.ends_with(&["Frame".to_owned()])));
        assert!(leaves.iter().any(|(n, _)| n == "decode"));
        assert!(leaves
            .iter()
            .any(|(n, p)| n == "*" && p == &["std".to_owned(), "io".to_owned()]));
    }

    #[test]
    fn items_inside_test_regions_still_parse() {
        // The parser sees the whole file; test filtering happens in the
        // call graph, keyed on byte spans.
        let ast = ast_of("#[cfg(test)]\nmod tests { fn check() {} }\nfn live() {}");
        assert_eq!(ast.items.len(), 2);
    }

    #[test]
    fn attributes_are_invisible_to_item_dispatch() {
        let ast = ast_of("#[derive(Debug, Clone)]\npub struct S { a: u32 }\nfn f() {}");
        assert_eq!(ast.items.len(), 2);
        assert!(matches!(ast.items[0].kind, ItemKind::Type));
    }

    #[test]
    fn arbitrary_garbage_terminates() {
        for src in [
            "}}}}",
            "fn",
            "impl impl impl",
            "use ::::{{{,,,}",
            "match { =>",
            "< < < >",
        ] {
            let _ = ast_of(src);
        }
    }

    #[test]
    fn item_count_is_stable_under_reparse() {
        let src = "mod a { fn x() {} fn y() {} } impl T { fn z(&self) {} }";
        assert_eq!(ast_of(src).item_count(), ast_of(src).item_count());
        assert_eq!(ast_of(src).item_count(), 5);
    }
}
