//! A small, hand-rolled Rust lexer.
//!
//! The linter's rules are token-shaped (`.unwrap(`, `panic!`, `const
//! TAG_X: u8 = 3;`), so the lexer only has to get *boundaries* right:
//! comments (line, doc, and nested block), string-like literals (plain,
//! raw with any number of `#`s, byte, char) and lifetimes must never
//! bleed into the token stream as code, or a rule would fire on the word
//! `unwrap` inside a doc comment. Numeric fine structure (exponent
//! signs, suffix parsing) is deliberately loose — no rule looks inside a
//! number — but every token carries exact byte offsets and a 1-based
//! line/column, and lexing arbitrary input must never panic (see the
//! property tests in `tests/lexer_props.rs`).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A character literal, `'x'` or `'\n'`.
    Char,
    /// A byte literal, `b'x'`.
    ByteChar,
    /// A string literal, `"..."` (escapes handled, may span lines).
    Str,
    /// A raw string literal, `r"..."` / `r##"..."##`.
    RawStr,
    /// A byte string literal, `b"..."` or raw `br#"..."#`.
    ByteStr,
    /// A numeric literal (integer or float, loosely scanned).
    Num,
    /// A `//` comment, including `///` and `//!` doc comments.
    LineComment,
    /// A `/* ... */` comment (nesting handled), including `/** ... */`.
    BlockComment,
    /// Any single punctuation or otherwise-unclassified character.
    Punct,
}

impl TokenKind {
    /// Whether the token is a comment (excluded from code-token streams).
    #[must_use]
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: kind plus exact location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive), always a char boundary.
    pub start: usize,
    /// Byte offset one past the last byte (exclusive), a char boundary.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within its source.
    ///
    /// Returns an empty string if `src` is not the text this token was
    /// lexed from (spans are always valid for the original source).
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting at `b` (input comes
/// from `&str`, so `b` is always a valid leading byte).
fn char_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances to byte offset `to`, counting newlines along the way.
    fn advance_to(&mut self, to: usize) {
        let to = to.min(self.bytes.len());
        let mut i = self.pos;
        while i < to {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                self.line_start = i + 1;
            }
            i += 1;
        }
        self.pos = to;
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32, start_col: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line: start_line,
            col: start_col,
        });
    }

    /// Scans a `"..."`-style body starting *after* the opening quote,
    /// honouring backslash escapes; leaves `pos` after the closing quote
    /// (or at EOF if unterminated).
    fn scan_escaped_until(&mut self, quote: u8) {
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                let esc_len = 1 + self.peek(1).map_or(0, char_len);
                self.advance_to(self.pos + esc_len);
            } else if b == quote {
                self.advance_to(self.pos + 1);
                return;
            } else {
                self.advance_to(self.pos + char_len(b));
            }
        }
    }

    /// Scans a raw-string body from the opening `r`/`br`; returns `false`
    /// if what follows is not actually a raw string (e.g. a raw
    /// identifier `r#type`), leaving `pos` untouched.
    fn try_scan_raw_string(&mut self, prefix_len: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix_len + hashes) != Some(b'"') {
            return false;
        }
        // Consume prefix, hashes, and the opening quote.
        self.advance_to(self.pos + prefix_len + hashes + 1);
        // Body runs until `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.advance_to(self.pos + 1 + hashes);
                    return true;
                }
            }
            self.advance_to(self.pos + char_len(b));
        }
        true // unterminated: token runs to EOF
    }

    fn scan_ident(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.advance_to(self.pos + 1);
        }
    }

    /// Distinguishes `'a` (lifetime) from `'a'` / `'\n'` (char literal)
    /// and scans whichever it is.
    fn scan_quote(&mut self) -> TokenKind {
        // pos is at the opening `'`.
        match self.peek(1) {
            Some(b'\\') => {
                // Consume the opening quote; the body scanner handles the
                // escape itself (so `'\''` closes after the escaped quote).
                self.advance_to(self.pos + 1);
                self.scan_escaped_until(b'\'');
                TokenKind::Char
            }
            Some(b) if is_ident_start(b) => {
                // Identifier-ish: lifetime unless a `'` closes it.
                let mut j = self.pos + 2;
                while self.bytes.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.advance_to(j + 1);
                    TokenKind::Char
                } else {
                    self.advance_to(j);
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'('`-style: a single (possibly multibyte) char then `'`.
                self.advance_to(self.pos + 1);
                if let Some(b) = self.peek(0) {
                    self.advance_to(self.pos + char_len(b));
                }
                if self.peek(0) == Some(b'\'') {
                    self.advance_to(self.pos + 1);
                }
                TokenKind::Char
            }
            None => {
                self.advance_to(self.pos + 1);
                TokenKind::Punct
            }
        }
    }

    fn scan_number(&mut self) {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.advance_to(self.pos + 1);
            } else if b == b'.' && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                // `1.5` continues the number; `1..10` does not.
                self.advance_to(self.pos + 1);
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let start_col = u32::try_from(start - self.line_start).unwrap_or(u32::MAX - 1) + 1;
        let Some(b) = self.peek(0) else { return };
        let kind = match b {
            b'/' if self.peek(1) == Some(b'/') => {
                let mut j = self.pos;
                while j < self.bytes.len() && self.bytes[j] != b'\n' {
                    j += 1;
                }
                self.advance_to(j);
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.advance_to(self.pos + 2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.advance_to(self.pos + 2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.advance_to(self.pos + 2);
                        }
                        (Some(c), _) => self.advance_to(self.pos + char_len(c)),
                        (None, _) => break, // unterminated: run to EOF
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                self.advance_to(self.pos + 1);
                self.scan_escaped_until(b'"');
                TokenKind::Str
            }
            b'\'' => self.scan_quote(),
            b'r' if self.try_scan_raw_string(1) => TokenKind::RawStr,
            b'b' if self.peek(1) == Some(b'"') => {
                self.advance_to(self.pos + 2);
                self.scan_escaped_until(b'"');
                TokenKind::ByteStr
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.advance_to(self.pos + 2);
                self.scan_escaped_until(b'\'');
                TokenKind::ByteChar
            }
            b'b' if self.peek(1) == Some(b'r') && self.try_scan_raw_string(2) => TokenKind::ByteStr,
            b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`.
                self.advance_to(self.pos + 2);
                self.scan_ident();
                TokenKind::Ident
            }
            _ if is_ident_start(b) => {
                self.scan_ident();
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                self.scan_number();
                TokenKind::Num
            }
            _ => {
                self.advance_to(self.pos + char_len(b));
                TokenKind::Punct
            }
        };
        debug_assert!(self.pos > start, "lexer must always make progress");
        if self.pos == start {
            // Defensive: never loop forever, whatever the input.
            self.advance_to(start + char_len(b));
        }
        self.push(kind, start, start_line, start_col);
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.advance_to(self.pos + 1);
            } else {
                self.next_token();
            }
        }
        self.tokens
    }
}

/// Lexes `src` into a token stream covering every non-whitespace byte.
///
/// Never panics, for any input; unterminated literals and comments run
/// to end-of-file as a single token.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_owned()).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("let x = a.unwrap();"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Punct,
            ]
        );
        assert_eq!(
            texts("x1 0xff 1_000 1.5 1..2")[..3],
            ["x1", "0xff", "1_000"]
        );
        // `1.5` holds together; `1..2` splits at the range.
        assert_eq!(texts("1.5"), ["1.5"]);
        assert_eq!(texts("1..2"), ["1", ".", ".", "2"]);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* outer /* inner */ still outer */ x";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* outer /* inner */ still outer */");
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"r##"a " quote and "# partial"## + r"plain""####;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::RawStr);
        assert!(toks[0].text(src).ends_with(r####""##"####));
        assert_eq!(toks[2].kind, TokenKind::RawStr);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
    }

    #[test]
    fn byte_literals_and_raw_identifiers() {
        assert_eq!(kinds("b'x'"), vec![TokenKind::ByteChar]);
        assert_eq!(kinds(r#"b"bytes""#), vec![TokenKind::ByteStr]);
        assert_eq!(kinds(r###"br#"raw bytes"#"###), vec![TokenKind::ByteStr]);
        assert_eq!(kinds("r#type"), vec![TokenKind::Ident]);
        assert_eq!(texts("r#type"), ["r#type"]);
    }

    #[test]
    fn strings_hide_code_looking_text() {
        let src = r#"let s = "x.unwrap() /* not a comment */";"#;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        // No Ident token named unwrap leaked out of the string.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb\n/* c\nc */ d";
        let toks = lex(src);
        let at = |s: &str| {
            toks.iter()
                .find(|t| t.text(src) == s)
                .map(|t| (t.line, t.col))
                .unwrap()
        };
        assert_eq!(at("a"), (1, 1));
        assert_eq!(at("bb"), (2, 3));
        assert_eq!(at("d"), (4, 6));
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        assert_eq!(kinds("\"open"), vec![TokenKind::Str]);
        assert_eq!(kinds("/* open"), vec![TokenKind::BlockComment]);
        assert_eq!(kinds("r#\"open"), vec![TokenKind::RawStr]);
    }
}
