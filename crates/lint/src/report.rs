//! Findings and the machine-readable report.
//!
//! The exit-code contract (enforced by the CLI, documented in `ci.sh`):
//! a run with zero unsuppressed deny-severity findings is *clean* and
//! exits 0; any unsuppressed deny finding exits 1 with the report on
//! stdout; usage or I/O failures exit 2. Warn-severity findings are
//! reported but never gate.

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, never gates.
    Warn,
    /// Gates: one unsuppressed deny finding fails the run.
    Deny,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One rule violation at a specific location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-panic-path`.
    pub rule: &'static str,
    /// Whether it gates.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation with the offending construct named.
    pub message: String,
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (fixture and vendor trees excluded upstream).
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `lint:allow`.
    pub suppressed: usize,
}

impl Report {
    /// Unsuppressed findings that gate the run.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Whether the run passes the gate.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Canonical ordering so output is byte-stable across runs.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
    }

    /// One line per finding plus a summary, for humans.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{} [{}] {}: {}",
                f.path,
                f.line,
                f.col,
                f.severity.as_str(),
                f.rule,
                f.message
            );
        }
        let warn = self.findings.len() - self.deny_count();
        let _ = write!(
            out,
            "lint: {} finding(s) ({} deny, {} warn), {} suppressed, {} files scanned",
            self.findings.len(),
            self.deny_count(),
            warn,
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// The machine-readable report. `"findings"` in the summary is the
    /// count of unsuppressed deny findings — the number the CI gate
    /// greps for — while the `"details"` array carries every
    /// unsuppressed finding, warn included.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"findings\": {},\n  \"warnings\": {},\n  \"suppressed\": {},\n  \"files_scanned\": {},\n  \"details\": [",
            self.deny_count(),
            self.findings.len() - self.deny_count(),
            self.suppressed,
            self.files_scanned
        );
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(f.rule),
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                f.col,
                json_escape(&f.message)
            );
        }
        if self.findings.is_empty() {
            out.push_str("]\n}");
        } else {
            out.push_str("\n  ]\n}");
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, sev: Severity) -> Finding {
        Finding {
            rule,
            severity: sev,
            path: path.to_owned(),
            line,
            col: 1,
            message: "msg with \"quotes\"".to_owned(),
        }
    }

    #[test]
    fn clean_report_renders_zero_findings() {
        let r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"findings\": 0"));
        assert!(r.render_text().contains("0 finding(s)"));
    }

    #[test]
    fn warn_findings_do_not_gate() {
        let mut r = Report::default();
        r.findings
            .push(finding("unused-suppression", "a.rs", 1, Severity::Warn));
        assert!(r.is_clean());
        assert_eq!(r.deny_count(), 0);
        assert!(r.render_json().contains("\"findings\": 0"));
        assert!(r.render_json().contains("\"warnings\": 1"));
    }

    #[test]
    fn sort_is_stable_and_json_escapes() {
        let mut r = Report::default();
        r.findings
            .push(finding("b-rule", "b.rs", 9, Severity::Deny));
        r.findings
            .push(finding("a-rule", "a.rs", 2, Severity::Deny));
        r.sort();
        assert_eq!(r.findings[0].path, "a.rs");
        assert!(!r.is_clean());
        let json = r.render_json();
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"findings\": 2"));
    }
}
