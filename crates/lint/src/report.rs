//! Findings and the machine-readable report.
//!
//! The exit-code contract (enforced by the CLI, documented in `ci.sh`):
//! a run with zero unsuppressed deny-severity findings is *clean* and
//! exits 0; any unsuppressed deny finding exits 1 with the report on
//! stdout; usage or I/O failures exit 2. Warn-severity findings are
//! reported but never gate.

/// How a finding affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, never gates.
    Warn,
    /// Gates: one unsuppressed deny finding fails the run.
    Deny,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One rule violation at a specific location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-panic-path`.
    pub rule: &'static str,
    /// Whether it gates.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable explanation with the offending construct named.
    pub message: String,
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (fixture and vendor trees excluded upstream).
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `lint:allow`.
    pub suppressed: usize,
    /// Findings absorbed by the committed baseline (see
    /// [`Report::apply_baseline`]).
    pub baselined: usize,
}

/// Synthetic rule id for a baseline entry that matched no finding: the
/// debt it recorded was paid and the baseline file should shrink.
pub const RULE_STALE_BASELINE: &str = "stale-baseline";

impl Report {
    /// Unsuppressed findings that gate the run.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Whether the run passes the gate.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Canonical ordering so output is byte-stable across runs.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
    }

    /// One line per finding plus a summary, for humans.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{} [{}] {}: {}",
                f.path,
                f.line,
                f.col,
                f.severity.as_str(),
                f.rule,
                f.message
            );
        }
        let warn = self.findings.len() - self.deny_count();
        let _ = write!(
            out,
            "lint: {} finding(s) ({} deny, {} warn), {} suppressed, {} baselined, {} files scanned",
            self.findings.len(),
            self.deny_count(),
            warn,
            self.suppressed,
            self.baselined,
            self.files_scanned
        );
        out
    }

    /// The machine-readable report. `"findings"` in the summary is the
    /// count of unsuppressed deny findings — the number the CI gate
    /// greps for — while the `"details"` array carries every
    /// unsuppressed finding, warn included.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"findings\": {},\n  \"warnings\": {},\n  \"suppressed\": {},\n  \"baselined\": {},\n  \"files_scanned\": {},\n  \"details\": [",
            self.deny_count(),
            self.findings.len() - self.deny_count(),
            self.suppressed,
            self.baselined,
            self.files_scanned
        );
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(f.rule),
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                f.col,
                json_escape(&f.message)
            );
        }
        if self.findings.is_empty() {
            out.push_str("]\n}");
        } else {
            out.push_str("\n  ]\n}");
        }
        out
    }
}

impl Report {
    /// Applies a committed baseline (the saved `render_json` output of a
    /// prior run): every current finding matching a baseline entry on
    /// (rule, path, message) — line-insensitively, so unrelated edits
    /// above a known site don't break the gate — is moved out of
    /// `findings` into the `baselined` count, multiset-style (one entry
    /// absorbs one finding). A baseline entry matching nothing becomes a
    /// [`RULE_STALE_BASELINE`] warning: the recorded debt was paid and
    /// the baseline file should be regenerated to shrink.
    pub fn apply_baseline(&mut self, baseline_json: &str) {
        let mut entries = parse_baseline(baseline_json);
        let mut kept = Vec::with_capacity(self.findings.len());
        for finding in self.findings.drain(..) {
            let hit = entries.iter().position(|e| {
                e.rule == finding.rule && e.path == finding.path && e.message == finding.message
            });
            match hit {
                Some(i) => {
                    entries.swap_remove(i);
                    self.baselined += 1;
                }
                None => kept.push(finding),
            }
        }
        self.findings = kept;
        for e in entries {
            self.findings.push(Finding {
                rule: RULE_STALE_BASELINE,
                severity: Severity::Warn,
                path: e.path,
                line: 1,
                col: 1,
                message: format!(
                    "baseline entry [{}] \"{}\" matched no finding; regenerate the baseline \
                     with `lint --json` to retire it",
                    e.rule, e.message
                ),
            });
        }
        self.sort();
    }
}

/// One baseline entry: the identity fields of a recorded finding.
#[derive(Debug)]
struct BaselineEntry {
    rule: String,
    path: String,
    message: String,
}

/// Extracts the finding entries from a saved `render_json` report. This
/// parses only the linter's own output format (objects with `"rule"`,
/// `"path"`, and `"message"` string fields); unknown text is skipped,
/// so an empty or malformed baseline degrades to "no entries" rather
/// than crashing the gate.
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("{\"rule\":") {
        let obj = &rest[at..];
        let end = obj.find('}').map_or(obj.len(), |e| e + 1);
        let obj_text = &obj[..end];
        let field = |key: &str| -> Option<String> {
            let marker = format!("\"{key}\": \"");
            let start = obj_text.find(&marker)? + marker.len();
            let tail = &obj_text[start..];
            let mut value = String::new();
            let mut chars = tail.chars();
            loop {
                match chars.next()? {
                    '"' => return Some(value),
                    '\\' => match chars.next()? {
                        'n' => value.push('\n'),
                        'r' => value.push('\r'),
                        't' => value.push('\t'),
                        'u' => {
                            let hex: String = chars.by_ref().take(4).collect();
                            let c = u32::from_str_radix(&hex, 16)
                                .ok()
                                .and_then(char::from_u32)?;
                            value.push(c);
                        }
                        c => value.push(c),
                    },
                    c => value.push(c),
                }
            }
        };
        if let (Some(rule), Some(path), Some(message)) =
            (field("rule"), field("path"), field("message"))
        {
            out.push(BaselineEntry {
                rule,
                path,
                message,
            });
        }
        rest = &rest[at + end..];
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, sev: Severity) -> Finding {
        Finding {
            rule,
            severity: sev,
            path: path.to_owned(),
            line,
            col: 1,
            message: "msg with \"quotes\"".to_owned(),
        }
    }

    #[test]
    fn clean_report_renders_zero_findings() {
        let r = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"findings\": 0"));
        assert!(r.render_text().contains("0 finding(s)"));
    }

    #[test]
    fn warn_findings_do_not_gate() {
        let mut r = Report::default();
        r.findings
            .push(finding("unused-suppression", "a.rs", 1, Severity::Warn));
        assert!(r.is_clean());
        assert_eq!(r.deny_count(), 0);
        assert!(r.render_json().contains("\"findings\": 0"));
        assert!(r.render_json().contains("\"warnings\": 1"));
    }

    #[test]
    fn baseline_absorbs_matches_multiset_style_and_flags_stale_entries() {
        // Baseline: two identical entries on a.rs plus one paid-off debt.
        let mut recorded = Report::default();
        recorded
            .findings
            .push(finding("r", "a.rs", 10, Severity::Deny));
        recorded
            .findings
            .push(finding("r", "a.rs", 20, Severity::Deny));
        recorded
            .findings
            .push(finding("gone", "b.rs", 5, Severity::Deny));
        let baseline = recorded.render_json();

        // Current run: three identical a.rs findings (one more than the
        // baseline recorded — the extra one must still gate), different
        // lines than recorded (line drift must not matter).
        let mut r = Report::default();
        r.findings.push(finding("r", "a.rs", 11, Severity::Deny));
        r.findings.push(finding("r", "a.rs", 21, Severity::Deny));
        r.findings.push(finding("r", "a.rs", 31, Severity::Deny));
        r.apply_baseline(&baseline);

        assert_eq!(r.baselined, 2);
        assert_eq!(r.deny_count(), 1, "the third occurrence still gates");
        let stale: Vec<&Finding> = r
            .findings
            .iter()
            .filter(|f| f.rule == RULE_STALE_BASELINE)
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", r.findings);
        assert_eq!(stale[0].severity, Severity::Warn);
        assert_eq!(stale[0].path, "b.rs");
        assert!(r.render_json().contains("\"baselined\": 2"));
    }

    #[test]
    fn empty_or_garbage_baseline_changes_nothing() {
        let mut r = Report::default();
        r.findings.push(finding("r", "a.rs", 1, Severity::Deny));
        r.apply_baseline("");
        r.apply_baseline("{\"findings\": 0, \"details\": []}");
        r.apply_baseline("not json at all");
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.baselined, 0);
    }

    #[test]
    fn baseline_round_trips_escaped_messages() {
        let mut recorded = Report::default();
        recorded.findings.push(Finding {
            rule: "r",
            severity: Severity::Deny,
            path: "a.rs".to_owned(),
            line: 1,
            col: 1,
            message: "say \"hi\"\tok\\done".to_owned(),
        });
        let baseline = recorded.render_json();
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "r",
            severity: Severity::Deny,
            path: "a.rs".to_owned(),
            line: 9,
            col: 4,
            message: "say \"hi\"\tok\\done".to_owned(),
        });
        r.apply_baseline(&baseline);
        assert_eq!(r.baselined, 1);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn sort_is_stable_and_json_escapes() {
        let mut r = Report::default();
        r.findings
            .push(finding("b-rule", "b.rs", 9, Severity::Deny));
        r.findings
            .push(finding("a-rule", "a.rs", 2, Severity::Deny));
        r.sort();
        assert_eq!(r.findings[0].path, "a.rs");
        assert!(!r.is_clean());
        let json = r.render_json();
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"findings\": 2"));
    }
}
