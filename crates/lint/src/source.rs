//! Per-file analysis shared by every rule: the token stream, which byte
//! ranges are test code (`#[cfg(test)]` / `#[test]` items, `mod tests`
//! blocks), which ranges are attribute bodies, and the file's
//! `// lint:allow(<rule>): <justification>` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// An inline suppression comment, `// lint:allow(rule-a, rule-b): why`.
///
/// A suppression applies to findings on its own line when it trails code
/// (`foo[i] // lint:allow(no-panic-path): i < len by construction`), or
/// to the next line carrying any code token when it stands alone. The
/// justification after the closing parenthesis is mandatory: an allow
/// without one does not suppress anything and is itself reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule ids being allowed.
    pub rules: Vec<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub applies_line: u32,
    /// Whether a non-empty justification follows the rule list.
    pub justified: bool,
    /// Set during matching; unused justified suppressions are reported
    /// (they usually mean a typo'd rule id or stale comment).
    pub used: std::cell::Cell<bool>,
}

/// One analyzed source file, ready for rules to scan.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/core/src/phase.rs`.
    pub path: String,
    /// Short crate name (`core`, `serve`, ... or `livephase` for the
    /// root façade) used for per-crate rule scoping.
    pub crate_name: String,
    /// The file's text.
    pub text: String,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Byte ranges of test-only items.
    test_regions: Vec<(usize, usize)>,
    /// Byte ranges of attribute bodies (`#[...]` / `#![...]`).
    attr_regions: Vec<(usize, usize)>,
    /// Parsed `lint:allow` comments.
    pub suppressions: Vec<Suppression>,
}

const TEST_MOD_NAMES: [&str; 2] = ["tests", "test"];

impl SourceFile {
    /// Lexes and analyzes one file.
    #[must_use]
    pub fn analyze(path: impl Into<String>, crate_name: impl Into<String>, text: String) -> Self {
        let tokens = lex(&text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect();
        let attr_regions = find_attr_regions(&text, &tokens, &code);
        let test_regions = find_test_regions(&text, &tokens, &code, &attr_regions);
        let suppressions = find_suppressions(&text, &tokens, &code);
        Self {
            path: path.into(),
            crate_name: crate_name.into(),
            text,
            tokens,
            code,
            test_regions,
            attr_regions,
            suppressions,
        }
    }

    /// The text of a token of this file.
    #[must_use]
    pub fn tok_text(&self, t: &Token) -> &str {
        t.text(&self.text)
    }

    /// Whether the byte offset falls inside a test-only item.
    #[must_use]
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    /// Whether the byte offset falls inside an attribute body.
    #[must_use]
    pub fn in_attr(&self, byte: usize) -> bool {
        self.attr_regions
            .iter()
            .any(|&(s, e)| byte >= s && byte < e)
    }

    /// The code tokens (comments skipped), as `(index_in_tokens, &Token)`
    /// pairs — rules scan these with window patterns.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> + '_ {
        self.code.iter().map(move |&i| &self.tokens[i])
    }
}

/// Collects `#[...]` and `#![...]` spans over code tokens.
fn find_attr_regions(text: &str, tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let tok_is = |k: usize, s: &str| -> bool {
        code.get(k)
            .and_then(|&i| tokens.get(i))
            .is_some_and(|t| t.text(text) == s)
    };
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if tok_is(k, "#") {
            let mut j = k + 1;
            if tok_is(j, "!") {
                j += 1;
            }
            if tok_is(j, "[") {
                let mut depth = 0i32;
                let mut m = j;
                let mut end = tokens[code[j]].end;
                while m < code.len() {
                    if tok_is(m, "[") {
                        depth += 1;
                    } else if tok_is(m, "]") {
                        depth -= 1;
                        if depth == 0 {
                            end = tokens[code[m]].end;
                            break;
                        }
                    }
                    m += 1;
                }
                out.push((tokens[code[k]].start, end));
                k = m + 1;
                continue;
            }
        }
        k += 1;
    }
    out
}

/// Byte ranges of test-only items: anything annotated `#[test]` or
/// `#[cfg(test)]`, plus `mod tests { ... }` bodies.
fn find_test_regions(
    text: &str,
    tokens: &[Token],
    code: &[usize],
    attrs: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    // Attribute-driven regions.
    for &(start, end) in attrs {
        let inner: Vec<&str> = tokens
            .iter()
            .filter(|t| t.start >= start && t.end <= end && !t.kind.is_comment())
            .map(|t| t.text(text))
            .collect();
        let is_test_attr =
            inner == ["#", "[", "test", "]"] || inner == ["#", "[", "cfg", "(", "test", ")", "]"];
        if !is_test_attr {
            continue;
        }
        if let Some(item_end) = item_extent_after(text, tokens, code, end) {
            out.push((start, item_end));
        }
    }
    // `mod tests {` / `mod test {` without an attribute.
    for w in 0..code.len().saturating_sub(2) {
        let a = &tokens[code[w]];
        let b = &tokens[code[w + 1]];
        let c = &tokens[code[w + 2]];
        if a.kind == TokenKind::Ident
            && a.text(text) == "mod"
            && b.kind == TokenKind::Ident
            && TEST_MOD_NAMES.contains(&b.text(text))
            && c.text(text) == "{"
        {
            if let Some(close) = balance_braces(text, tokens, code, w + 2) {
                out.push((a.start, close));
            }
        }
    }
    out
}

/// Given the byte offset where an attribute ends, finds the end of the
/// item it annotates: skip further attributes, then the item runs to the
/// close of its first `{ ... }` block, or to the first `;` if none opens.
fn item_extent_after(
    text: &str,
    tokens: &[Token],
    code: &[usize],
    attr_end: usize,
) -> Option<usize> {
    let mut k = code.iter().position(|&i| tokens[i].start >= attr_end)?;
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] fn ...`).
    while k < code.len() && tokens[code[k]].text(text) == "#" {
        let mut depth = 0i32;
        let mut m = k + 1;
        if m < code.len() && tokens[code[m]].text(text) == "!" {
            m += 1;
        }
        while m < code.len() {
            match tokens[code[m]].text(text) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        k = m + 1;
    }
    // Scan for the first `{` (balance it) or a `;` before any brace.
    let mut m = k;
    while m < code.len() {
        match tokens[code[m]].text(text) {
            "{" => return balance_braces(text, tokens, code, m),
            ";" => return Some(tokens[code[m]].end),
            _ => m += 1,
        }
    }
    // Ran off the file (truncated input): treat the rest as the item.
    Some(text.len())
}

/// With `open` the code-token position of a `{`, returns the byte offset
/// just past its matching `}` (or end of file if unbalanced).
fn balance_braces(text: &str, tokens: &[Token], code: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for &i in code.get(open..)? {
        match tokens[i].text(text) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(tokens[i].end);
                }
            }
            _ => {}
        }
    }
    Some(text.len())
}

/// Parses `lint:allow` comments and resolves which line each applies to.
fn find_suppressions(text: &str, tokens: &[Token], code: &[usize]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(text).trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            // Malformed: report as unjustified so it cannot silently rot.
            out.push(Suppression {
                rules: Vec::new(),
                line: t.line,
                applies_line: t.line,
                justified: false,
                used: std::cell::Cell::new(false),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let justified = after
            .strip_prefix(':')
            .is_some_and(|j| !j.trim().is_empty());
        // Trailing a code token on the same line -> applies to that line;
        // standalone -> applies to the next line that carries code.
        let trails_code = code
            .iter()
            .any(|&i| tokens[i].line == t.line && tokens[i].start < t.start);
        let applies_line = if trails_code {
            t.line
        } else {
            code.iter()
                .map(|&i| tokens[i].line)
                .find(|&l| l > t.line)
                .unwrap_or(t.line)
        };
        out.push(Suppression {
            rules,
            line: t.line,
            applies_line,
            justified,
            used: std::cell::Cell::new(false),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyze("test.rs", "core", src.to_owned())
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\nfn after() {}";
        let f = file(src);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(f.in_test(unwrap_at));
        assert!(!f.in_test(src.find("live").unwrap()));
        assert!(!f.in_test(src.find("after").unwrap()));
    }

    #[test]
    fn test_attribute_covers_one_fn() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b; }";
        let f = file(src);
        assert!(f.in_test(src.find("unwrap").unwrap()));
        assert!(!f.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn stacked_attributes_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn x() {} }\nfn live() {}";
        let f = file(src);
        assert!(f.in_test(src.find("fn x").unwrap()));
        assert!(!f.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn bare_mod_tests_is_a_test_region() {
        let src = "mod tests { fn x() {} }\nfn live() {}";
        let f = file(src);
        assert!(f.in_test(src.find("fn x").unwrap()));
        assert!(!f.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }";
        let f = file(src);
        assert!(!f.in_test(src.find("unwrap").unwrap()));
    }

    #[test]
    fn attr_regions_cover_derives() {
        let src = "#[derive(Debug)]\nstruct S;\nlet x = v[0];";
        let f = file(src);
        assert!(f.in_attr(src.find("Debug").unwrap()));
        assert!(!f.in_attr(src.find("v[0]").unwrap()));
    }

    #[test]
    fn suppressions_parse_and_resolve_lines() {
        let src = "let a = v[i]; // lint:allow(no-panic-path): i is bounded above\n\
                   // lint:allow(determinism): telemetry only\n\
                   let t = Instant::now();\n\
                   // lint:allow(no-panic-path)\n\
                   let b = v[j];";
        let f = file(src);
        assert_eq!(f.suppressions.len(), 3);
        let s = &f.suppressions[0];
        assert_eq!(s.rules, vec!["no-panic-path"]);
        assert_eq!((s.line, s.applies_line, s.justified), (1, 1, true));
        let s = &f.suppressions[1];
        assert_eq!((s.line, s.applies_line, s.justified), (2, 3, true));
        let s = &f.suppressions[2];
        assert!(!s.justified, "missing justification is not justified");
    }

    #[test]
    fn comment_text_never_becomes_code() {
        let f = file("// not code: x.unwrap()\nfn live() {}");
        assert!(!f.code_tokens().any(|t| f.tok_text(t) == "unwrap"));
    }
}
