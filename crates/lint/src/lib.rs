//! livephase-lint: a zero-dependency, workspace-aware invariant linter.
//!
//! `clippy` checks Rust; this crate checks *livephase*. It encodes the
//! workspace invariants that keep the phase-monitoring pipeline
//! reproducible and crash-free — panic-freedom and determinism on the
//! decision path, `SAFETY:` discipline around `unsafe`, metric-naming
//! hygiene, and wire-tag uniqueness — as machine-checked rules over a
//! hand-rolled token stream (no `syn`, no `rustc` internals, no
//! dependencies at all). It runs as `livephase-cli lint [--json]` and
//! gates `ci.sh`.
//!
//! Findings are suppressed per-site with
//! `// lint:allow(<rule>): <justification>`; the justification is
//! mandatory (an allow without one is itself a deny finding) and a
//! justified allow that no longer matches anything is reported as a
//! warning so stale suppressions cannot accumulate.
//!
//! See `DESIGN.md` §3f for the architecture and the rationale behind
//! each rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;
pub mod taint;
pub mod workspace;

use std::path::Path;

use report::{Finding, Report, Severity};
use rules::CiScript;
use source::SourceFile;

/// Synthetic rule id for a `lint:allow` missing its justification.
pub const RULE_ALLOW_JUSTIFICATION: &str = "lint-allow-justification";

/// Synthetic rule id for a justified `lint:allow` that suppressed
/// nothing (a typo'd rule id or a stale comment).
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Lints a set of analyzed files (plus the optional CI script) with the
/// full ruleset, applies suppressions, and returns the sorted report.
///
/// Partial-scan entry point (unit tests, fixtures): no docs, and
/// whole-workspace-only guards (hot-path-root existence) are off. The
/// CLI path is [`lint_workspace`], which turns both on.
#[must_use]
pub fn lint_files(files: &[SourceFile], ci_script: Option<&CiScript>) -> Report {
    lint_with(files, ci_script, &[], false)
}

/// [`lint_files`] with documentation artifacts and the strictness of a
/// full-workspace scan made explicit.
#[must_use]
pub fn lint_with(
    files: &[SourceFile],
    ci_script: Option<&CiScript>,
    docs: &[rules::Doc],
    strict_roots: bool,
) -> Report {
    let asts: Vec<ast::Ast> = files.iter().map(parser::parse).collect();
    let graph = callgraph::CallGraph::build(files, &asts);
    let ws = rules::Workspace {
        files,
        asts: &asts,
        graph: &graph,
        ci_script,
        docs,
        strict_roots,
    };
    let rules = rules::all_rules();
    let mut raw: Vec<Finding> = Vec::new();
    for file in files {
        for rule in &rules {
            rule.check_file(file, &mut raw);
        }
    }
    for rule in &rules {
        rule.check_workspace(&ws, &mut raw);
    }

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    // A finding survives unless a justified allow for its rule targets
    // its line in its file. Matching marks the allow as used.
    for finding in raw {
        let suppressed = files
            .iter()
            .find(|f| f.path == finding.path)
            .and_then(|f| {
                f.suppressions.iter().find(|s| {
                    s.justified
                        && s.applies_line == finding.line
                        && s.rules.iter().any(|r| r == finding.rule)
                })
            })
            .map(|s| s.used.set(true));
        if suppressed.is_some() {
            report.suppressed += 1;
        } else {
            report.findings.push(finding);
        }
    }
    // Meta-findings about the suppressions themselves.
    for file in files {
        for s in &file.suppressions {
            if !s.justified {
                report.findings.push(Finding {
                    rule: RULE_ALLOW_JUSTIFICATION,
                    severity: Severity::Deny,
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: "`lint:allow` without a justification suppresses nothing; \
                              write `// lint:allow(<rule>): <why this site is sound>`"
                        .to_owned(),
                });
            } else if !s.used.get() {
                report.findings.push(Finding {
                    rule: RULE_UNUSED_SUPPRESSION,
                    severity: Severity::Warn,
                    path: file.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "`lint:allow({})` suppressed nothing; remove it or fix the rule id",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
    report.sort();
    report
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns an error if the workspace's source tree cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, workspace::WorkspaceError> {
    let files = workspace::load_sources(root)?;
    let ci = workspace::load_ci_script(root);
    let docs = workspace::load_docs(root);
    Ok(lint_with(&files, ci.as_ref(), &docs, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, crate_name: &str, src: &str) -> Vec<SourceFile> {
        vec![SourceFile::analyze(path, crate_name, src.to_owned())]
    }

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let src = "fn f(v: &[u8]) { let x = v[0]; } // lint:allow(no-panic-path): caller guarantees non-empty";
        let report = lint_files(&one("a.rs", "core", src), None);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 1);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn unjustified_allow_is_a_deny_finding_and_does_not_suppress() {
        let src = "fn f(v: &[u8]) { let x = v[0]; } // lint:allow(no-panic-path)";
        let report = lint_files(&one("a.rs", "core", src), None);
        assert!(!report.is_clean());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"no-panic-path"), "{rules:?}");
        assert!(rules.contains(&RULE_ALLOW_JUSTIFICATION), "{rules:?}");
    }

    #[test]
    fn unused_allow_warns_without_gating() {
        let src = "// lint:allow(no-panic-path): nothing here actually panics\nfn f() {}";
        let report = lint_files(&one("a.rs", "core", src), None);
        assert!(report.is_clean());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, RULE_UNUSED_SUPPRESSION);
        assert_eq!(report.findings[0].severity, Severity::Warn);
    }

    #[test]
    fn allow_for_one_rule_does_not_hide_another() {
        let src = "fn f(v: Vec<u8>) { let t = Instant::now(); let x = v[0]; } // lint:allow(no-panic-path): v is seeded with one element";
        let report = lint_files(&one("a.rs", "engine", src), None);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["determinism"], "{rules:?}");
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let src = "// lint:allow(determinism): latency telemetry only, never a decision input\nlet t = Instant::now();";
        let report = lint_files(&one("a.rs", "telemetry", src), None);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn report_is_sorted_across_files() {
        let files = vec![
            SourceFile::analyze("b.rs", "core", "fn f(v: &[u8]) { v[0]; }".to_owned()),
            SourceFile::analyze("a.rs", "core", "fn g() { panic!(\"x\"); }".to_owned()),
        ];
        let report = lint_files(&files, None);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.findings[0].path, "a.rs");
        assert_eq!(report.findings[1].path, "b.rs");
    }
}
