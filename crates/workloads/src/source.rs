//! Streaming interval sources: the architectural primitive of the data
//! path.
//!
//! The paper's deployed system never sees a whole benchmark at once — the
//! PMI handler consumes one sampling interval at a time as the program
//! executes. [`IntervalSource`] mirrors that: a pull-based stream of
//! [`IntervalWork`] chunks that the simulated platform refills from
//! directly, fusing workload generation and simulation into a single pass
//! with O(1) memory per run. Every generator in this crate produces such a
//! source ([`BenchmarkSpec::stream`](crate::BenchmarkSpec::stream),
//! [`IpcxMemSuite::source`](crate::IpcxMemSuite::source),
//! [`multiprogram::round_robin_source`](crate::multiprogram::round_robin_source),
//! [`io::stream_csv`](crate::io::stream_csv)); a materialized
//! [`WorkloadTrace`] replays through the same interface via
//! [`WorkloadTrace::stream`], so buffered and streaming execution are
//! interchangeable — and bit-identical, because the materialized path is
//! *defined* as collecting the stream.
//!
//! [`IntoIntervalSource`] is the call-site glue: consumers (notably
//! `livephase_governor::Manager::run`) accept `impl IntoIntervalSource`,
//! which lets them take a `&WorkloadTrace` exactly as before the streaming
//! refactor, any owned source, or an owned trace.

use crate::trace::WorkloadTrace;
use livephase_pmsim::timing::IntervalWork;

/// A pull-based stream of per-sampling-interval work chunks.
pub trait IntervalSource {
    /// The workload's name (e.g. `applu_in`), used to label run reports.
    fn name(&self) -> &str;

    /// Produces the next sampling interval, or `None` when the workload is
    /// finished.
    fn next_interval(&mut self) -> Option<IntervalWork>;

    /// Number of intervals remaining, when the source knows it.
    ///
    /// Used only for pre-sizing buffers; `None` is always a correct answer
    /// (e.g. for a CSV replay of unknown length).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Drains the source into a materialized [`WorkloadTrace`].
    ///
    /// # Panics
    ///
    /// Panics if the source yields no intervals (traces are never empty).
    #[must_use]
    fn collect_trace(mut self) -> WorkloadTrace
    where
        Self: Sized,
    {
        let name = self.name().to_owned();
        let mut intervals = Vec::with_capacity(self.len_hint().unwrap_or(0));
        while let Some(w) = self.next_interval() {
            intervals.push(w);
        }
        WorkloadTrace::new(name, intervals)
    }
}

/// Conversion into an [`IntervalSource`] — the bound consumers accept.
///
/// Implemented for every source (identity), for `&WorkloadTrace` (replay
/// cursor borrowing the buffer), and for owned [`WorkloadTrace`].
pub trait IntoIntervalSource {
    /// The source this value converts into.
    type Source: IntervalSource;

    /// Performs the conversion.
    fn into_interval_source(self) -> Self::Source;
}

impl<S: IntervalSource> IntoIntervalSource for S {
    type Source = S;

    fn into_interval_source(self) -> S {
        self
    }
}

impl<'a> IntoIntervalSource for &'a WorkloadTrace {
    type Source = TraceCursor<'a>;

    fn into_interval_source(self) -> TraceCursor<'a> {
        self.stream()
    }
}

impl IntoIntervalSource for WorkloadTrace {
    type Source = OwnedTraceCursor;

    fn into_interval_source(self) -> OwnedTraceCursor {
        OwnedTraceCursor::new(self)
    }
}

/// Replays a borrowed [`WorkloadTrace`] through the streaming interface.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a WorkloadTrace,
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// Creates a cursor at the start of `trace`.
    #[must_use]
    pub fn new(trace: &'a WorkloadTrace) -> Self {
        Self { trace, pos: 0 }
    }
}

impl IntervalSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        let w = self.trace.intervals().get(self.pos).copied()?;
        self.pos += 1;
        Some(w)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len() - self.pos)
    }
}

/// Replays an owned [`WorkloadTrace`] through the streaming interface.
#[derive(Debug)]
pub struct OwnedTraceCursor {
    name: String,
    intervals: std::vec::IntoIter<IntervalWork>,
}

impl OwnedTraceCursor {
    /// Creates a cursor consuming `trace`.
    #[must_use]
    pub fn new(trace: WorkloadTrace) -> Self {
        let (name, intervals) = trace.into_parts();
        Self {
            name,
            intervals: intervals.into_iter(),
        }
    }
}

impl IntervalSource for OwnedTraceCursor {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        self.intervals.next()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.intervals.len())
    }
}

/// A fixed number of identical intervals — the shape of the IPCxMEM
/// micro-suite's pinned-coordinate workloads.
#[derive(Debug, Clone)]
pub struct ConstantSource {
    name: String,
    work: IntervalWork,
    remaining: usize,
}

impl ConstantSource {
    /// Creates a source yielding `work` for `intervals` sampling intervals.
    #[must_use]
    pub fn new(name: impl Into<String>, work: IntervalWork, intervals: usize) -> Self {
        Self {
            name: name.into(),
            work,
            remaining: intervals,
        }
    }
}

impl IntervalSource for ConstantSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.work)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// The raw counter readings one sampling interval would deposit in the
/// PMI handler's log: the two programmable counters plus a cycle count.
///
/// This is the unit a *remote* phase-monitoring client ships over the
/// wire — no timing or power model attached, just what the hardware
/// counters say. Phase classification needs only `mem_transactions /
/// uops` (the DVFS-invariant Mem/Uop rate), so a stream of these is
/// sufficient for a server to reproduce the in-process governor's
/// decisions exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Micro-ops retired in the interval.
    pub uops: u64,
    /// Memory bus transactions in the interval (`BUS_TRAN_MEM`).
    pub mem_transactions: u64,
    /// Core (non-stall) cycles of the interval — the frequency-invariant
    /// component of the TSC delta. Informational only; decisions never
    /// depend on it.
    pub core_cycles: u64,
}

impl From<IntervalWork> for CounterSample {
    fn from(w: IntervalWork) -> Self {
        Self {
            uops: w.uops,
            mem_transactions: w.mem_transactions,
            core_cycles: (w.uops as f64 * w.cpi_core).round() as u64,
        }
    }
}

/// Adapts an [`IntervalSource`] into an iterator of [`CounterSample`]s —
/// the interval → wire-sample conversion used by network load generators.
#[derive(Debug)]
pub struct CounterSamples<S>(pub S);

impl<S: IntervalSource> Iterator for CounterSamples<S> {
    type Item = CounterSample;

    fn next(&mut self) -> Option<CounterSample> {
        self.0.next_interval().map(CounterSample::from)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.0.len_hint() {
            Some(n) => (n, Some(n)),
            None => (0, None),
        }
    }
}

/// Converts anything that streams intervals into its counter-sample
/// stream.
pub fn counter_samples(source: impl IntoIntervalSource) -> CounterSamples<impl IntervalSource> {
    CounterSamples(source.into_interval_source())
}

/// Adapts an [`IntervalSource`] to [`Iterator`] for use with iterator
/// combinators.
#[derive(Debug)]
pub struct SourceIter<S>(pub S);

impl<S: IntervalSource> Iterator for SourceIter<S> {
    type Item = IntervalWork;

    fn next(&mut self) -> Option<IntervalWork> {
        self.0.next_interval()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.0.len_hint() {
            Some(n) => (n, Some(n)),
            None => (0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn trace_cursor_replays_exactly() {
        let trace = spec::benchmark("applu_in")
            .unwrap()
            .with_length(20)
            .generate(3);
        let mut cursor = trace.stream();
        assert_eq!(cursor.name(), "applu_in");
        assert_eq!(cursor.len_hint(), Some(20));
        let replay: Vec<_> = std::iter::from_fn(|| cursor.next_interval()).collect();
        assert_eq!(replay.as_slice(), trace.intervals());
        assert_eq!(cursor.len_hint(), Some(0));
        assert!(cursor.next_interval().is_none());
    }

    #[test]
    fn owned_cursor_matches_borrowed() {
        let trace = spec::benchmark("swim_in")
            .unwrap()
            .with_length(10)
            .generate(4);
        let borrowed: Vec<_> = SourceIter(trace.stream()).collect();
        let owned: Vec<_> = SourceIter(trace.clone().into_interval_source()).collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn collect_trace_round_trips() {
        let trace = spec::benchmark("mcf_inp")
            .unwrap()
            .with_length(15)
            .generate(9);
        let rebuilt = trace.stream().collect_trace();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn constant_source_is_flat_and_finite() {
        let w = IntervalWork::new(1_000, 800, 10, 0.7, 2.0);
        let mut s = ConstantSource::new("flat", w, 3);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next_interval(), Some(w));
        assert_eq!(s.next_interval(), Some(w));
        assert_eq!(s.next_interval(), Some(w));
        assert_eq!(s.next_interval(), None);
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    fn counter_samples_mirror_the_interval_stream() {
        let trace = spec::benchmark("applu_in")
            .unwrap()
            .with_length(12)
            .generate(7);
        let samples: Vec<CounterSample> = counter_samples(&trace).collect();
        assert_eq!(samples.len(), 12);
        for (s, w) in samples.iter().zip(trace.intervals()) {
            assert_eq!(s.uops, w.uops);
            assert_eq!(s.mem_transactions, w.mem_transactions);
            // The rate the server classifies on is exactly the trace's.
            assert_eq!(
                s.mem_transactions as f64 / s.uops as f64,
                w.mem_uop(),
                "Mem/Uop must survive the conversion bit-exactly"
            );
        }
        assert_eq!(counter_samples(&trace).size_hint(), (12, Some(12)));
    }

    #[test]
    fn source_iter_reports_size() {
        let trace = spec::benchmark("applu_in")
            .unwrap()
            .with_length(8)
            .generate(1);
        let it = SourceIter(trace.stream());
        assert_eq!(it.size_hint(), (8, Some(8)));
        assert_eq!(it.count(), 8);
    }
}
