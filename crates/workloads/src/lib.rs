//! # livephase-workloads
//!
//! Synthetic workload generators standing in for the SPEC CPU2000 suite the
//! MICRO 2006 paper evaluates on, plus the paper's own **IPCxMEM**
//! characterization micro-suite.
//!
//! The paper's entire evaluation consumes workloads through one narrow
//! interface: the per-interval tuple *(uops, instructions, memory bus
//! transactions, core CPI, memory-level parallelism)* — everything else
//! (UPC, BIPS, power, phases) is derived by the platform model. A
//! benchmark is therefore reproduced by a generator whose interval stream
//! matches the real program's:
//!
//! * **marginal statistics** — average Mem/Uop ("power savings potential",
//!   the x-axis of the paper's Figure 3) and sample variability (the
//!   y-axis: % of consecutive samples moving > 0.005 in Mem/Uop), and
//! * **temporal structure** — constant, slowly wandering, or rapidly
//!   repeating phase patterns (the property the GPHT predictor exploits
//!   and statistical predictors miss).
//!
//! The [`spec`] module carries one calibrated [`BenchmarkSpec`] per SPEC
//! run shown in the paper's figures (33 in total), each documented with its
//! calibration targets. [`ipcxmem`] generates the grid of pinned
//! (UPC, Mem/Uop) points used in Section 4 to demonstrate DVFS invariance.
//!
//! ```
//! use livephase_workloads::spec;
//!
//! let applu = spec::benchmark("applu_in").expect("registered");
//! let trace = applu.generate(42);
//! let stats = trace.characterize();
//! // applu is the paper's running example of a highly variable workload.
//! assert!(stats.sample_variation_pct > 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod io;
pub mod ipcxmem;
pub mod level;
pub mod multiprogram;
pub mod pattern;
pub mod source;
pub mod spec;
pub mod trace;

pub use io::{from_csv, stream_csv, to_csv, CsvSource, TraceCsvError};
pub use ipcxmem::{IpcxMemConfig, IpcxMemSuite};
pub use level::PhaseLevel;
pub use multiprogram::{
    concatenate, round_robin, round_robin_source, Job, MultiProgramTrace, RoundRobinSource,
};
pub use pattern::{Movement, Step};
pub use source::{
    counter_samples, ConstantSource, CounterSample, CounterSamples, IntervalSource,
    IntoIntervalSource, OwnedTraceCursor, SourceIter, TraceCursor,
};
pub use spec::{benchmark, registry, BenchmarkSpec, Quadrant, SpecSource};
pub use trace::{TraceStats, WorkloadTrace};
