//! Multiprogrammed workload mixes.
//!
//! The paper's deployed system monitors whatever runs natively — including
//! multiprogrammed systems where the OS timeslices several applications
//! onto the core. From the PMI handler's viewpoint that interleaving
//! splices the programs' phase streams together, with abrupt behaviour
//! changes at every context switch. This module builds such mixes from
//! registered benchmarks, preserving the schedule (which process owned
//! each sampling interval) so process-aware predictors can be evaluated
//! against process-oblivious ones.

use crate::source::IntervalSource;
use crate::trace::WorkloadTrace;
use livephase_pmsim::timing::IntervalWork;
use serde::{Deserialize, Serialize};

/// One program in a mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Process identifier (as the OS scheduler would report at the PMI).
    pub pid: u32,
    /// The program's own phase trace.
    pub trace: WorkloadTrace,
}

impl Job {
    /// Creates a job.
    #[must_use]
    pub fn new(pid: u32, trace: WorkloadTrace) -> Self {
        Self { pid, trace }
    }
}

/// An interleaved mix: the merged interval stream plus the owning pid of
/// every sampling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProgramTrace {
    trace: WorkloadTrace,
    pids: Vec<u32>,
}

impl MultiProgramTrace {
    /// The merged workload trace.
    #[must_use]
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// The pid that owned each sampling interval.
    #[must_use]
    pub fn pids(&self) -> &[u32] {
        &self.pids
    }

    /// Number of sampling intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// Mixes are never empty; returns `false` (API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of context switches in the schedule.
    #[must_use]
    pub fn context_switches(&self) -> usize {
        self.pids.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Iterates `(pid, interval)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &IntervalWork)> + '_ {
        self.pids.iter().copied().zip(self.trace.iter())
    }
}

/// The OS timeslicer as a streaming [`IntervalSource`]: rotates among
/// member sources with a fixed timeslice, dropping members from the
/// rotation as they finish. Memory is O(members), independent of mix
/// length — member sources are pulled from lazily.
#[derive(Debug)]
pub struct RoundRobinSource<S> {
    name: String,
    members: Vec<(u32, S)>,
    timeslice: usize,
    /// Index of the member currently holding the (virtual) core.
    current: usize,
    /// Intervals the current member has consumed of its slice.
    taken: usize,
    /// Pid that owned the most recently emitted interval.
    last_pid: Option<u32>,
}

impl<S: IntervalSource> RoundRobinSource<S> {
    /// The pid that owned the interval most recently returned by
    /// [`next_interval`](IntervalSource::next_interval) — what the PMI
    /// handler would read from the OS at the sample.
    #[must_use]
    pub fn last_pid(&self) -> Option<u32> {
        self.last_pid
    }

    /// Produces the next interval together with its owning pid.
    pub fn next_tagged(&mut self) -> Option<(u32, IntervalWork)> {
        loop {
            if self.members.is_empty() {
                return None;
            }
            if self.taken == self.timeslice {
                self.current = (self.current + 1) % self.members.len();
                self.taken = 0;
            }
            let (pid, member) = &mut self.members[self.current];
            match member.next_interval() {
                Some(w) => {
                    self.taken += 1;
                    let pid = *pid;
                    self.last_pid = Some(pid);
                    return Some((pid, w));
                }
                // Member finished (possibly mid-slice): leave the rotation;
                // removal shifts the next member into `current`.
                None => {
                    self.members.remove(self.current);
                    self.taken = 0;
                    if self.current >= self.members.len() {
                        self.current = 0;
                    }
                }
            }
        }
    }
}

impl<S: IntervalSource> IntervalSource for RoundRobinSource<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        self.next_tagged().map(|(_, w)| w)
    }

    fn len_hint(&self) -> Option<usize> {
        // Every member runs to completion, so the mix length is the sum —
        // known only when every member knows its own.
        self.members
            .iter()
            .map(|(_, m)| m.len_hint())
            .try_fold(0usize, |acc, h| h.map(|n| acc + n))
    }
}

/// Round-robin schedules streaming `members` (pid-tagged sources) with a
/// fixed timeslice (in sampling intervals); members that finish drop out
/// of the rotation, as on a real scheduler.
///
/// # Panics
///
/// Panics if `members` is empty or `timeslice` is zero.
#[must_use]
pub fn round_robin_source<S: IntervalSource>(
    members: Vec<(u32, S)>,
    timeslice: usize,
    name: impl Into<String>,
) -> RoundRobinSource<S> {
    assert!(!members.is_empty(), "a mix needs at least one job");
    assert!(timeslice >= 1, "timeslice must be at least one interval");
    RoundRobinSource {
        name: name.into(),
        members,
        timeslice,
        current: 0,
        taken: 0,
        last_pid: None,
    }
}

/// Round-robin schedules `jobs` with a fixed timeslice (in sampling
/// intervals); jobs that finish drop out of the rotation, as on a real
/// scheduler. Materialized form of [`round_robin_source`].
///
/// # Panics
///
/// Panics if `jobs` is empty or `timeslice` is zero.
#[must_use]
pub fn round_robin(jobs: &[Job], timeslice: usize, name: &str) -> MultiProgramTrace {
    let members = jobs.iter().map(|j| (j.pid, j.trace.stream())).collect();
    let mut source = round_robin_source(members, timeslice, name);
    let mut intervals = Vec::with_capacity(source.len_hint().unwrap_or(0));
    let mut pids = Vec::with_capacity(intervals.capacity());
    while let Some((pid, w)) = source.next_tagged() {
        intervals.push(w);
        pids.push(pid);
    }
    MultiProgramTrace {
        trace: WorkloadTrace::new(name, intervals),
        pids,
    }
}

/// Runs `jobs` back to back (batch scheduling).
///
/// # Panics
///
/// Panics if `jobs` is empty.
#[must_use]
pub fn concatenate(jobs: &[Job], name: &str) -> MultiProgramTrace {
    assert!(!jobs.is_empty(), "a mix needs at least one job");
    let mut intervals = Vec::new();
    let mut pids = Vec::new();
    for j in jobs {
        intervals.extend(j.trace.intervals().iter().copied());
        pids.extend(std::iter::repeat_n(j.pid, j.trace.len()));
    }
    MultiProgramTrace {
        trace: WorkloadTrace::new(name, intervals),
        pids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn job(pid: u32, bench: &str, len: usize) -> Job {
        Job::new(
            pid,
            spec::benchmark(bench).unwrap().with_length(len).generate(1),
        )
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        let jobs = [job(1, "crafty_in", 10), job(2, "swim_in", 10)];
        let mix = round_robin(&jobs, 2, "mix");
        assert_eq!(mix.len(), 20);
        assert_eq!(mix.pids()[..6], [1, 1, 2, 2, 1, 1]);
        assert_eq!(mix.context_switches(), 9);
    }

    #[test]
    fn uneven_jobs_drop_out() {
        let jobs = [job(1, "crafty_in", 4), job(2, "swim_in", 12)];
        let mix = round_robin(&jobs, 2, "mix");
        assert_eq!(mix.len(), 16);
        // After job 1 exhausts, only pid 2 remains.
        assert!(mix.pids()[8..].iter().all(|&p| p == 2));
    }

    #[test]
    fn timeslice_of_entire_job_is_concatenation() {
        let jobs = [job(1, "crafty_in", 5), job(2, "swim_in", 5)];
        let rr = round_robin(&jobs, 5, "rr");
        let cat = concatenate(&jobs, "cat");
        assert_eq!(rr.trace().intervals(), cat.trace().intervals());
        assert_eq!(rr.pids(), cat.pids());
        assert_eq!(cat.context_switches(), 1);
    }

    #[test]
    fn iter_pairs_pid_with_interval() {
        let jobs = [job(7, "crafty_in", 3)];
        let mix = concatenate(&jobs, "solo");
        assert!(mix.iter().all(|(pid, w)| pid == 7 && w.uops > 0));
        assert!(!mix.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_mix_rejected() {
        let _ = round_robin(&[], 1, "none");
    }

    #[test]
    #[should_panic(expected = "timeslice")]
    fn zero_timeslice_rejected() {
        let _ = round_robin(&[job(1, "crafty_in", 2)], 0, "bad");
    }
}
