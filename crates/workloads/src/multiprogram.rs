//! Multiprogrammed workload mixes.
//!
//! The paper's deployed system monitors whatever runs natively — including
//! multiprogrammed systems where the OS timeslices several applications
//! onto the core. From the PMI handler's viewpoint that interleaving
//! splices the programs' phase streams together, with abrupt behaviour
//! changes at every context switch. This module builds such mixes from
//! registered benchmarks, preserving the schedule (which process owned
//! each sampling interval) so process-aware predictors can be evaluated
//! against process-oblivious ones.

use crate::trace::WorkloadTrace;
use livephase_pmsim::timing::IntervalWork;
use serde::{Deserialize, Serialize};

/// One program in a mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Process identifier (as the OS scheduler would report at the PMI).
    pub pid: u32,
    /// The program's own phase trace.
    pub trace: WorkloadTrace,
}

impl Job {
    /// Creates a job.
    #[must_use]
    pub fn new(pid: u32, trace: WorkloadTrace) -> Self {
        Self { pid, trace }
    }
}

/// An interleaved mix: the merged interval stream plus the owning pid of
/// every sampling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProgramTrace {
    trace: WorkloadTrace,
    pids: Vec<u32>,
}

impl MultiProgramTrace {
    /// The merged workload trace.
    #[must_use]
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// The pid that owned each sampling interval.
    #[must_use]
    pub fn pids(&self) -> &[u32] {
        &self.pids
    }

    /// Number of sampling intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pids.len()
    }

    /// Mixes are never empty; returns `false` (API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of context switches in the schedule.
    #[must_use]
    pub fn context_switches(&self) -> usize {
        self.pids.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Iterates `(pid, interval)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &IntervalWork)> + '_ {
        self.pids.iter().copied().zip(self.trace.iter())
    }
}

/// Round-robin schedules `jobs` with a fixed timeslice (in sampling
/// intervals); jobs that finish drop out of the rotation, as on a real
/// scheduler.
///
/// # Panics
///
/// Panics if `jobs` is empty or `timeslice` is zero.
#[must_use]
pub fn round_robin(jobs: &[Job], timeslice: usize, name: &str) -> MultiProgramTrace {
    assert!(!jobs.is_empty(), "a mix needs at least one job");
    assert!(timeslice >= 1, "timeslice must be at least one interval");
    let mut cursors: Vec<(u32, std::slice::Iter<'_, IntervalWork>)> = jobs
        .iter()
        .map(|j| (j.pid, j.trace.intervals().iter()))
        .collect();
    let mut intervals = Vec::new();
    let mut pids = Vec::new();
    while !cursors.is_empty() {
        cursors.retain_mut(|(pid, it)| {
            let mut took = 0;
            while took < timeslice {
                match it.next() {
                    Some(w) => {
                        intervals.push(*w);
                        pids.push(*pid);
                        took += 1;
                    }
                    // Job finished (possibly mid-slice): leave the rotation.
                    None => return false,
                }
            }
            true
        });
    }
    MultiProgramTrace {
        trace: WorkloadTrace::new(name, intervals),
        pids,
    }
}

/// Runs `jobs` back to back (batch scheduling).
///
/// # Panics
///
/// Panics if `jobs` is empty.
#[must_use]
pub fn concatenate(jobs: &[Job], name: &str) -> MultiProgramTrace {
    assert!(!jobs.is_empty(), "a mix needs at least one job");
    let mut intervals = Vec::new();
    let mut pids = Vec::new();
    for j in jobs {
        intervals.extend(j.trace.intervals().iter().copied());
        pids.extend(std::iter::repeat_n(j.pid, j.trace.len()));
    }
    MultiProgramTrace {
        trace: WorkloadTrace::new(name, intervals),
        pids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn job(pid: u32, bench: &str, len: usize) -> Job {
        Job::new(
            pid,
            spec::benchmark(bench).unwrap().with_length(len).generate(1),
        )
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        let jobs = [job(1, "crafty_in", 10), job(2, "swim_in", 10)];
        let mix = round_robin(&jobs, 2, "mix");
        assert_eq!(mix.len(), 20);
        assert_eq!(mix.pids()[..6], [1, 1, 2, 2, 1, 1]);
        assert_eq!(mix.context_switches(), 9);
    }

    #[test]
    fn uneven_jobs_drop_out() {
        let jobs = [job(1, "crafty_in", 4), job(2, "swim_in", 12)];
        let mix = round_robin(&jobs, 2, "mix");
        assert_eq!(mix.len(), 16);
        // After job 1 exhausts, only pid 2 remains.
        assert!(mix.pids()[8..].iter().all(|&p| p == 2));
    }

    #[test]
    fn timeslice_of_entire_job_is_concatenation() {
        let jobs = [job(1, "crafty_in", 5), job(2, "swim_in", 5)];
        let rr = round_robin(&jobs, 5, "rr");
        let cat = concatenate(&jobs, "cat");
        assert_eq!(rr.trace().intervals(), cat.trace().intervals());
        assert_eq!(rr.pids(), cat.pids());
        assert_eq!(cat.context_switches(), 1);
    }

    #[test]
    fn iter_pairs_pid_with_interval() {
        let jobs = [job(7, "crafty_in", 3)];
        let mix = concatenate(&jobs, "solo");
        assert!(mix.iter().all(|(pid, w)| pid == 7 && w.uops > 0));
        assert!(!mix.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_mix_rejected() {
        let _ = round_robin(&[], 1, "none");
    }

    #[test]
    #[should_panic(expected = "timeslice")]
    fn zero_timeslice_rejected() {
        let _ = round_robin(&[job(1, "crafty_in", 2)], 0, "bad");
    }
}
