//! Calibrated SPEC CPU2000 stand-ins: one [`BenchmarkSpec`] per run shown
//! in the paper's figures.
//!
//! ## Calibration methodology
//!
//! Each spec is tuned against three published anchors:
//!
//! 1. **Figure 3** — the (average Mem/Uop, sample-variation %) coordinate,
//!    which fixes the level values and the rate of large Mem/Uop moves;
//! 2. **Figure 4** — the last-value prediction accuracy, which fixes the
//!    *phase transition rate* (last-value accuracy ≈ 1 − transition rate),
//!    and the decreasing-accuracy order of the 33 runs;
//! 3. **Figures 11–13** — the DVFS outcome, which fixes how memory-bound
//!    each level is in *time* (its `cpi_core` and `mlp`): e.g. `swim` and
//!    `mcf` barely slow down at low frequency (> 60 % EDP gains), while
//!    the bzip2 runs have little to give (≈ 5 %).
//!
//! The temporal structure follows the paper's narrative: Q1/Q2 runs are
//! flat with sparse excursions; Q3/Q4 runs (`applu`, `equake`, `mgrid`,
//! bzip2) cycle rapidly through short repetitive phase patterns that a
//! pattern-based predictor can learn and statistical predictors cannot
//! (Figure 2).

use crate::level::PhaseLevel;
use crate::pattern::{standard_normal, Movement, Step};
use crate::source::IntervalSource;
use crate::trace::WorkloadTrace;
use livephase_pmsim::timing::IntervalWork;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The stability / power-savings quadrant a benchmark falls into in the
/// paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// Stable, little to save (most of SPEC).
    Q1,
    /// Stable, high savings potential (`swim`, `mcf`).
    Q2,
    /// Variable, high savings potential (`applu`, `equake`, `mgrid`) — the
    /// paper's most interesting category.
    Q3,
    /// Variable, lower savings potential (the bzip2 runs, `gcc_166`).
    Q4,
}

impl std::fmt::Display for Quadrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Quadrant::Q1 => "Q1",
            Quadrant::Q2 => "Q2",
            Quadrant::Q3 => "Q3",
            Quadrant::Q4 => "Q4",
        };
        f.write_str(s)
    }
}

/// A calibrated synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    name: String,
    quadrant: Quadrant,
    levels: Vec<PhaseLevel>,
    movements: Vec<Movement>,
    /// Standard deviation of the additive Gaussian noise on Mem/Uop.
    noise_sigma: f64,
    /// Probability that a step instance's dwell stretches or shrinks by one
    /// interval — real loops are only *quasi*-periodic, which is what keeps
    /// pattern predictors below 100 % and populates the PHT with pattern
    /// variants (the Figure 5 sensitivity).
    dwell_jitter: f64,
    /// Trace length in sampling intervals.
    length: usize,
    /// Micro-ops per sampling interval (100 M on the paper's platform).
    uops_per_interval: u64,
    /// Uops retired per architectural instruction.
    uop_per_instr: f64,
}

impl BenchmarkSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any movement references a level outside the level table,
    /// the level or movement lists are empty, `length` is zero, or the
    /// noise/uop parameters are out of range.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        quadrant: Quadrant,
        levels: Vec<PhaseLevel>,
        movements: Vec<Movement>,
        noise_sigma: f64,
        length: usize,
    ) -> Self {
        let name = name.into();
        assert!(!levels.is_empty(), "{name}: need at least one level");
        assert!(!movements.is_empty(), "{name}: need at least one movement");
        assert!(length >= 1, "{name}: trace length must be positive");
        assert!(
            noise_sigma.is_finite() && noise_sigma >= 0.0,
            "{name}: noise sigma must be finite and non-negative"
        );
        for m in &movements {
            assert!(
                m.max_level() < levels.len(),
                "{name}: movement references level {} but only {} levels exist",
                m.max_level(),
                levels.len()
            );
        }
        Self {
            name,
            quadrant,
            levels,
            movements,
            noise_sigma,
            dwell_jitter: 0.0,
            length,
            uops_per_interval: 100_000_000,
            uop_per_instr: 1.25,
        }
    }

    /// Sets the dwell-jitter probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn with_dwell_jitter(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "jitter must be a probability");
        self.dwell_jitter = p;
        self
    }

    /// The benchmark's name, e.g. `applu_in`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Figure 3 quadrant this benchmark is calibrated to.
    #[must_use]
    pub fn quadrant(&self) -> Quadrant {
        self.quadrant
    }

    /// The behaviour levels this benchmark visits.
    #[must_use]
    pub fn levels(&self) -> &[PhaseLevel] {
        &self.levels
    }

    /// Trace length in sampling intervals.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Overrides the trace length (builder style) — handy for quick tests
    /// and Criterion benches.
    #[must_use]
    pub fn with_length(mut self, length: usize) -> Self {
        assert!(length >= 1, "trace length must be positive");
        self.length = length;
        self
    }

    /// Generates the workload trace deterministically from `seed`.
    ///
    /// The same `(spec, seed)` pair always yields the identical trace; the
    /// benchmark name is mixed into the seed so different benchmarks
    /// decorrelate even under the same experiment seed.
    ///
    /// This is [`stream`](Self::stream) materialized — buffered and
    /// streaming execution are bit-identical by construction.
    #[must_use]
    pub fn generate(&self, seed: u64) -> WorkloadTrace {
        self.stream(seed).collect_trace()
    }

    /// Opens a lazy interval stream over the benchmark: the same seeded
    /// generation as [`generate`](Self::generate), one interval at a time,
    /// in O(1) memory.
    #[must_use]
    pub fn stream(&self, seed: u64) -> SpecSource<'_> {
        SpecSource {
            spec: self,
            rng: StdRng::seed_from_u64(seed ^ fnv1a(self.name.as_bytes())),
            produced: 0,
            movement: 0,
            repeat: 0,
            step: 0,
            level: 0,
            remaining_dwell: 0,
        }
    }

    /// Applies quasi-periodicity: with probability `dwell_jitter` a step
    /// instance runs one interval longer or shorter (never below one).
    fn jittered_dwell(&self, dwell: u32, rng: &mut StdRng) -> u32 {
        if self.dwell_jitter == 0.0 {
            return dwell;
        }
        let r: f64 = rand::Rng::gen(rng);
        if r < self.dwell_jitter / 2.0 {
            dwell.saturating_sub(1).max(1)
        } else if r < self.dwell_jitter {
            dwell + 1
        } else {
            dwell
        }
    }
}

/// The lazy generation state machine behind [`BenchmarkSpec::stream`]:
/// walks the movement → repeat → step nesting exactly as materialized
/// generation does, drawing the dwell jitter on step entry and the Mem/Uop
/// noise per emitted interval, so the RNG consumption order — and hence
/// the produced stream — is identical.
#[derive(Debug, Clone)]
pub struct SpecSource<'a> {
    spec: &'a BenchmarkSpec,
    rng: StdRng,
    produced: usize,
    /// Index of the movement the *next* step will come from.
    movement: usize,
    /// Repeat iteration within that movement.
    repeat: u32,
    /// Step index within the repeat.
    step: usize,
    /// Level of the step currently being emitted.
    level: usize,
    /// Intervals left in the current step's (jittered) dwell.
    remaining_dwell: u32,
}

impl SpecSource<'_> {
    /// Enters the next step of the movement walk, drawing its jittered
    /// dwell, and advances the walk position.
    fn enter_next_step(&mut self) {
        let movement = &self.spec.movements[self.movement];
        let step = movement.steps[self.step];
        self.remaining_dwell = self.spec.jittered_dwell(step.dwell, &mut self.rng);
        self.level = step.level;

        self.step += 1;
        if self.step == movement.steps.len() {
            self.step = 0;
            self.repeat += 1;
            if self.repeat == movement.repeats {
                self.repeat = 0;
                self.movement = (self.movement + 1) % self.spec.movements.len();
            }
        }
    }
}

impl IntervalSource for SpecSource<'_> {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        if self.produced == self.spec.length {
            return None;
        }
        // Steps always dwell >= 1, so this terminates after one entry.
        while self.remaining_dwell == 0 {
            self.enter_next_step();
        }
        let level = &self.spec.levels[self.level];
        let noise = self.spec.noise_sigma * standard_normal(&mut self.rng);
        let w = level.interval(
            self.spec.uops_per_interval,
            self.spec.uop_per_instr,
            level.mem_uop + noise,
        );
        self.remaining_dwell -= 1;
        self.produced += 1;
        Some(w)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.spec.length - self.produced)
    }
}

/// FNV-1a, used only to mix benchmark names into RNG seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Level constructors shared by the registry.
// ---------------------------------------------------------------------------

/// A CPU-bound level (phase 1 territory).
fn cpu(mem_uop: f64) -> PhaseLevel {
    PhaseLevel::new(mem_uop, 0.55, 2.0)
}

/// A lightly memory-flavoured level (phases 1–2): misses overlap well, the
/// core stays the bottleneck, so slowing the clock costs almost 1:1.
fn light(mem_uop: f64) -> PhaseLevel {
    PhaseLevel::new(mem_uop, 0.70, 2.5)
}

/// A mid-range level (phases 3–4): moderate overlap.
fn mid(mem_uop: f64) -> PhaseLevel {
    PhaseLevel::new(mem_uop, 0.80, 1.6)
}

/// A memory-bound level (phases 5–6): mostly serialized misses dominate
/// wall time, leaving large DVFS slack.
fn heavy(mem_uop: f64) -> PhaseLevel {
    PhaseLevel::new(mem_uop, 0.40, 1.1)
}

/// An extremely memory-bound level (`swim`/`mcf` style): the core is almost
/// idle; frequency hardly matters.
fn extreme(mem_uop: f64) -> PhaseLevel {
    PhaseLevel::new(mem_uop, 0.30, 1.0)
}

// ---------------------------------------------------------------------------
// Registry helpers for the recurring temporal shapes.
// ---------------------------------------------------------------------------

/// A mostly-flat run: dwells on level 0 and briefly visits level 1 once per
/// `period` intervals (`spike` intervals long). Transition rate ≈
/// `2·spike/period`.
fn flat_with_excursions(
    name: &str,
    quadrant: Quadrant,
    base: PhaseLevel,
    excursion: PhaseLevel,
    period: u32,
    spike: u32,
    noise: f64,
) -> BenchmarkSpec {
    assert!(period > spike, "{name}: period must exceed the excursion");
    BenchmarkSpec::new(
        name,
        quadrant,
        vec![base, excursion],
        vec![Movement::new(
            vec![Step::new(0, period - spike), Step::new(1, spike)],
            1,
        )],
        noise,
        DEFAULT_LENGTH,
    )
}

/// Default trace length: 2 000 intervals of 100 M uops ≈ 200 G uops,
/// comparable to a SPEC reference run.
const DEFAULT_LENGTH: usize = 2_000;

// ---------------------------------------------------------------------------
// The registry: all 33 runs of the paper's figures.
// ---------------------------------------------------------------------------

/// Builds the full registry of the 33 SPEC CPU2000 runs the paper
/// evaluates, ordered as in Figure 4 (decreasing last-value accuracy).
#[must_use]
#[allow(clippy::vec_init_then_push)] // one documented push per SPEC run
pub fn registry() -> Vec<BenchmarkSpec> {
    let mut v = Vec::with_capacity(33);

    // -------------------------------------------------- Q1: stable, flat.
    // Last-value accuracy 97–99.5 %; near the Figure 3 origin.
    v.push(flat_with_excursions(
        "crafty_in",
        Quadrant::Q1,
        cpu(0.0008),
        light(0.0060),
        400,
        1,
        0.0002,
    ));
    v.push(flat_with_excursions(
        "eon_cook",
        Quadrant::Q1,
        cpu(0.0004),
        light(0.0058),
        340,
        1,
        0.0002,
    ));
    v.push(flat_with_excursions(
        "eon_kajiya",
        Quadrant::Q1,
        cpu(0.0005),
        light(0.0058),
        300,
        1,
        0.0002,
    ));
    v.push(flat_with_excursions(
        "eon_rushmeier",
        Quadrant::Q1,
        cpu(0.0007),
        light(0.0060),
        210,
        1,
        0.0002,
    ));
    v.push(flat_with_excursions(
        "mesa_ref",
        Quadrant::Q1,
        cpu(0.0012),
        light(0.0062),
        200,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "vortex_lendian2",
        Quadrant::Q1,
        cpu(0.0028),
        light(0.0078),
        140,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "sixtrack_in",
        Quadrant::Q1,
        cpu(0.0003),
        light(0.0056),
        135,
        1,
        0.0002,
    ));

    // swim: Q2 — extremely memory bound and almost perfectly flat (it sits
    // on the x-axis of Figure 3). > 60 % EDP headroom.
    v.push(flat_with_excursions(
        "swim_in",
        Quadrant::Q2,
        extreme(0.0265),
        extreme(0.0330),
        100,
        1,
        0.0004,
    ));

    v.push(flat_with_excursions(
        "vortex_lendian1",
        Quadrant::Q1,
        cpu(0.0030),
        light(0.0080),
        100,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "twolf_ref",
        Quadrant::Q1,
        cpu(0.0022),
        light(0.0072),
        82,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "vortex_lendian3",
        Quadrant::Q1,
        cpu(0.0031),
        light(0.0081),
        68,
        1,
        0.0003,
    ));

    // The gzip family: compression bursts every few dozen intervals.
    v.push(flat_with_excursions(
        "gzip_program",
        Quadrant::Q1,
        cpu(0.0018),
        light(0.0068),
        50,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gzip_graphic",
        Quadrant::Q1,
        cpu(0.0026),
        light(0.0078),
        45,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gzip_random",
        Quadrant::Q1,
        cpu(0.0016),
        light(0.0066),
        40,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gzip_source",
        Quadrant::Q1,
        cpu(0.0020),
        light(0.0070),
        36,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gzip_log",
        Quadrant::Q1,
        cpu(0.0017),
        light(0.0067),
        33,
        1,
        0.0003,
    ));

    // mcf: Q2 — the most memory-bound program in SPEC (the broken x-axis
    // of Figure 3, ≈ 0.10 Mem/Uop), with occasional pointer-chase lulls.
    v.push(flat_with_excursions(
        "mcf_inp",
        Quadrant::Q2,
        extreme(0.1050),
        heavy(0.0220),
        28,
        1,
        0.0008,
    ));

    v.push(flat_with_excursions(
        "gcc_200",
        Quadrant::Q1,
        cpu(0.0032),
        light(0.0068),
        25,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gcc_scilab",
        Quadrant::Q1,
        cpu(0.0034),
        light(0.0070),
        22,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "wupwise_ref",
        Quadrant::Q1,
        cpu(0.0040),
        mid(0.0110),
        20,
        1,
        0.0004,
    ));
    v.push(flat_with_excursions(
        "gap_ref",
        Quadrant::Q1,
        cpu(0.0038),
        light(0.0072),
        18,
        1,
        0.0004,
    ));
    v.push(flat_with_excursions(
        "gcc_integrate",
        Quadrant::Q1,
        cpu(0.0033),
        light(0.0069),
        17,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "gcc_expr",
        Quadrant::Q1,
        cpu(0.0031),
        light(0.0067),
        15,
        1,
        0.0003,
    ));
    v.push(flat_with_excursions(
        "ammp_in",
        Quadrant::Q1,
        cpu(0.0040),
        mid(0.0120),
        14,
        1,
        0.0004,
    ));
    v.push(flat_with_excursions(
        "gcc_166",
        Quadrant::Q4,
        cpu(0.0030),
        mid(0.0090),
        12,
        1,
        0.0004,
    ));
    v.push(flat_with_excursions(
        "parser_ref",
        Quadrant::Q1,
        cpu(0.0038),
        light(0.0088),
        11,
        1,
        0.0004,
    ));
    v.push(flat_with_excursions(
        "apsi_ref",
        Quadrant::Q1,
        cpu(0.0040),
        mid(0.0110),
        11,
        1,
        0.0004,
    ));

    // ------------------------------------------- Q3/Q4: the variable six.
    // bzip2: block-sorting compression alternates scan / sort / entropy
    // phases. Lightly memory-flavoured (Q4: modest savings), rapid pattern.
    v.push(
        BenchmarkSpec::new(
            "bzip2_program",
            Quadrant::Q4,
            vec![cpu(0.0030), light(0.0078), mid(0.0128)],
            vec![
                // Scan/sort alternation while compressing a block...
                Movement::new(
                    vec![
                        Step::new(0, 5),
                        Step::new(1, 1),
                        Step::new(0, 6),
                        Step::new(2, 1),
                    ],
                    12,
                ),
                // ...then the entropy-coding tail of the block.
                Movement::new(
                    vec![
                        Step::new(0, 4),
                        Step::new(2, 1),
                        Step::new(0, 7),
                        Step::new(1, 1),
                    ],
                    12,
                ),
            ],
            0.0005,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.10),
    );

    // mgrid: multigrid V-cycles coarsen down the grid hierarchy —
    // a staircase through phases 2-3-4-5 with an abrupt restart back to
    // the fine grid (Q3). The restart is the big phase jump reactive
    // management keeps paying for.
    v.push(
        BenchmarkSpec::new(
            "mgrid_in",
            Quadrant::Q3,
            vec![cpu(0.0038), mid(0.0140), mid(0.0190), heavy(0.0270)],
            vec![Movement::new(
                vec![
                    Step::new(0, 4),
                    Step::new(1, 2),
                    Step::new(2, 2),
                    Step::new(3, 3),
                ],
                1,
            )],
            0.0006,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.05),
    );

    v.push(
        BenchmarkSpec::new(
            "bzip2_source",
            Quadrant::Q4,
            vec![cpu(0.0032), light(0.0080), mid(0.0130)],
            vec![
                Movement::new(
                    vec![
                        Step::new(0, 4),
                        Step::new(1, 1),
                        Step::new(0, 5),
                        Step::new(2, 2),
                    ],
                    12,
                ),
                Movement::new(
                    vec![
                        Step::new(0, 3),
                        Step::new(2, 1),
                        Step::new(0, 6),
                        Step::new(1, 2),
                    ],
                    12,
                ),
            ],
            0.0005,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.10),
    );

    v.push(
        BenchmarkSpec::new(
            "bzip2_graphic",
            Quadrant::Q4,
            vec![cpu(0.0035), light(0.0085), mid(0.0135)],
            vec![
                Movement::new(
                    vec![
                        Step::new(0, 4),
                        Step::new(1, 1),
                        Step::new(0, 4),
                        Step::new(2, 1),
                    ],
                    12,
                ),
                Movement::new(
                    vec![
                        Step::new(0, 3),
                        Step::new(2, 1),
                        Step::new(0, 5),
                        Step::new(1, 1),
                    ],
                    12,
                ),
            ],
            0.0005,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.10),
    );

    // applu: the paper's running example (Figure 2) — rapid, distinctly
    // repetitive swings between CPU-bound and memory-bound phases, with
    // two alternating outer movements.
    v.push(
        BenchmarkSpec::new(
            "applu_in",
            Quadrant::Q3,
            vec![cpu(0.0015), light(0.0085), mid(0.0135), heavy(0.0280)],
            vec![
                // Main SSOR sweep: 1 1 1 3 6 6 3 …
                Movement::new(
                    vec![
                        Step::new(0, 3),
                        Step::new(2, 1),
                        Step::new(3, 2),
                        Step::new(2, 1),
                    ],
                    30,
                ),
                // Jacobian build: 1 1 1 2 3 3 2 …
                Movement::new(
                    vec![
                        Step::new(0, 3),
                        Step::new(1, 1),
                        Step::new(2, 2),
                        Step::new(1, 1),
                    ],
                    30,
                ),
            ],
            0.0006,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.05),
    );

    // equake: the most variable run (top of Figure 3) and the best
    // EDP win among Q3 (34 %): heavy phases dominate, punctuated by
    // CPU-bound stretches.
    v.push(
        BenchmarkSpec::new(
            "equake_in",
            Quadrant::Q3,
            vec![cpu(0.0020), mid(0.0160), heavy(0.0330), heavy(0.0240)],
            vec![
                Movement::new(
                    vec![
                        Step::new(2, 2),
                        Step::new(1, 2),
                        Step::new(0, 2),
                        Step::new(1, 1),
                    ],
                    25,
                ),
                Movement::new(
                    vec![
                        Step::new(2, 1),
                        Step::new(3, 2),
                        Step::new(0, 2),
                        Step::new(1, 2),
                    ],
                    25,
                ),
            ],
            0.0007,
            DEFAULT_LENGTH,
        )
        .with_dwell_jitter(0.06),
    );

    v
}

/// Looks a benchmark up by name.
#[must_use]
pub fn benchmark(name: &str) -> Option<BenchmarkSpec> {
    registry().into_iter().find(|b| b.name() == name)
}

/// The names of the paper's "variable six" (the rightmost benchmarks of
/// Figure 4, i.e. Q3 + Q4 minus `gcc_166`), in Figure 4 order.
#[must_use]
pub fn variable_six() -> [&'static str; 6] {
    [
        "bzip2_program",
        "mgrid_in",
        "bzip2_source",
        "bzip2_graphic",
        "applu_in",
        "equake_in",
    ]
}

/// The benchmarks of Figure 12: the high-savings Q2 pair plus the variable
/// Q3/Q4 runs.
#[must_use]
pub fn figure12_set() -> [&'static str; 8] {
    [
        "bzip2_program",
        "bzip2_source",
        "bzip2_graphic",
        "mgrid_in",
        "applu_in",
        "equake_in",
        "swim_in",
        "mcf_inp",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_33_runs() {
        let r = registry();
        assert_eq!(r.len(), 33);
        let mut names: Vec<&str> = r.iter().map(BenchmarkSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 33, "names must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("applu_in").is_some());
        assert!(benchmark("doom_eternal").is_none());
    }

    /// The pre-streaming materialized generator, kept as an independent
    /// reference: the `SpecSource` state machine must consume the RNG in
    /// exactly this order.
    fn reference_generate(spec: &BenchmarkSpec, seed: u64) -> Vec<IntervalWork> {
        let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(spec.name.as_bytes()));
        let mut intervals = Vec::with_capacity(spec.length);
        'outer: loop {
            for movement in &spec.movements {
                for _ in 0..movement.repeats {
                    for step in &movement.steps {
                        let dwell = spec.jittered_dwell(step.dwell, &mut rng);
                        for _ in 0..dwell {
                            if intervals.len() == spec.length {
                                break 'outer;
                            }
                            let level = &spec.levels[step.level];
                            let noise = spec.noise_sigma * standard_normal(&mut rng);
                            intervals.push(level.interval(
                                spec.uops_per_interval,
                                spec.uop_per_instr,
                                level.mem_uop + noise,
                            ));
                        }
                    }
                }
            }
        }
        intervals
    }

    #[test]
    fn stream_matches_the_materialized_reference_generator() {
        for spec in registry() {
            let spec = spec.with_length(150);
            for seed in [0, 42] {
                assert_eq!(
                    spec.generate(seed).intervals(),
                    reference_generate(&spec, seed).as_slice(),
                    "{} seed {seed}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn stream_len_hint_counts_down() {
        let spec = benchmark("applu_in").unwrap().with_length(5);
        let mut s = spec.stream(1);
        assert_eq!(s.len_hint(), Some(5));
        let _ = s.next_interval();
        assert_eq!(s.len_hint(), Some(4));
        assert_eq!(s.name(), "applu_in");
        while s.next_interval().is_some() {}
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = benchmark("applu_in").unwrap();
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
        let c = spec.generate(8);
        assert_ne!(a, c, "different seeds decorrelate");
    }

    #[test]
    fn traces_have_requested_length() {
        for spec in registry() {
            let t = spec.generate(1);
            assert_eq!(t.len(), spec.length(), "{}", spec.name());
        }
    }

    #[test]
    fn with_length_shrinks() {
        let spec = benchmark("applu_in").unwrap().with_length(50);
        assert_eq!(spec.generate(1).len(), 50);
    }

    #[test]
    fn quadrant_assignment_matches_figure3() {
        let find = |n: &str| benchmark(n).unwrap().quadrant();
        assert_eq!(find("swim_in"), Quadrant::Q2);
        assert_eq!(find("mcf_inp"), Quadrant::Q2);
        assert_eq!(find("applu_in"), Quadrant::Q3);
        assert_eq!(find("equake_in"), Quadrant::Q3);
        assert_eq!(find("mgrid_in"), Quadrant::Q3);
        assert_eq!(find("bzip2_source"), Quadrant::Q4);
        assert_eq!(find("crafty_in"), Quadrant::Q1);
    }

    #[test]
    fn applu_is_highly_variable_and_equake_more_so() {
        let applu = benchmark("applu_in").unwrap().generate(3).characterize();
        let equake = benchmark("equake_in").unwrap().generate(3).characterize();
        assert!(
            applu.sample_variation_pct > 35.0,
            "applu variation {}",
            applu.sample_variation_pct
        );
        assert!(equake.sample_variation_pct > applu.sample_variation_pct);
    }

    #[test]
    fn q1_benchmarks_are_stable() {
        for name in ["crafty_in", "eon_cook", "mesa_ref", "sixtrack_in"] {
            let s = benchmark(name).unwrap().generate(3).characterize();
            assert!(
                s.sample_variation_pct < 5.0,
                "{name} variation {}",
                s.sample_variation_pct
            );
            assert!(s.mean_mem_uop < 0.005, "{name} mean {}", s.mean_mem_uop);
        }
    }

    #[test]
    fn mcf_is_the_most_memory_bound() {
        let r = registry();
        let mcf = benchmark("mcf_inp").unwrap().generate(3).characterize();
        for spec in &r {
            if spec.name() == "mcf_inp" {
                continue;
            }
            let s = spec.generate(3).characterize();
            assert!(
                s.mean_mem_uop < mcf.mean_mem_uop,
                "{} should be less memory-bound than mcf",
                spec.name()
            );
        }
        assert!(mcf.mean_mem_uop > 0.09, "mcf mean {}", mcf.mean_mem_uop);
    }

    #[test]
    fn swim_sits_on_the_x_axis() {
        let s = benchmark("swim_in").unwrap().generate(3).characterize();
        assert!(s.sample_variation_pct < 5.0);
        assert!(s.mean_mem_uop > 0.02);
    }

    #[test]
    fn figure12_set_is_registered() {
        for name in figure12_set() {
            assert!(benchmark(name).is_some(), "{name} missing");
        }
        for name in variable_six() {
            assert!(benchmark(name).is_some(), "{name} missing");
        }
    }

    #[test]
    #[should_panic(expected = "references level")]
    fn movement_level_bounds_are_validated() {
        let _ = BenchmarkSpec::new(
            "broken",
            Quadrant::Q1,
            vec![cpu(0.001)],
            vec![Movement::constant(3, 10)],
            0.0,
            10,
        );
    }
}
