//! CSV import/export of workload traces.
//!
//! The paper's monitoring side logs per-interval counter values; a real
//! deployment of this library would replay such logs instead of synthetic
//! generators. The format is one header line plus one row per sampling
//! interval:
//!
//! ```csv
//! uops,instructions,mem_transactions,cpi_core,mlp
//! 100000000,80000000,1200000,0.8,2.0
//! ```

use crate::source::IntervalSource;
use crate::trace::WorkloadTrace;
use livephase_pmsim::timing::IntervalWork;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// The CSV header the exporter writes and the importer requires.
pub const CSV_HEADER: &str = "uops,instructions,mem_transactions,cpi_core,mlp";

/// Error importing a trace from CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCsvError {
    /// The input had no header line.
    MissingHeader,
    /// The header did not match [`CSV_HEADER`].
    BadHeader {
        /// The header actually found.
        found: String,
    },
    /// A data row had the wrong number of fields or an unparsable value.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file contained a header but no data rows.
    Empty,
}

impl fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingHeader => write!(f, "trace CSV is missing its header line"),
            Self::BadHeader { found } => {
                write!(f, "unexpected header {found:?}; expected {CSV_HEADER:?}")
            }
            Self::BadRow { line, reason } => write!(f, "line {line}: {reason}"),
            Self::Empty => write!(f, "trace CSV contains no sampling intervals"),
        }
    }
}

impl Error for TraceCsvError {}

/// Serializes a trace to CSV.
#[must_use]
pub fn to_csv(trace: &WorkloadTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 48);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for w in trace {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            w.uops, w.instructions, w.mem_transactions, w.cpi_core, w.mlp
        );
    }
    out
}

/// Parses one data row (1-based `row` for error messages).
fn parse_row(row: usize, line: &str) -> Result<IntervalWork, TraceCsvError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 5 {
        return Err(TraceCsvError::BadRow {
            line: row,
            reason: format!("expected 5 fields, found {}", fields.len()),
        });
    }
    let parse_u64 = |s: &str, what: &str| {
        s.trim().parse::<u64>().map_err(|e| TraceCsvError::BadRow {
            line: row,
            reason: format!("{what}: {e}"),
        })
    };
    let parse_f64 = |s: &str, what: &str| {
        s.trim().parse::<f64>().map_err(|e| TraceCsvError::BadRow {
            line: row,
            reason: format!("{what}: {e}"),
        })
    };
    let uops = parse_u64(fields[0], "uops")?;
    let instructions = parse_u64(fields[1], "instructions")?;
    let mem = parse_u64(fields[2], "mem_transactions")?;
    let cpi = parse_f64(fields[3], "cpi_core")?;
    let mlp = parse_f64(fields[4], "mlp")?;
    // NaNs fail these comparisons and are rejected with the rest.
    let physical = cpi > 0.0 && mlp >= 1.0 && cpi.is_finite() && mlp.is_finite();
    if uops == 0 || !physical {
        return Err(TraceCsvError::BadRow {
            line: row,
            reason: "uops must be positive, cpi_core > 0, mlp >= 1".to_owned(),
        });
    }
    Ok(IntervalWork::new(uops, instructions, mem, cpi, mlp))
}

/// A lazy CSV replay: the header is validated up front, data rows parse
/// one at a time as the platform pulls intervals — a counter log replays
/// without ever being buffered whole.
///
/// A malformed row ends the stream; the deferred error is reported by
/// [`error`](Self::error) (streaming has no other channel for it).
#[derive(Debug, Clone)]
pub struct CsvSource<'a> {
    name: String,
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    error: Option<TraceCsvError>,
}

impl CsvSource<'_> {
    /// The parse error that terminated the stream, if any.
    #[must_use]
    pub fn error(&self) -> Option<&TraceCsvError> {
        self.error.as_ref()
    }
}

impl IntervalSource for CsvSource<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_interval(&mut self) -> Option<IntervalWork> {
        if self.error.is_some() {
            return None;
        }
        for (idx, line) in self.lines.by_ref() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_row(idx + 1, line) {
                Ok(w) => return Some(w),
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
        None
    }
}

/// Opens a CSV trace as a streaming [`IntervalSource`], validating the
/// header eagerly.
///
/// # Errors
///
/// Returns [`TraceCsvError::MissingHeader`] / [`TraceCsvError::BadHeader`]
/// for header problems; row errors surface lazily via
/// [`CsvSource::error`].
pub fn stream_csv<'a>(
    name: impl Into<String>,
    csv: &'a str,
) -> Result<CsvSource<'a>, TraceCsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(TraceCsvError::MissingHeader)?;
    if header.trim() != CSV_HEADER {
        return Err(TraceCsvError::BadHeader {
            found: header.trim().to_owned(),
        });
    }
    Ok(CsvSource {
        name: name.into(),
        lines,
        error: None,
    })
}

/// Parses a trace from CSV.
///
/// # Errors
///
/// Returns a [`TraceCsvError`] describing the first malformed line.
pub fn from_csv(name: &str, csv: &str) -> Result<WorkloadTrace, TraceCsvError> {
    let mut source = stream_csv(name, csv)?;
    let mut intervals = Vec::new();
    while let Some(w) = source.next_interval() {
        intervals.push(w);
    }
    if let Some(e) = source.error {
        return Err(e);
    }
    if intervals.is_empty() {
        return Err(TraceCsvError::Empty);
    }
    Ok(WorkloadTrace::new(name, intervals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn round_trip_preserves_the_trace() {
        let original = spec::benchmark("applu_in")
            .unwrap()
            .with_length(40)
            .generate(5);
        let csv = to_csv(&original);
        let restored = from_csv("applu_in", &csv).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(from_csv("x", ""), Err(TraceCsvError::MissingHeader));
    }

    #[test]
    fn rejects_wrong_header() {
        let err = from_csv("x", "a,b,c\n1,2,3").unwrap_err();
        assert!(matches!(err, TraceCsvError::BadHeader { .. }));
    }

    #[test]
    fn rejects_short_rows() {
        let csv = format!("{CSV_HEADER}\n1,2,3\n");
        let err = from_csv("x", &csv).unwrap_err();
        assert!(matches!(err, TraceCsvError::BadRow { line: 2, .. }));
    }

    #[test]
    fn rejects_unparsable_values() {
        let csv = format!("{CSV_HEADER}\n1,2,3,potato,1.0\n");
        let err = from_csv("x", &csv).unwrap_err();
        assert!(err.to_string().contains("cpi_core"));
    }

    #[test]
    fn rejects_invalid_physics() {
        let csv = format!("{CSV_HEADER}\n100,80,5,0.8,0.5\n");
        let err = from_csv("x", &csv).unwrap_err();
        assert!(err.to_string().contains("mlp"));
    }

    #[test]
    fn rejects_empty_body() {
        let csv = format!("{CSV_HEADER}\n\n");
        assert_eq!(from_csv("x", &csv), Err(TraceCsvError::Empty));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = format!("{CSV_HEADER}\n\n100,80,5,0.8,2.0\n\n");
        let t = from_csv("x", &csv).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn stream_is_lazy_about_row_errors() {
        // One good row, then a malformed one: the stream yields the good
        // interval and parks the error instead of failing eagerly.
        let csv = format!("{CSV_HEADER}\n100,80,5,0.8,2.0\n1,2,3\n");
        let mut s = stream_csv("x", &csv).unwrap();
        assert!(s.error().is_none());
        assert!(s.next_interval().is_some());
        assert!(s.next_interval().is_none());
        assert!(matches!(
            s.error(),
            Some(TraceCsvError::BadRow { line: 3, .. })
        ));
        // The stream stays terminated.
        assert!(s.next_interval().is_none());
        // And the materialized API reports the same error.
        assert!(matches!(
            from_csv("x", &csv),
            Err(TraceCsvError::BadRow { line: 3, .. })
        ));
    }

    #[test]
    fn stream_matches_materialized_import() {
        let original = spec::benchmark("mcf_inp")
            .unwrap()
            .with_length(25)
            .generate(7);
        let csv = to_csv(&original);
        let mut s = stream_csv("mcf_inp", &csv).unwrap();
        assert_eq!(s.name(), "mcf_inp");
        let streamed: Vec<_> = std::iter::from_fn(|| s.next_interval()).collect();
        assert_eq!(streamed.as_slice(), original.intervals());
        assert!(s.error().is_none());
    }

    #[test]
    fn errors_render() {
        for e in [
            TraceCsvError::MissingHeader,
            TraceCsvError::BadHeader { found: "x".into() },
            TraceCsvError::BadRow {
                line: 3,
                reason: "nope".into(),
            },
            TraceCsvError::Empty,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
