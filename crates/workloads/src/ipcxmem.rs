//! The IPCxMEM characterization suite (Section 4 of the paper).
//!
//! The paper develops "a suite of configurable applications that can
//! pinpoint specific (UPC, Mem/Uop) coordinates" to probe how the tracked
//! metrics respond to DVFS at *all* corners of the behaviour space, not
//! just where SPEC happens to land. The suite covers a grid over the
//! space (Figure 6) and is re-run at every frequency (Figure 7); Section
//! 6.3 reuses it to derive performance-bounded phase definitions.
//!
//! Here the suite is reproduced by inverting the platform timing model:
//! given a target `(UPC @ f_ref, Mem/Uop)`, solve for the `(cpi_core, MLP)`
//! pair that realizes it. Two regimes exist:
//!
//! * misses are kept as serialized as possible (minimal MLP): this
//!   maximizes the frequency-invariant share of wall time, matching the
//!   paper's observation of up to ≈ 80 % UPC movement for the most
//!   memory-bound configurations;
//! * MLP is raised only when the core-CPI floor would otherwise be
//!   violated, and is bounded by `max_mlp` (the hardware outstanding-miss
//!   limit), which produces the achievable-UPC frontier ("SPEC boundary")
//!   of Figure 6.

use crate::level::PhaseLevel;
use crate::source::{ConstantSource, IntervalSource};
use crate::trace::WorkloadTrace;
use livephase_pmsim::opp::Frequency;
use livephase_pmsim::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// A requested coordinate in the (UPC, Mem/Uop) behaviour space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpcxMemConfig {
    /// Target micro-ops per cycle at the suite's reference frequency.
    pub target_upc: f64,
    /// Target memory bus transactions per micro-op.
    pub mem_uop: f64,
}

impl IpcxMemConfig {
    /// A short identifier, e.g. `ipcxmem_u0.90_m0.0075`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("ipcxmem_u{:.2}_m{:.4}", self.target_upc, self.mem_uop)
    }
}

/// The configurable micro-suite: a solver from behaviour-space coordinates
/// to executable workload levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcxMemSuite {
    timing: TimingModel,
    reference: Frequency,
    /// Minimum realizable core CPI (issue-width limit).
    min_cpi_core: f64,
    /// Maximum overlapped misses (MSHR limit).
    max_mlp: f64,
}

impl IpcxMemSuite {
    /// The suite as configured for the paper's platform: 1500 MHz reference
    /// frequency, 0.5 minimum core CPI (the ≈ 2-uop-wide Pentium-M), and at
    /// most 5 overlapped misses.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            timing: TimingModel::pentium_m(),
            reference: Frequency::from_mhz(1500),
            min_cpi_core: 0.5,
            max_mlp: 5.0,
        }
    }

    /// The reference frequency at which targets are specified.
    #[must_use]
    pub fn reference_frequency(&self) -> Frequency {
        self.reference
    }

    /// The highest UPC achievable at the given Mem/Uop — the frontier
    /// curve of Figure 6.
    #[must_use]
    pub fn max_upc(&self, mem_uop: f64) -> f64 {
        let mem_cycles =
            mem_uop * self.timing.mem_latency_ns * 1e-9 * self.reference.hz() / self.max_mlp;
        1.0 / (self.min_cpi_core + mem_cycles)
    }

    /// Solves a target coordinate into an executable [`PhaseLevel`].
    ///
    /// Returns `None` when the coordinate lies beyond the achievable
    /// frontier (cf. [`max_upc`](Self::max_upc)) or below the minimum
    /// sensible UPC.
    #[must_use]
    pub fn solve(&self, config: IpcxMemConfig) -> Option<PhaseLevel> {
        let IpcxMemConfig {
            target_upc,
            mem_uop,
        } = config;
        if !(target_upc > 0.0 && target_upc.is_finite()) || mem_uop < 0.0 {
            return None;
        }
        let total_cpi = 1.0 / target_upc;
        if total_cpi <= self.min_cpi_core {
            return None;
        }
        // Memory cycles per uop at MLP = 1 and the reference frequency.
        let mem_cycles_serial = mem_uop * self.timing.mem_latency_ns * 1e-9 * self.reference.hz();
        // Keep misses as serialized as the core-CPI floor allows.
        let mlp = (mem_cycles_serial / (total_cpi - self.min_cpi_core)).max(1.0);
        if mlp > self.max_mlp {
            return None;
        }
        let cpi_core = total_cpi - mem_cycles_serial / mlp;
        debug_assert!(cpi_core >= self.min_cpi_core - 1e-12 || mlp == 1.0);
        Some(PhaseLevel::new(mem_uop, cpi_core, mlp))
    }

    /// The grid of Figure 6: UPC from 0.1 to 1.9 in steps of 0.2 crossed
    /// with Mem/Uop levels from 0 to 0.0475, keeping only achievable
    /// coordinates (≈ 50 configurations, as in the paper).
    #[must_use]
    pub fn grid(&self) -> Vec<IpcxMemConfig> {
        let mut configs = Vec::new();
        let mem_levels = [
            0.0, 0.0025, 0.0075, 0.0125, 0.0175, 0.0225, 0.0275, 0.0325, 0.0375, 0.0425, 0.0475,
        ];
        for i in 0..10 {
            let upc = 0.1 + 0.2 * f64::from(i);
            for &m in &mem_levels {
                let cfg = IpcxMemConfig {
                    target_upc: upc,
                    mem_uop: m,
                };
                if self.solve(cfg).is_some() {
                    configs.push(cfg);
                }
            }
        }
        configs
    }

    /// Opens a solved configuration as a streaming source of `intervals`
    /// identical 100 M-uop sampling intervals — O(1) memory regardless of
    /// run length.
    ///
    /// Returns `None` when the coordinate is not achievable.
    #[must_use]
    pub fn source(&self, config: IpcxMemConfig, intervals: usize) -> Option<ConstantSource> {
        let level = self.solve(config)?;
        let work = level.interval(100_000_000, 1.25, level.mem_uop);
        Some(ConstantSource::new(config.name(), work, intervals))
    }

    /// Materializes a solved configuration as a constant workload trace of
    /// `intervals` 100 M-uop sampling intervals.
    ///
    /// Returns `None` when the coordinate is not achievable.
    #[must_use]
    pub fn trace(&self, config: IpcxMemConfig, intervals: usize) -> Option<WorkloadTrace> {
        Some(self.source(config, intervals)?.collect_trace())
    }
}

impl Default for IpcxMemSuite {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite() -> IpcxMemSuite {
        IpcxMemSuite::pentium_m()
    }

    #[test]
    fn solved_levels_hit_their_targets() {
        let s = suite();
        for cfg in s.grid() {
            let level = s.solve(cfg).expect("grid points are feasible");
            // Verify forward through the timing model.
            let work = level.interval(100_000_000, 1.25, level.mem_uop);
            let upc = s.timing.upc(&work, s.reference);
            assert!(
                (upc - cfg.target_upc).abs() < 0.02,
                "{}: wanted UPC {}, got {upc}",
                cfg.name(),
                cfg.target_upc
            );
            assert!((work.mem_uop() - cfg.mem_uop).abs() < 1e-4);
        }
    }

    #[test]
    fn grid_covers_roughly_fifty_points() {
        let n = suite().grid().len();
        assert!(
            (35..=75).contains(&n),
            "expected a Figure 6-sized grid, got {n} points"
        );
    }

    #[test]
    fn frontier_excludes_impossible_points() {
        let s = suite();
        // CPU-bound fast code is fine...
        assert!(s
            .solve(IpcxMemConfig {
                target_upc: 1.9,
                mem_uop: 0.0
            })
            .is_some());
        // ...but fast *and* extremely memory-bound is not achievable.
        assert!(s
            .solve(IpcxMemConfig {
                target_upc: 1.9,
                mem_uop: 0.045
            })
            .is_none());
    }

    #[test]
    fn max_upc_is_decreasing_in_memory_boundedness() {
        let s = suite();
        let mut prev = f64::INFINITY;
        for m in [0.0, 0.01, 0.02, 0.03, 0.04, 0.05] {
            let u = s.max_upc(m);
            assert!(u < prev);
            prev = u;
        }
        assert!((s.max_upc(0.0) - 2.0).abs() < 1e-9, "1/min_cpi_core at m=0");
    }

    #[test]
    fn mem_uop_is_frequency_invariant_and_upc_is_not() {
        let s = suite();
        let cfg = IpcxMemConfig {
            target_upc: 0.1,
            mem_uop: 0.0475,
        };
        let level = s.solve(cfg).unwrap();
        let work = level.interval(100_000_000, 1.25, level.mem_uop);
        let upc_fast = s.timing.upc(&work, Frequency::from_mhz(1500));
        let upc_slow = s.timing.upc(&work, Frequency::from_mhz(600));
        // Figure 7: memory-bound UPC rises substantially at low frequency…
        assert!(
            upc_slow / upc_fast > 1.5,
            "UPC should rise >50% ({upc_fast} -> {upc_slow})"
        );
        // …while Mem/Uop is a pure work property (same IntervalWork).
        assert!((work.mem_uop() - 0.0475).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_upc_is_flat_across_frequency() {
        let s = suite();
        let level = s
            .solve(IpcxMemConfig {
                target_upc: 0.9,
                mem_uop: 0.0,
            })
            .unwrap();
        let work = level.interval(100_000_000, 1.25, 0.0);
        let a = s.timing.upc(&work, Frequency::from_mhz(1500));
        let b = s.timing.upc(&work, Frequency::from_mhz(600));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn trace_materialization() {
        let s = suite();
        let cfg = IpcxMemConfig {
            target_upc: 0.5,
            mem_uop: 0.0225,
        };
        let t = s.trace(cfg, 10).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.name(), "ipcxmem_u0.50_m0.0225");
        let st = t.characterize();
        assert_eq!(st.sample_variation_pct, 0.0, "suite apps are constant");
    }

    #[test]
    fn source_streams_what_trace_materializes() {
        let s = suite();
        let cfg = IpcxMemConfig {
            target_upc: 0.7,
            mem_uop: 0.0125,
        };
        let mut src = s.source(cfg, 6).unwrap();
        assert_eq!(src.len_hint(), Some(6));
        let streamed: Vec<_> = std::iter::from_fn(|| src.next_interval()).collect();
        assert_eq!(streamed.as_slice(), s.trace(cfg, 6).unwrap().intervals());
    }

    #[test]
    fn infeasible_trace_is_none() {
        let s = suite();
        assert!(s
            .trace(
                IpcxMemConfig {
                    target_upc: 5.0,
                    mem_uop: 0.0
                },
                5
            )
            .is_none());
        assert!(s
            .solve(IpcxMemConfig {
                target_upc: -1.0,
                mem_uop: 0.0
            })
            .is_none());
    }
}
