//! Phase levels: the steady-state operating behaviours a workload visits.

use livephase_pmsim::timing::IntervalWork;
use serde::{Deserialize, Serialize};

/// One steady-state behaviour of a workload: a target Mem/Uop rate plus the
/// core-side execution characteristics that determine how time-sensitive
/// the behaviour is to frequency scaling.
///
/// Two workloads with the same Mem/Uop can have very different DVFS
/// headroom: a level with low `mlp` (serialized misses) spends most wall
/// time waiting on memory and barely slows down at low frequency, while a
/// high-`mlp` level overlaps its misses and stays core-limited.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseLevel {
    /// Memory bus transactions per micro-op.
    pub mem_uop: f64,
    /// Core cycles per micro-op excluding memory stalls.
    pub cpi_core: f64,
    /// Memory-level parallelism (≥ 1).
    pub mlp: f64,
}

impl PhaseLevel {
    /// Creates a level.
    ///
    /// # Panics
    ///
    /// Panics if any field is non-finite, `mem_uop` is negative,
    /// `cpi_core` is not positive, or `mlp < 1`.
    #[must_use]
    pub fn new(mem_uop: f64, cpi_core: f64, mlp: f64) -> Self {
        assert!(
            mem_uop.is_finite() && mem_uop >= 0.0,
            "mem_uop must be finite and non-negative"
        );
        assert!(
            cpi_core.is_finite() && cpi_core > 0.0,
            "cpi_core must be positive"
        );
        assert!(mlp.is_finite() && mlp >= 1.0, "mlp must be >= 1");
        Self {
            mem_uop,
            cpi_core,
            mlp,
        }
    }

    /// A CPU-bound level: negligible memory traffic.
    #[must_use]
    pub fn cpu_bound() -> Self {
        Self::new(0.001, 0.55, 2.0)
    }

    /// A strongly memory-bound level with mostly serialized misses.
    #[must_use]
    pub fn memory_bound() -> Self {
        Self::new(0.035, 0.8, 1.3)
    }

    /// The reference behaviour family: the SPEC-like level observed at a
    /// given memory intensity.
    ///
    /// The paper derives its phase → DVFS domains from the behaviour "for
    /// the common lowest observed concurrency" of its benchmarks
    /// (Section 2) and re-derives conservative domains from IPCxMEM
    /// measurements around the same operating region (Section 6.3). This
    /// function is the analogous anchor here: it returns the level family
    /// the calibrated SPEC stand-ins themselves are built from, keyed by
    /// Mem/Uop — progressively more miss-dominated (lower exposed core
    /// CPI, less overlap) as memory intensity grows.
    #[must_use]
    pub fn reference_family(mem_uop: f64) -> Self {
        assert!(
            mem_uop.is_finite() && mem_uop >= 0.0,
            "mem_uop must be finite and non-negative"
        );
        let (cpi_core, mlp) = if mem_uop < 0.005 {
            (0.55, 2.0) // CPU-bound
        } else if mem_uop < 0.010 {
            (0.70, 2.5) // lightly memory-flavoured
        } else if mem_uop < 0.020 {
            (0.80, 1.6) // mid-range
        } else if mem_uop < 0.030 {
            (0.40, 1.1) // memory-bound
        } else {
            (0.30, 1.0) // extremely memory-bound (swim/mcf territory)
        };
        Self::new(mem_uop, cpi_core, mlp)
    }

    /// Materializes one interval of this level, with the given noise
    /// already applied to the Mem/Uop rate.
    ///
    /// `uops` micro-ops retire, `uops / uop_per_instr` instructions.
    #[must_use]
    pub fn interval(&self, uops: u64, uop_per_instr: f64, noisy_mem_uop: f64) -> IntervalWork {
        let mem = (noisy_mem_uop.max(0.0) * uops as f64).round() as u64;
        let instructions = (uops as f64 / uop_per_instr).round() as u64;
        IntervalWork::new(uops, instructions.max(1), mem, self.cpi_core, self.mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_materialization() {
        let l = PhaseLevel::new(0.02, 0.8, 2.0);
        let w = l.interval(100_000_000, 1.25, 0.02);
        assert_eq!(w.uops, 100_000_000);
        assert_eq!(w.instructions, 80_000_000);
        assert_eq!(w.mem_transactions, 2_000_000);
        assert!((w.mem_uop() - 0.02).abs() < 1e-9);
        assert_eq!(w.cpi_core, 0.8);
        assert_eq!(w.mlp, 2.0);
    }

    #[test]
    fn negative_noise_clamps_to_zero_traffic() {
        let l = PhaseLevel::cpu_bound();
        let w = l.interval(1_000_000, 1.0, -0.5);
        assert_eq!(w.mem_transactions, 0);
    }

    #[test]
    fn reference_family_is_progressively_memory_dominated() {
        // Exposed core CPI (the frequency-scalable part) must shrink and
        // overlap must vanish as memory intensity grows past mid-range.
        let mid = PhaseLevel::reference_family(0.015);
        let heavy = PhaseLevel::reference_family(0.025);
        let extreme = PhaseLevel::reference_family(0.05);
        assert!(heavy.cpi_core < mid.cpi_core);
        assert!(extreme.cpi_core < heavy.cpi_core);
        assert!(extreme.mlp <= heavy.mlp && heavy.mlp <= mid.mlp);
        assert_eq!(PhaseLevel::reference_family(0.001).cpi_core, 0.55);
    }

    #[test]
    fn presets_are_valid() {
        let _ = PhaseLevel::cpu_bound();
        let _ = PhaseLevel::memory_bound();
    }

    #[test]
    #[should_panic(expected = "mlp")]
    fn rejects_bad_mlp() {
        let _ = PhaseLevel::new(0.01, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "cpi_core")]
    fn rejects_zero_cpi() {
        let _ = PhaseLevel::new(0.01, 0.0, 1.0);
    }
}
