//! Temporal phase patterns: how a workload moves between its levels.
//!
//! Real applications execute as nested loops: an inner loop dwells on one
//! behaviour for a few sampling intervals, an outer loop cycles through a
//! short sequence of behaviours, and the program as a whole strings a few
//! such *movements* together (initialization, main computation, output,
//! ...). The paper's Figure 2 shows exactly this structure for `applu`.
//!
//! A [`Movement`] is one outer loop: an ordered list of [`Step`]s
//! (level + dwell) repeated a number of times. A benchmark is a list of
//! movements cycled until the requested trace length is met.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One inner-loop leg: dwell on `level` for `dwell` sampling intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Index into the benchmark's level table.
    pub level: usize,
    /// Number of consecutive sampling intervals spent at the level.
    pub dwell: u32,
}

impl Step {
    /// Creates a step.
    ///
    /// # Panics
    ///
    /// Panics if `dwell` is zero.
    #[must_use]
    pub fn new(level: usize, dwell: u32) -> Self {
        assert!(dwell >= 1, "a step must dwell at least one interval");
        Self { level, dwell }
    }
}

/// An outer loop: a step sequence repeated `repeats` times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Movement {
    /// The step sequence of one outer-loop iteration.
    pub steps: Vec<Step>,
    /// How many times the sequence repeats before the next movement.
    pub repeats: u32,
}

impl Movement {
    /// Creates a movement.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or `repeats` is zero.
    #[must_use]
    pub fn new(steps: Vec<Step>, repeats: u32) -> Self {
        assert!(!steps.is_empty(), "a movement needs at least one step");
        assert!(repeats >= 1, "a movement must repeat at least once");
        Self { steps, repeats }
    }

    /// A movement that just dwells on one level.
    #[must_use]
    pub fn constant(level: usize, intervals: u32) -> Self {
        Self::new(vec![Step::new(level, intervals)], 1)
    }

    /// Total sampling intervals one full pass of the movement covers.
    #[must_use]
    pub fn intervals(&self) -> u64 {
        let per_pass: u64 = self.steps.iter().map(|s| u64::from(s.dwell)).sum();
        per_pass * u64::from(self.repeats)
    }

    /// Iterates the level indices of the whole movement, interval by
    /// interval.
    pub fn level_sequence(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.repeats).flat_map(move |_| {
            self.steps
                .iter()
                .flat_map(|s| std::iter::repeat_n(s.level, s.dwell as usize))
        })
    }

    /// The largest level index referenced, for validation against a level
    /// table.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.steps.iter().map(|s| s.level).max().unwrap_or(0)
    }
}

/// Draws one standard-normal variate via Box–Muller (the sanctioned `rand`
/// crate is available offline; `rand_distr` is not, and two lines suffice).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn movement_interval_count() {
        let m = Movement::new(vec![Step::new(0, 2), Step::new(1, 3)], 4);
        assert_eq!(m.intervals(), 20);
    }

    #[test]
    fn level_sequence_expands_dwells_and_repeats() {
        let m = Movement::new(vec![Step::new(0, 2), Step::new(1, 1)], 2);
        let seq: Vec<usize> = m.level_sequence().collect();
        assert_eq!(seq, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn constant_movement() {
        let m = Movement::constant(3, 7);
        assert_eq!(m.intervals(), 7);
        assert!(m.level_sequence().all(|l| l == 3));
        assert_eq!(m.max_level(), 3);
    }

    #[test]
    fn normal_draws_are_reasonable() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn zero_dwell_rejected() {
        let _ = Step::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_movement_rejected() {
        let _ = Movement::new(vec![], 1);
    }
}
