//! Workload traces and their characterization statistics.

use livephase_pmsim::timing::IntervalWork;
use serde::{Deserialize, Serialize};

/// A generated workload: a named sequence of sampling-interval work chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    name: String,
    intervals: Vec<IntervalWork>,
}

impl WorkloadTrace {
    /// Creates a trace from pre-built intervals.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, intervals: Vec<IntervalWork>) -> Self {
        assert!(!intervals.is_empty(), "a workload trace must not be empty");
        Self {
            name: name.into(),
            intervals,
        }
    }

    /// The workload's name (e.g. `applu_in`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-interval work chunks, in execution order.
    #[must_use]
    pub fn intervals(&self) -> &[IntervalWork] {
        &self.intervals
    }

    /// Number of sampling intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Traces are never empty; returns `false` (API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the intervals.
    pub fn iter(&self) -> std::slice::Iter<'_, IntervalWork> {
        self.intervals.iter()
    }

    /// Opens a streaming replay cursor over the buffered intervals — the
    /// trace's [`IntervalSource`](crate::IntervalSource) view.
    #[must_use]
    pub fn stream(&self) -> crate::source::TraceCursor<'_> {
        crate::source::TraceCursor::new(self)
    }

    /// Decomposes the trace into its name and interval buffer.
    #[must_use]
    pub fn into_parts(self) -> (String, Vec<IntervalWork>) {
        (self.name, self.intervals)
    }

    /// The per-interval Mem/Uop series, lazily.
    pub fn mem_uop_series(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.intervals.iter().map(IntervalWork::mem_uop)
    }

    /// The per-interval Mem/Uop series, materialized — for callers that
    /// need random access or a slice.
    #[must_use]
    pub fn mem_uop_series_vec(&self) -> Vec<f64> {
        self.mem_uop_series().collect()
    }

    /// Computes the characterization statistics the paper plots in
    /// Figure 3, in one streaming pass.
    #[must_use]
    pub fn characterize(&self) -> TraceStats {
        TraceStats::from_mem_uop_iter(self.mem_uop_series())
    }
}

impl<'a> IntoIterator for &'a WorkloadTrace {
    type Item = &'a IntervalWork;
    type IntoIter = std::slice::Iter<'a, IntervalWork>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

/// Stability / power-saving-potential statistics of a workload, matching
/// the axes of the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Average Mem/Uop — "how much potential exists to slow down the CPU":
    /// the x-axis of Figure 3.
    pub mean_mem_uop: f64,
    /// Percentage of consecutive sample pairs whose Mem/Uop moved by more
    /// than 0.005 — "how unstable the benchmark is": the y-axis of
    /// Figure 3 (at the paper's 100 M-instruction granularity).
    pub sample_variation_pct: f64,
    /// Number of samples characterized.
    pub samples: usize,
}

impl TraceStats {
    /// The Mem/Uop delta the paper counts as a significant sample-to-sample
    /// variation (Figure 3).
    pub const VARIATION_THRESHOLD: f64 = 0.005;

    /// Characterizes a raw Mem/Uop series.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn from_mem_uop_series(series: &[f64]) -> Self {
        Self::from_mem_uop_iter(series.iter().copied())
    }

    /// Characterizes a Mem/Uop series in one streaming pass, without
    /// buffering it — sum, consecutive-pair comparison, and count all fold
    /// over the iterator.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn from_mem_uop_iter(series: impl IntoIterator<Item = f64>) -> Self {
        let mut sum = 0.0;
        let mut varying = 0usize;
        let mut samples = 0usize;
        let mut prev = None;
        for rate in series {
            sum += rate;
            samples += 1;
            if let Some(p) = prev {
                if f64::abs(rate - p) > Self::VARIATION_THRESHOLD {
                    varying += 1;
                }
            }
            prev = Some(rate);
        }
        assert!(samples > 0, "cannot characterize an empty series");
        let pairs = samples - 1;
        let pct = if pairs == 0 {
            0.0
        } else {
            100.0 * varying as f64 / pairs as f64
        };
        Self {
            mean_mem_uop: sum / samples as f64,
            sample_variation_pct: pct,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(mem_uop: f64) -> IntervalWork {
        let uops = 1_000_000u64;
        IntervalWork::new(uops, uops, (uops as f64 * mem_uop) as u64, 0.6, 2.0)
    }

    #[test]
    fn stats_of_constant_series() {
        let s = TraceStats::from_mem_uop_series(&[0.02; 50]);
        assert!((s.mean_mem_uop - 0.02).abs() < 1e-12);
        assert_eq!(s.sample_variation_pct, 0.0);
        assert_eq!(s.samples, 50);
    }

    #[test]
    fn stats_of_alternating_series() {
        // 0.001 <-> 0.020 swings are all above the 0.005 threshold.
        let series: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.001 } else { 0.020 })
            .collect();
        let s = TraceStats::from_mem_uop_series(&series);
        assert!((s.sample_variation_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sub_threshold_wiggle_is_stable() {
        let series: Vec<f64> = (0..100)
            .map(|i| 0.010 + if i % 2 == 0 { 0.002 } else { -0.002 })
            .collect();
        let s = TraceStats::from_mem_uop_series(&series);
        assert_eq!(s.sample_variation_pct, 0.0, "0.004 moves are below 0.005");
    }

    #[test]
    fn single_sample_has_zero_variation() {
        let s = TraceStats::from_mem_uop_series(&[0.01]);
        assert_eq!(s.sample_variation_pct, 0.0);
    }

    #[test]
    fn trace_accessors() {
        let t = WorkloadTrace::new("toy", vec![w(0.01), w(0.02)]);
        assert_eq!(t.name(), "toy");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.mem_uop_series().len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        let stats = t.characterize();
        assert_eq!(stats.samples, 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = WorkloadTrace::new("empty", vec![]);
    }
}
