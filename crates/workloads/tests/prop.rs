//! Property-based tests for workload generation and the IPCxMEM solver.

use livephase_pmsim::Frequency;
use livephase_workloads::{registry, IpcxMemConfig, IpcxMemSuite, PhaseLevel, TraceStats};
use proptest::prelude::*;

proptest! {
    /// Whenever the solver accepts a coordinate, the produced level
    /// realizes it exactly (forward-model round trip).
    #[test]
    fn ipcxmem_solutions_are_exact(upc in 0.05f64..2.0, mem in 0.0f64..0.06) {
        let suite = IpcxMemSuite::pentium_m();
        let cfg = IpcxMemConfig { target_upc: upc, mem_uop: mem };
        if let Some(level) = suite.solve(cfg) {
            let timing = livephase_pmsim::TimingModel::pentium_m();
            let work = level.interval(100_000_000, 1.25, mem);
            let got = timing.upc(&work, suite.reference_frequency());
            prop_assert!((got - upc).abs() < 0.02, "target {upc}, got {got}");
            prop_assert!((work.mem_uop() - mem).abs() < 1e-4);
            prop_assert!(level.mlp >= 1.0);
        }
    }

    /// The frontier is authoritative: coordinates above it are rejected,
    /// coordinates comfortably below it are accepted.
    #[test]
    fn frontier_separates_feasibility(mem in 0.0f64..0.06) {
        let suite = IpcxMemSuite::pentium_m();
        let bound = suite.max_upc(mem);
        let above = IpcxMemConfig { target_upc: bound * 1.05, mem_uop: mem };
        prop_assert!(suite.solve(above).is_none());
        let below = IpcxMemConfig { target_upc: (bound * 0.9).max(0.02), mem_uop: mem };
        prop_assert!(suite.solve(below).is_some());
    }

    /// UPC of any solved level rises (weakly) as frequency falls, and the
    /// rise grows with memory intensity.
    #[test]
    fn solved_levels_show_dvfs_sensitivity(mem in 0.0f64..0.05) {
        let suite = IpcxMemSuite::pentium_m();
        let timing = livephase_pmsim::TimingModel::pentium_m();
        let cfg = IpcxMemConfig { target_upc: (suite.max_upc(mem) * 0.5).max(0.05), mem_uop: mem };
        if let Some(level) = suite.solve(cfg) {
            let work = level.interval(100_000_000, 1.25, mem);
            let fast = timing.upc(&work, Frequency::from_mhz(1500));
            let slow = timing.upc(&work, Frequency::from_mhz(600));
            prop_assert!(slow >= fast - 1e-12);
            if mem == 0.0 {
                prop_assert!((slow - fast).abs() < 1e-12);
            }
        }
    }

    /// The reference family is well-formed at any memory intensity.
    #[test]
    fn reference_family_is_valid(mem in 0.0f64..0.2) {
        let level = PhaseLevel::reference_family(mem);
        prop_assert_eq!(level.mem_uop, mem);
        prop_assert!(level.cpi_core > 0.0);
        prop_assert!(level.mlp >= 1.0);
    }

    /// Characterization statistics are bounded and scale-correct.
    #[test]
    fn trace_stats_are_bounded(series in proptest::collection::vec(0.0f64..0.2, 1..500)) {
        let s = TraceStats::from_mem_uop_series(&series);
        prop_assert!(s.sample_variation_pct >= 0.0 && s.sample_variation_pct <= 100.0);
        let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = series.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(s.mean_mem_uop >= min - 1e-12 && s.mean_mem_uop <= max + 1e-12);
        prop_assert_eq!(s.samples, series.len());
    }

    /// Every registered benchmark generates valid work at any length and
    /// every interval carries the spec's 100 M uops.
    #[test]
    fn registry_generates_valid_intervals(idx in 0usize..33, len in 1usize..60, seed in 0u64..64) {
        let spec = registry().swap_remove(idx).with_length(len);
        let trace = spec.generate(seed);
        prop_assert_eq!(trace.len(), len);
        for w in trace.iter() {
            prop_assert_eq!(w.uops, 100_000_000);
            prop_assert!(w.instructions > 0);
            prop_assert!(w.cpi_core > 0.0 && w.mlp >= 1.0);
        }
    }

    /// Round-robin scheduling conserves every job's intervals exactly and
    /// attributes each to the right pid, for any timeslice.
    #[test]
    fn round_robin_conserves_jobs(
        lens in proptest::collection::vec(1usize..40, 1..4),
        timeslice in 1usize..10,
    ) {
        use livephase_workloads::{multiprogram, Job};
        let names = ["applu_in", "swim_in", "crafty_in"];
        let jobs: Vec<Job> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| Job::new(
                u32::try_from(i + 1).unwrap(),
                livephase_workloads::benchmark(names[i % 3])
                    .unwrap()
                    .with_length(len)
                    .generate(1),
            ))
            .collect();
        let mix = multiprogram::round_robin(&jobs, timeslice, "mix");
        let total: usize = lens.iter().sum();
        prop_assert_eq!(mix.len(), total);
        for job in &jobs {
            // Extract this pid's subsequence: must equal the job's trace.
            let mine: Vec<_> = mix
                .iter()
                .filter(|&(pid, _)| pid == job.pid)
                .map(|(_, w)| *w)
                .collect();
            prop_assert_eq!(mine.as_slice(), job.trace.intervals());
        }
    }

    /// Trace CSV round-trips exactly for any registered benchmark.
    #[test]
    fn csv_round_trip(idx in 0usize..33, len in 1usize..50, seed in 0u64..32) {
        use livephase_workloads::io;
        let trace = registry().swap_remove(idx).with_length(len).generate(seed);
        let restored = io::from_csv(trace.name(), &io::to_csv(&trace))
            .expect("exporter output is always importable");
        prop_assert_eq!(trace, restored);
    }

    /// Different seeds decorrelate the noise but not the calibration:
    /// mean Mem/Uop is seed-stable within a tight band for a long trace.
    #[test]
    fn calibration_is_seed_stable(seed_a in 0u64..1000, seed_b in 0u64..1000) {
        let spec = livephase_workloads::benchmark("applu_in").unwrap().with_length(600);
        let a = spec.generate(seed_a).characterize();
        let b = spec.generate(seed_b).characterize();
        prop_assert!((a.mean_mem_uop - b.mean_mem_uop).abs() < 0.002);
        prop_assert!((a.sample_variation_pct - b.sample_variation_pct).abs() < 12.0);
    }
}
