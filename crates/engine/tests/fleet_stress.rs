//! Fleet-scale stress bar for the shared decision engine: ten thousand
//! interleaved pid streams through `step_many` must decide bit-identically
//! to each pid's stream running alone — per-pid state is genuinely
//! isolated no matter how the samples arrive — and any interleaving of
//! the same streams is equivalent to any other.

use livephase_engine::{Decision, DecisionEngine, EngineConfig, Sample};

const PIDS: u32 = 10_000;
const SAMPLES_PER_PID: u64 = 6;

/// Deterministic per-pid counter stream: a splitmix-style generator
/// drives mem_transactions across the full Mem/Uop classification range,
/// so different pids live in different phases and transition differently.
fn sample_for(pid: u32, step: u64) -> Sample {
    let mut x = (u64::from(pid) << 32) | (step + 1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    Sample {
        pid,
        uops: 100_000_000,
        mem_transactions: x % 30_000_000,
    }
}

fn engine() -> DecisionEngine {
    DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:8:128").expect("valid spec")
}

/// Round-robin interleaving: pid 0 step 0, pid 1 step 0, ..., pid 0
/// step 1, ... — every pid's stream is chopped as finely as possible.
fn round_robin() -> Vec<Sample> {
    let mut out = Vec::with_capacity((u64::from(PIDS) * SAMPLES_PER_PID) as usize);
    for step in 0..SAMPLES_PER_PID {
        for pid in 0..PIDS {
            out.push(sample_for(pid, step));
        }
    }
    out
}

fn decisions_by_pid(samples: &[Sample]) -> Vec<Vec<Decision>> {
    let mut eng = engine();
    let mut decisions = Vec::new();
    // Feed in uneven chunks so step_many's run-coalescing sees runs that
    // straddle chunk boundaries.
    let mut per_pid: Vec<Vec<Decision>> = (0..PIDS).map(|_| Vec::new()).collect();
    for chunk in samples.chunks(997) {
        decisions.clear();
        eng.step_many(chunk, &mut decisions);
        assert_eq!(decisions.len(), chunk.len(), "one decision per sample");
        for d in &decisions {
            per_pid[d.pid as usize].push(*d);
        }
    }
    per_pid
}

#[test]
fn ten_thousand_interleaved_pids_match_their_solo_runs() {
    let fleet = decisions_by_pid(&round_robin());

    // The oracle: each pid's stream alone through a fresh engine. Spot
    // the full fleet against it on a deterministic sample of pids (every
    // pid through a fresh engine would be 10k engine builds; 500 covers
    // every phase-behavior class the generator produces).
    for pid in (0..PIDS).step_by(20) {
        let mut solo_engine = engine();
        let solo: Vec<Decision> = (0..SAMPLES_PER_PID)
            .map(|step| solo_engine.step(&sample_for(pid, step)))
            .collect();
        assert_eq!(
            fleet[pid as usize], solo,
            "pid {pid}: interleaved decisions diverged from its solo run"
        );
    }
}

#[test]
fn any_interleaving_is_equivalent() {
    // Blocked interleaving (all of pid 0, then all of pid 1, ...) must
    // produce the same per-pid decision streams as round-robin: arrival
    // order across pids is invisible, order within a pid is everything.
    let blocked: Vec<Sample> = (0..PIDS)
        .flat_map(|pid| (0..SAMPLES_PER_PID).map(move |step| sample_for(pid, step)))
        .collect();
    let a = decisions_by_pid(&round_robin());
    let b = decisions_by_pid(&blocked);
    assert_eq!(a, b, "interleaving changed some pid's decision stream");
}
