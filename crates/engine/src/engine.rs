//! The decision engine: Figure 8's classify → update predictor → predict
//! → translate flow, factored into one batch-capable implementation.
//!
//! Three consumers used to carry their own copy of this loop — the
//! governor's PMI handler, the serve shards' session state, and the
//! streaming accuracy evaluation — each with its own per-pid predictor
//! map, scoring and telemetry. A [`DecisionEngine`] is that loop, once:
//!
//! * [`step`](DecisionEngine::step) ingests one counter [`Sample`] and
//!   returns the [`Decision`] for that pid's next interval;
//! * [`step_many`](DecisionEngine::step_many) drains a whole queue of
//!   samples through the same path, amortizing per-pid map lookups
//!   (consecutive samples for one pid resolve their state once) and
//!   output allocation — the serve shard loop's batching win.
//!
//! The module is pure compute plus lock-free telemetry — no sockets, no
//! threads, no clocks beyond decision-latency timing — so the decision
//! path stays unit-testable and benchmarkable in isolation. Phase
//! classification depends only on the DVFS-invariant
//! `mem_transactions / uops` ratio, which is why an engine fed the
//! counter stream of an in-process run makes **bit-identical** decisions
//! to that run (the equivalence tests pin this down).

use crate::config::EngineConfig;
use livephase_core::{
    predictor_from_spec, MemUopRate, PhaseId, PhaseSample, PredictionStats, Predictor,
    PredictorSpecError, StreamScorer,
};
use livephase_telemetry::{Counter, Histogram};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant}; // lint:allow(determinism): Instant feeds decision-latency telemetry only, never a decision input

/// One performance-counter reading: what the PMI handler stops and reads
/// at the end of a sampling interval, attributed to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Process the interval belongs to.
    pub pid: u32,
    /// Micro-ops retired in the interval.
    pub uops: u64,
    /// Memory bus transactions in the interval (`BUS_TRAN_MEM`).
    pub mem_transactions: u64,
}

/// One computed decision: the engine's full output for a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Process the decision is for.
    pub pid: u32,
    /// Phase the elapsed interval was classified into.
    pub phase: PhaseId,
    /// Phase predicted for the next interval.
    pub predicted: PhaseId,
    /// Operating-point index to apply next (0 = fastest).
    pub op_point: u8,
    /// Running prediction accuracy of this pid's stream, in basis points
    /// (10 000 = every scored prediction so far was correct).
    pub confidence: u16,
}

/// Handles into the process-global registry for the decision hot path,
/// fetched once per engine; every record after that is a lock-free
/// atomic. These are the *governor-level* series — the same names
/// whether decisions come from an in-process run, a serve shard, or a
/// bare engine — so every consumer is instrumented identically.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    decisions_total: Arc<Counter>,
    decision_us: Arc<Histogram>,
    hits_total: Arc<Counter>,
    misses_total: Arc<Counter>,
    pids_evicted_total: Arc<Counter>,
}

impl EngineMetrics {
    /// Fetches (or creates) the governor-level instrument handles.
    #[must_use]
    pub fn new() -> Self {
        let reg = livephase_telemetry::global();
        Self {
            decisions_total: reg.counter(
                "governor_decisions_total",
                "DVFS decisions computed (in-process runs and serve shards).",
                &[],
            ),
            decision_us: reg.histogram(
                "governor_decision_us",
                "Per-interval decision latency in microseconds.",
                &[],
            ),
            hits_total: reg.counter(
                "governor_predictor_hits_total",
                "Scored intervals whose predicted phase was observed.",
                &[],
            ),
            misses_total: reg.counter(
                "governor_predictor_misses_total",
                "Scored intervals whose predicted phase was not observed.",
                &[],
            ),
            pids_evicted_total: reg.counter(
                "engine_pids_evicted_total",
                "Per-pid predictor states evicted by the LRU capacity bound.",
                &[],
            ),
        }
    }

    /// Records one per-pid state eviction.
    pub fn record_pid_evicted(&self) {
        self.pids_evicted_total.inc();
    }

    /// Records `n` decisions computed in `elapsed` total: the counter
    /// advances by `n` and the latency histogram receives one sample per
    /// decision at the batch-amortized per-decision cost (a single
    /// bulk `record_n`, not `n` round trips).
    pub fn record_decisions(&self, n: u64, elapsed: Duration) {
        if n == 0 {
            return;
        }
        self.decisions_total.add(n);
        self.decision_us
            .record_n_saturating(elapsed.as_micros() / u128::from(n), n);
    }

    /// Records one decision computed in `elapsed`.
    pub fn record_decision(&self, elapsed: Duration) {
        self.record_decisions(1, elapsed);
    }

    /// Records one scored prediction outcome.
    pub fn record_scored(&self, correct: bool) {
        if correct {
            self.hits_total.inc();
        } else {
            self.misses_total.inc();
        }
    }

    /// Records a whole run's scoring totals at once (used by paths that
    /// accumulate locally and flush at run end).
    pub fn record_scored_totals(&self, stats: PredictionStats) {
        if stats.total == 0 {
            return;
        }
        self.hits_total.add(stats.correct);
        self.misses_total.add(stats.mispredictions());
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Accumulates DVFS transitions by `(from, to)` operating-point pair and
/// flushes them to the process-global registry in one labeled burst —
/// label formatting happens at flush time, never on the decision path.
///
/// Stored as a dense `dim × dim` matrix (operating-point indices are
/// small — six on the Pentium M), so a record is one bounds check and
/// one add: no hashing on the per-decision path. The matrix grows on
/// demand if a platform has more settings.
#[derive(Debug, Default)]
pub struct TransitionTracker {
    dim: usize,
    counts: Vec<u64>,
}

impl TransitionTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decided operating point against the previous one; a
    /// no-op when the setting is unchanged.
    pub fn record(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let needed = from.max(to) + 1;
        if needed > self.dim {
            self.grow(needed);
        }
        self.counts[from * self.dim + to] += 1; // lint:allow(no-panic-path): from, to < dim after grow; counts has dim*dim cells
    }

    /// Count recorded for one `(from, to)` pair since the last flush.
    #[must_use]
    pub fn count(&self, from: usize, to: usize) -> u64 {
        if from.max(to) < self.dim {
            self.counts[from * self.dim + to] // lint:allow(no-panic-path): from, to < dim checked on the line above
        } else {
            0
        }
    }

    /// Re-lays the matrix out at a larger dimension, preserving counts.
    fn grow(&mut self, needed: usize) {
        let new_dim = needed.max(self.dim * 2);
        let mut counts = vec![0u64; new_dim * new_dim];
        for from in 0..self.dim {
            for to in 0..self.dim {
                // lint:allow(no-panic-path): from, to < dim <= new_dim; both buffers are dim²-sized
                counts[from * new_dim + to] = self.counts[from * self.dim + to];
            }
        }
        self.dim = new_dim;
        self.counts = counts;
    }

    /// Pushes the accumulated pairs into the registry and clears them,
    /// so flushing twice never double-counts.
    pub fn flush(&mut self) {
        let reg = livephase_telemetry::global();
        for from in 0..self.dim {
            for to in 0..self.dim {
                let n = std::mem::take(&mut self.counts[from * self.dim + to]); // lint:allow(no-panic-path): from, to < dim by the loop bounds
                if n == 0 {
                    continue;
                }
                let from = from.to_string();
                let to = to.to_string();
                reg.counter(
                    "governor_dvfs_transitions_total",
                    "DVFS transitions by operating-point pair.",
                    &[("from", &from), ("to", &to)],
                )
                .add(n);
            }
        }
    }
}

impl Drop for TransitionTracker {
    fn drop(&mut self) {
        self.flush();
    }
}

/// FNV-1a for the pid → state map: pids are small integers and the map
/// is looked up once per decision (once per *run* in `step_many`), so
/// the default SipHash's DoS hardening buys nothing here and costs a
/// measurable slice of the per-decision budget.
#[derive(Debug, Default, Clone)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

#[derive(Debug, Default, Clone)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

type PidMap = HashMap<u32, PidState, FnvBuild>;

type BoxedPredictorFactory = Box<dyn Fn() -> Box<dyn Predictor> + Send>;

/// Everything the engine keeps per process: the predictor instance, the
/// streaming scorer, and the operating point last decided for it (for
/// transition accounting).
struct PidState {
    predictor: Box<dyn Predictor>,
    scorer: StreamScorer,
    /// Operating point of the previous decision; 0 (the fastest setting)
    /// initially, matching the simulated CPU's starting DVFS index.
    last_op: u8,
    /// Recency stamp for LRU eviction; 0 = freshly created, never yet in
    /// the recency index (stamps handed out start at 1).
    stamp: u64,
}

impl PidState {
    fn new(factory: &BoxedPredictorFactory) -> Self {
        Self {
            predictor: factory(),
            scorer: StreamScorer::new(),
            last_op: 0,
            stamp: 0,
        }
    }
}

/// Default capacity of the per-pid state map: generous enough for every
/// scenario shipped today (the fleet stress tests run 10k+ pids) while
/// still bounding a long-lived serve shard against pid churn.
pub const DEFAULT_MAX_PIDS: usize = 65_536;

/// Resolves (creating if needed) the state for `pid`, evicting the
/// least-recently-used pid first when the map is at capacity, and marks
/// `pid` most-recently-used. Free-standing so `step_many` can call it
/// with the engine's fields individually borrowed.
fn touch_pid_state<'m>(
    pids: &'m mut PidMap,
    lru: &mut BTreeMap<u64, u32>,
    next_stamp: &mut u64,
    max_pids: usize,
    factory: &BoxedPredictorFactory,
    metrics: &EngineMetrics,
    pid: u32,
) -> &'m mut PidState {
    let cap = max_pids.max(1);
    if !pids.contains_key(&pid) {
        while pids.len() >= cap {
            // lint:allow(panic-reachable): `.next()` here advances a BTreeMap
            // iterator; the resolver's name+arity fan-out to
            // `workloads::CounterSamples::next` is a false edge.
            let Some((&oldest, &victim)) = lru.iter().next() else {
                break;
            };
            lru.remove(&oldest);
            if pids.remove(&victim).is_some() {
                metrics.record_pid_evicted();
            }
        }
    }
    *next_stamp += 1;
    let stamp = *next_stamp;
    let state = pids.entry(pid).or_insert_with(|| PidState::new(factory));
    if state.stamp != 0 {
        lru.remove(&state.stamp);
    }
    state.stamp = stamp;
    lru.insert(stamp, pid);
    state
}

/// The canonical decision pipeline: per-pid predictor family, prediction
/// scoring, and phase → operating-point translation behind one API.
pub struct DecisionEngine {
    config: EngineConfig,
    factory: BoxedPredictorFactory,
    pids: PidMap,
    /// Recency index: stamp → pid, oldest stamp first. Every live pid has
    /// exactly one entry; the map's first entry is the eviction victim.
    lru: BTreeMap<u64, u32>,
    /// Monotonic recency clock; the last stamp handed out.
    next_stamp: u64,
    /// Capacity bound on `pids`; least-recently-used streams are evicted
    /// (with their predictor history) once it is reached.
    max_pids: usize,
    name: String,
    metrics: EngineMetrics,
    transitions: TransitionTracker,
}

impl std::fmt::Debug for DecisionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionEngine")
            .field("name", &self.name)
            .field("platform", &self.config.platform())
            .field("processes", &self.pids.len())
            .finish()
    }
}

impl DecisionEngine {
    /// Creates an engine whose per-pid predictors are built from
    /// `predictor_spec` (e.g. `gpht:8:128`). The display name defaults to
    /// `Proactive(<predictor>)`, matching the governor's policy naming.
    ///
    /// # Errors
    ///
    /// Returns the spec error if the predictor specification does not
    /// parse — checked here, once, so the per-pid factory cannot fail.
    pub fn from_spec(
        config: EngineConfig,
        predictor_spec: &str,
    ) -> Result<Self, PredictorSpecError> {
        let probe = predictor_from_spec(predictor_spec)?;
        let name = format!("Proactive({})", probe.name());
        let spec = predictor_spec.to_owned();
        let factory: BoxedPredictorFactory = Box::new(move || match predictor_from_spec(&spec) {
            Ok(p) => p,
            // The spec parsed when the engine was built and the grammar
            // is deterministic, so a re-parse cannot fail.
            Err(_) => unreachable!("predictor spec validated at engine construction"),
        });
        Ok(Self {
            config,
            factory,
            pids: PidMap::default(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            max_pids: DEFAULT_MAX_PIDS,
            name,
            metrics: EngineMetrics::new(),
            transitions: TransitionTracker::new(),
        })
    }

    /// Bounds the per-pid state map to `max_pids` streams (builder style);
    /// the least-recently-stepped stream is evicted — predictor history
    /// and scoring included — when a new pid arrives at capacity, and
    /// `engine_pids_evicted_total` counts each eviction. A bound of zero
    /// is treated as one (the engine always holds the stream it is
    /// deciding for).
    #[must_use]
    pub fn with_max_pids(mut self, max_pids: usize) -> Self {
        self.max_pids = max_pids.max(1);
        self
    }

    /// The capacity bound on concurrent per-pid streams.
    #[must_use]
    pub fn max_pids(&self) -> usize {
        self.max_pids
    }

    /// Overrides the display name (e.g. `Reactive(LastValue)` for the
    /// prior-work reactive system, which is a last-value engine by
    /// another name).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The engine's display name, used as the policy label in reports.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deployment context decisions are made in.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Ingests one sample and returns the decision for that pid's next
    /// interval — the PMI handler's steps 2–4: classify the observed
    /// rate, score and update the predictor, translate the prediction.
    pub fn step(&mut self, sample: &Sample) -> Decision {
        let started = Instant::now(); // lint:allow(determinism): decision-latency histogram only
        let Self {
            config,
            factory,
            pids,
            lru,
            next_stamp,
            max_pids,
            transitions,
            metrics,
            ..
        } = self;
        let state = touch_pid_state(
            pids, lru, next_stamp, *max_pids, factory, metrics, sample.pid,
        );
        let d = step_pid(config, metrics, transitions, state, sample);
        metrics.record_decision(started.elapsed());
        d
    }

    /// Drains a batch of samples through the decision path, appending one
    /// decision per sample to `out` in input order.
    ///
    /// Equivalent to calling [`step`](Self::step) per sample — the
    /// equivalence tests assert bit-exactness — but runs of consecutive
    /// samples for the same pid resolve their predictor state with a
    /// single map lookup, and `out` is grown once. This is the shard
    /// loop's hot path: a busy connection's queued samples are decided
    /// in one swing.
    pub fn step_many(&mut self, samples: &[Sample], out: &mut Vec<Decision>) {
        if samples.is_empty() {
            return;
        }
        let started = Instant::now(); // lint:allow(determinism): decision-latency histogram only
        out.reserve(samples.len());
        let Self {
            config,
            factory,
            pids,
            lru,
            next_stamp,
            max_pids,
            transitions,
            metrics,
            ..
        } = self;
        let mut i = 0;
        while i < samples.len() {
            let pid = samples[i].pid; // lint:allow(no-panic-path): i < samples.len() by the loop guard
            let state = touch_pid_state(pids, lru, next_stamp, *max_pids, factory, metrics, pid);
            // lint:allow(no-panic-path): i < samples.len() by the inner guard
            while i < samples.len() && samples[i].pid == pid {
                out.push(step_pid(config, metrics, transitions, state, &samples[i])); // lint:allow(no-panic-path): i < samples.len() by the inner guard
                i += 1;
            }
        }
        self.metrics
            .record_decisions(samples.len() as u64, started.elapsed());
    }

    /// The prediction currently standing for `pid`, if any — what the
    /// next sample for that pid will be scored against.
    #[must_use]
    pub fn pending(&self, pid: u32) -> Option<PhaseId> {
        self.pids.get(&pid).and_then(|s| s.scorer.pending())
    }

    /// Scores the standing prediction for `pid` against an observed
    /// phase **without** stepping the predictor or issuing a decision.
    ///
    /// This is the run-tail case: a workload that ends off the sampling
    /// grid leaves a partial interval whose phase is still meaningful
    /// for accuracy accounting, but execution is over and no decision
    /// will govern anything.
    pub fn score_tail(&mut self, pid: u32, observed: PhaseId) -> Option<bool> {
        let state = self.pids.get_mut(&pid)?;
        let (_, correct) = state.scorer.score(observed)?;
        self.metrics.record_scored(correct);
        Some(correct)
    }

    /// Aggregate prediction statistics across every pid stream.
    #[must_use]
    pub fn stats(&self) -> PredictionStats {
        // lint:allow(determinism): the fold is a commutative sum, so the
        // FNV iteration order cannot change the result
        self.pids
            .values()
            .fold(PredictionStats::default(), |acc, s| {
                let st = s.scorer.stats();
                PredictionStats {
                    total: acc.total + st.total,
                    correct: acc.correct + st.correct,
                }
            })
    }

    /// Prediction statistics for one pid stream, if it exists.
    #[must_use]
    pub fn pid_stats(&self, pid: u32) -> Option<PredictionStats> {
        self.pids.get(&pid).map(|s| s.scorer.stats())
    }

    /// Number of pid streams with live predictor state.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.pids.len()
    }

    /// Drops a terminated pid's state.
    pub fn retire(&mut self, pid: u32) -> bool {
        match self.pids.remove(&pid) {
            Some(state) => {
                self.lru.remove(&state.stamp);
                true
            }
            None => false,
        }
    }

    /// Clears all per-pid state (predictors, scoring, transition
    /// baselines); accumulated telemetry is left alone.
    pub fn reset(&mut self) {
        self.pids.clear();
        self.lru.clear();
    }

    /// Flushes label-formatted telemetry (the DVFS transition pairs).
    /// Also runs on drop; flushing is idempotent.
    pub fn flush_metrics(&mut self) {
        self.transitions.flush();
    }
}

/// One pid's classify → score → predict → translate step. Free-standing
/// so `step_many` can hold the pid's state across a run of samples while
/// the engine's other fields stay borrowed.
fn step_pid(
    config: &EngineConfig,
    metrics: &EngineMetrics,
    transitions: &mut TransitionTracker,
    state: &mut PidState,
    sample: &Sample,
) -> Decision {
    let rate = MemUopRate::from_counts(sample.mem_transactions, sample.uops);
    let phase = config.phase_map().classify_rate(rate);
    if let Some((_, correct)) = state.scorer.score(phase) {
        metrics.record_scored(correct);
    }
    let predicted = state.predictor.next(PhaseSample { rate, phase });
    state.scorer.predict(predicted);
    let op_point = config.op_point_for(predicted);
    transitions.record(usize::from(state.last_op), usize::from(op_point));
    state.last_op = op_point;
    Decision {
        pid: sample.pid,
        phase,
        predicted,
        op_point,
        confidence: state.scorer.confidence_bp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_core::CONFIDENCE_SCALE;

    fn engine(spec: &str) -> DecisionEngine {
        DecisionEngine::from_spec(EngineConfig::pentium_m(), spec).unwrap()
    }

    /// 100 M uops with these memory-transaction counts land in phases
    /// 1, 3 and 6 of the Table 1 map.
    const P1: Sample = Sample {
        pid: 1,
        uops: 100_000_000,
        mem_transactions: 0,
    };
    const P3: Sample = Sample {
        pid: 1,
        uops: 100_000_000,
        mem_transactions: 1_200_000,
    };
    const P6: Sample = Sample {
        pid: 1,
        uops: 100_000_000,
        mem_transactions: 4_000_000,
    };

    fn with_pid(s: Sample, pid: u32) -> Sample {
        Sample { pid, ..s }
    }

    #[test]
    fn bad_specs_are_rejected_once() {
        assert!(DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:0:128").is_err());
        assert!(DecisionEngine::from_spec(EngineConfig::pentium_m(), "frobnicate").is_err());
        assert!(DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:8:128").is_ok());
    }

    #[test]
    fn names_follow_the_policy_convention() {
        assert_eq!(engine("gpht:8:128").name(), "Proactive(GPHT_8_128)");
        assert_eq!(
            engine("lastvalue").with_name("Reactive(LastValue)").name(),
            "Reactive(LastValue)"
        );
    }

    #[test]
    fn first_decision_has_full_confidence_and_no_score() {
        let mut e = engine("lastvalue");
        let d = e.step(&P3);
        assert_eq!(d.phase.get(), 3);
        assert_eq!(d.confidence, CONFIDENCE_SCALE, "nothing scored yet");
        assert_eq!(e.stats().total, 0);
        let d2 = e.step(&P3);
        assert_eq!(e.stats().total, 1);
        assert_eq!(e.stats().correct, 1, "last-value repeated the phase");
        assert_eq!(d2.confidence, CONFIDENCE_SCALE);
    }

    #[test]
    fn gpht_engine_anticipates_alternation() {
        let mut e = engine("gpht:8:128");
        for _ in 0..50 {
            let _ = e.step(&P1);
            let _ = e.step(&P6);
        }
        let d = e.step(&P1);
        assert_eq!(d.op_point, 5, "after P1, expects P6 next");
        assert_eq!(d.predicted.get(), 6);
        let d = e.step(&P6);
        assert_eq!(d.op_point, 0, "after P6, expects P1 next");
    }

    #[test]
    fn step_many_is_bit_exact_with_step() {
        // A mixed-pid stream with runs and alternations, so batching
        // exercises both the run-coalescing path and pid switches.
        let mut samples = Vec::new();
        for round in 0u32..40 {
            samples.push(with_pid(P1, 1));
            samples.push(with_pid(P6, 1));
            samples.push(with_pid(P3, 2));
            if round % 3 == 0 {
                samples.push(with_pid(P3, 2));
                samples.push(with_pid(P1, 3));
            }
        }

        let mut one = engine("gpht:8:128");
        let expected: Vec<Decision> = samples.iter().map(|s| one.step(s)).collect();

        let mut batched = engine("gpht:8:128");
        let mut got = Vec::new();
        // Split into uneven chunks to exercise batch boundaries.
        for chunk in samples.chunks(7) {
            batched.step_many(chunk, &mut got);
        }
        assert_eq!(got, expected, "step_many must equal step, bit for bit");
        assert_eq!(batched.stats(), one.stats());
        assert_eq!(batched.processes(), one.processes());
    }

    #[test]
    fn pids_are_isolated() {
        let mut e = engine("gpht:8:128");
        for _ in 0..50 {
            let _ = e.step(&with_pid(P1, 1));
            let _ = e.step(&with_pid(P6, 1));
            let _ = e.step(&with_pid(P3, 2));
        }
        assert_eq!(e.processes(), 2);
        let d1 = e.step(&with_pid(P1, 1));
        assert_eq!(d1.op_point, 5, "pid 1's GPHT anticipates the alternation");
        let d2 = e.step(&with_pid(P3, 2));
        assert_eq!(d2.op_point, 2, "pid 2 stays in P3");
        assert!(d2.confidence > 9_000, "constant stream predicts well");
        assert!(e.pid_stats(2).is_some());
        assert!(e.retire(1));
        assert_eq!(e.processes(), 1);
        assert!(!e.retire(1));
        assert_eq!(e.pending(1), None);
    }

    #[test]
    fn score_tail_scores_without_deciding() {
        let mut e = engine("lastvalue");
        let _ = e.step(&P3);
        assert_eq!(e.pending(1), Some(PhaseId::new(3)));
        assert_eq!(e.score_tail(1, PhaseId::new(3)), Some(true));
        assert_eq!(e.stats().total, 1);
        assert_eq!(e.pending(1), None, "tail scoring consumes the prediction");
        assert_eq!(e.score_tail(1, PhaseId::new(3)), None, "nothing standing");
        assert_eq!(e.score_tail(99, PhaseId::new(3)), None, "unknown pid");
    }

    #[test]
    fn reset_clears_per_pid_state() {
        let mut e = engine("gpht:8:128");
        let _ = e.step(&P3);
        let _ = e.step(&with_pid(P3, 2));
        e.reset();
        assert_eq!(e.processes(), 0);
        assert_eq!(e.stats(), PredictionStats::default());
    }

    #[test]
    fn lru_bound_evicts_least_recently_stepped_pid() {
        let mut e = engine("gpht:8:128").with_max_pids(2);
        assert_eq!(e.max_pids(), 2);
        let _ = e.step(&with_pid(P1, 1));
        let _ = e.step(&with_pid(P1, 2));
        // Touch pid 1 so pid 2 is the LRU victim.
        let _ = e.step(&with_pid(P1, 1));
        let _ = e.step(&with_pid(P1, 3));
        assert_eq!(e.processes(), 2);
        assert!(e.pid_stats(1).is_some(), "recently used pid survives");
        assert!(e.pid_stats(2).is_none(), "LRU pid was evicted");
        assert!(e.pid_stats(3).is_some());
        // A returning evicted pid starts from scratch (fresh predictor).
        let d = e.step(&with_pid(P3, 2));
        assert_eq!(d.confidence, CONFIDENCE_SCALE, "no scored history");
        assert!(e.pid_stats(1).is_none(), "pid 1 evicted in turn");
    }

    #[test]
    fn lru_bound_of_zero_still_holds_the_live_stream() {
        let mut e = engine("lastvalue").with_max_pids(0);
        assert_eq!(e.max_pids(), 1);
        let _ = e.step(&with_pid(P3, 1));
        let _ = e.step(&with_pid(P3, 2));
        assert_eq!(e.processes(), 1);
        assert!(e.pid_stats(2).is_some());
    }

    #[test]
    fn retire_and_reset_keep_the_lru_index_consistent() {
        let mut e = engine("lastvalue").with_max_pids(2);
        let _ = e.step(&with_pid(P3, 1));
        let _ = e.step(&with_pid(P3, 2));
        assert!(e.retire(1));
        // Capacity freed: two more pids fit without evicting pid 2's slot
        // twice (a stale index entry would make this under-count).
        let _ = e.step(&with_pid(P3, 3));
        assert_eq!(e.processes(), 2);
        assert!(e.pid_stats(2).is_some());
        e.reset();
        assert_eq!(e.processes(), 0);
        let _ = e.step(&with_pid(P3, 4));
        let _ = e.step(&with_pid(P3, 5));
        assert_eq!(e.processes(), 2);
    }

    #[test]
    fn eviction_is_bit_exact_for_surviving_streams() {
        // Streams for surviving pids must be unaffected by churn evicting
        // other pids around them.
        let mut churned = engine("gpht:8:128").with_max_pids(8);
        let mut solo = engine("gpht:8:128");
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for round in 0u32..60 {
            let s = if round % 2 == 0 {
                with_pid(P1, 7)
            } else {
                with_pid(P6, 7)
            };
            expected.push(solo.step(&s));
            got.push(churned.step(&s));
            // Churn: a parade of one-shot pids that evict each other but
            // never pid 7 (it is re-touched every round).
            let _ = churned.step(&with_pid(P3, 1000 + round));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn transitions_accumulate_and_flush() {
        let mut t = TransitionTracker::new();
        t.record(0, 0);
        t.record(0, 5);
        t.record(5, 2);
        t.record(0, 5);
        assert_eq!(t.count(0, 5), 2);
        assert_eq!(t.count(0, 0), 0, "no-op transitions dropped");
        assert_eq!(t.count(17, 3), 0, "never-seen pair");
        t.record(9, 2); // grows the matrix, preserving counts
        assert_eq!(t.count(0, 5), 2);
        assert_eq!(t.count(9, 2), 1);
        t.flush();
        assert_eq!(t.count(0, 5), 0, "flush drains");
        t.flush(); // idempotent on empty
    }
}
