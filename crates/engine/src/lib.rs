//! # livephase-engine
//!
//! The canonical **decision engine** for live phase-driven power
//! management: classify the elapsed interval, score and update the
//! per-process predictor, predict the next phase, translate it to an
//! operating point. One implementation, three consumers:
//!
//! * the **governor**'s [`Manager`] delegates every PMI decision here and
//!   keeps only simulated-CPU, interrupt-overhead, dwell and
//!   transition-latency concerns;
//! * the **serve** shards wrap an engine per session and drain their
//!   queues through the batched [`DecisionEngine::step_many`];
//! * the **experiment** harness scores predictor families through the
//!   same path it deploys them on.
//!
//! [`EngineConfig`] is the deployment context (platform, phase map,
//! translation table) validated at construction so the per-sample path
//! is panic-free; [`DecisionEngine`] is the pipeline itself. Decision
//! telemetry — latency, predictor hits/misses, DVFS transition pairs —
//! is recorded inside the engine, so every consumer is instrumented
//! identically without carrying its own handles.
//!
//! [`Manager`]: ../livephase_governor/struct.Manager.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The per-sample decision path must be panic-free: config validation at
// construction buys an unwrap-free hot path, and this keeps it that way.
// ci.sh runs clippy with -D warnings, turning any regression into an error.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod engine;
pub mod table;

pub use config::{EngineConfig, EngineConfigError};
pub use engine::{
    Decision, DecisionEngine, EngineMetrics, Sample, TransitionTracker, DEFAULT_MAX_PIDS,
};
pub use table::{TranslationTable, TranslationTableError};
