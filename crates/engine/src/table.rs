//! The phase → DVFS-setting look-up table (the paper's Table 2).
//!
//! Defined once at module initialization on the deployed system and
//! consulted inside the interrupt handler; "for alternative phase
//! definitions or management schemes, we can simply reconfigure this
//! table" (Section 5.2).

use livephase_core::{PhaseId, PhaseMap};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error constructing a [`TranslationTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationTableError {
    /// The table must cover at least one phase.
    Empty,
    /// An entry referenced a DVFS setting index beyond the platform table.
    SettingOutOfRange {
        /// Phase (1-based) holding the bad entry.
        phase: u8,
        /// The offending setting index.
        setting: usize,
        /// Number of platform settings.
        available: usize,
    },
    /// Entries must be non-decreasing: a more memory-bound phase must not
    /// map to a *faster* setting than a less memory-bound one.
    NotMonotonic {
        /// First phase (1-based) violating monotonicity.
        phase: u8,
    },
}

impl fmt::Display for TranslationTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "translation table must cover at least one phase"),
            Self::SettingOutOfRange {
                phase,
                setting,
                available,
            } => write!(
                f,
                "phase {phase} maps to setting {setting}, but only {available} exist"
            ),
            Self::NotMonotonic { phase } => write!(
                f,
                "phase {phase} maps to a faster setting than a less memory-bound phase"
            ),
        }
    }
}

impl Error for TranslationTableError {}

/// Maps each phase to a DVFS setting index (0 = fastest).
///
/// ```
/// use livephase_engine::TranslationTable;
/// use livephase_core::PhaseId;
/// let t = TranslationTable::pentium_m();
/// assert_eq!(t.setting_for(PhaseId::new(1)), 0); // CPU-bound -> 1500 MHz
/// assert_eq!(t.setting_for(PhaseId::new(6)), 5); // memory-bound -> 600 MHz
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslationTable {
    settings: Vec<usize>,
}

impl TranslationTable {
    /// Creates a table; entry `i` is the setting for phase `i + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TranslationTableError`] if the table is empty, references
    /// a setting `>= available_settings`, or is not monotonic (more
    /// memory-bound phases must map to equal-or-slower settings).
    pub fn new(
        settings: Vec<usize>,
        available_settings: usize,
    ) -> Result<Self, TranslationTableError> {
        if settings.is_empty() {
            return Err(TranslationTableError::Empty);
        }
        for (i, &s) in settings.iter().enumerate() {
            if s >= available_settings {
                return Err(TranslationTableError::SettingOutOfRange {
                    phase: u8::try_from(i + 1).unwrap_or(u8::MAX),
                    setting: s,
                    available: available_settings,
                });
            }
        }
        for (i, w) in settings.windows(2).enumerate() {
            // lint:allow(no-panic-path): windows(2) yields exactly two elements
            if w[1] < w[0] {
                return Err(TranslationTableError::NotMonotonic {
                    phase: u8::try_from(i + 2).unwrap_or(u8::MAX),
                });
            }
        }
        Ok(Self { settings })
    }

    /// The paper's Table 2: phase *k* → setting *k − 1* on the six-point
    /// Pentium-M platform (phase 1 → 1500 MHz … phase 6 → 600 MHz).
    #[must_use]
    pub fn pentium_m() -> Self {
        // Built directly rather than through `new`: the identity mapping
        // over six settings is in-range and monotonic by inspection, so
        // this constructor is infallible.
        Self {
            settings: vec![0, 1, 2, 3, 4, 5],
        }
    }

    /// The DVFS setting for `phase`. Phases beyond the table clamp to the
    /// last entry (most conservative slow setting), so a table may be used
    /// with a finer phase map than it was built for.
    #[must_use]
    pub fn setting_for(&self, phase: PhaseId) -> usize {
        let i = phase.index().min(self.settings.len() - 1);
        self.settings[i] // lint:allow(no-panic-path): i < settings.len() by the min; the table is non-empty by construction
    }

    /// Number of phases covered.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.settings.len()
    }

    /// The raw mapping, indexed by zero-based phase.
    #[must_use]
    pub fn settings(&self) -> &[usize] {
        &self.settings
    }

    /// Checks that this table covers exactly the phases of `map`.
    #[must_use]
    pub fn covers(&self, map: &PhaseMap) -> bool {
        self.settings.len() == map.phase_count()
    }
}

impl Default for TranslationTable {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_is_the_validated_identity_mapping() {
        assert_eq!(
            TranslationTable::pentium_m(),
            TranslationTable::new(vec![0, 1, 2, 3, 4, 5], 6).unwrap()
        );
    }

    #[test]
    fn table2_mapping() {
        let t = TranslationTable::pentium_m();
        for k in 1..=6u8 {
            assert_eq!(t.setting_for(PhaseId::new(k)), usize::from(k) - 1);
        }
        assert!(t.covers(&PhaseMap::pentium_m()));
    }

    #[test]
    fn clamps_beyond_table() {
        let t = TranslationTable::pentium_m();
        assert_eq!(t.setting_for(PhaseId::new(9)), 5);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            TranslationTable::new(vec![], 6),
            Err(TranslationTableError::Empty)
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            TranslationTable::new(vec![0, 6], 6),
            Err(TranslationTableError::SettingOutOfRange {
                phase: 2,
                setting: 6,
                available: 6
            })
        ));
    }

    #[test]
    fn rejects_non_monotonic() {
        assert!(matches!(
            TranslationTable::new(vec![0, 2, 1], 6),
            Err(TranslationTableError::NotMonotonic { phase: 3 })
        ));
    }

    #[test]
    fn allows_plateaus() {
        // A conservative table may pin several phases to the same setting.
        let t = TranslationTable::new(vec![0, 0, 1, 1, 2, 3], 6).unwrap();
        assert_eq!(t.setting_for(PhaseId::new(2)), 0);
        assert_eq!(t.setting_for(PhaseId::new(5)), 2);
    }

    #[test]
    fn errors_display() {
        for e in [
            TranslationTableError::Empty,
            TranslationTableError::SettingOutOfRange {
                phase: 1,
                setting: 9,
                available: 6,
            },
            TranslationTableError::NotMonotonic { phase: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
