//! The fixed deployment context a decision engine runs in: phase
//! definitions, the phase → operating-point translation table, and the
//! platform name the configuration belongs to.
//!
//! Validation happens **here, once** — the per-sample decision path never
//! converts, checks, or panics. [`EngineConfig::new`] rejects tables that
//! do not fit the wire protocol's `u8` operating-point encoding, then
//! precomputes the phase → `u8` lookup so translation on the hot path is
//! a clamp and an index.

use crate::table::TranslationTable;
use livephase_core::{PhaseId, PhaseMap};
use std::error::Error;
use std::fmt;

/// Error constructing an [`EngineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineConfigError {
    /// The translation table covers more phases than the wire protocol's
    /// one-byte operating-point count can describe.
    TooManyOpPoints {
        /// Number of phases the table covers.
        count: usize,
    },
    /// A table entry references a setting index beyond `u8::MAX`, which
    /// cannot be framed as a `Decision::op_point`.
    SettingNotEncodable {
        /// Phase (1-based) holding the bad entry.
        phase: usize,
        /// The offending setting index.
        setting: usize,
    },
}

impl fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyOpPoints { count } => write!(
                f,
                "translation table covers {count} phases, more than a u8 op-point count holds"
            ),
            Self::SettingNotEncodable { phase, setting } => write!(
                f,
                "phase {phase} maps to setting {setting}, which does not fit a u8 op-point"
            ),
        }
    }
}

impl Error for EngineConfigError {}

/// The context every decision shares: platform name, phase map, and the
/// translation table (with its precomputed `u8` operating-point form).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    platform: String,
    phase_map: PhaseMap,
    table: TranslationTable,
    /// `op_table[i]` is the operating point for zero-based phase `i`,
    /// validated at construction so hot-path translation is infallible.
    op_table: Vec<u8>,
}

impl EngineConfig {
    /// Builds a configuration, validating that every table entry can be
    /// framed as a one-byte operating point.
    ///
    /// # Errors
    ///
    /// Returns [`EngineConfigError`] if the table covers more than 255
    /// phases or maps any phase to a setting index above `u8::MAX`.
    pub fn new(
        platform: impl Into<String>,
        phase_map: PhaseMap,
        table: TranslationTable,
    ) -> Result<Self, EngineConfigError> {
        let count = table.settings().len();
        if u8::try_from(count).is_err() {
            return Err(EngineConfigError::TooManyOpPoints { count });
        }
        let op_table = table
            .settings()
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                u8::try_from(s).map_err(|_| EngineConfigError::SettingNotEncodable {
                    phase: i + 1,
                    setting: s,
                })
            })
            .collect::<Result<Vec<u8>, _>>()?;
        Ok(Self {
            platform: platform.into(),
            phase_map,
            table,
            op_table,
        })
    }

    /// The deployed configuration: Table 1 phases over the Table 2
    /// mapping, as on the paper's Pentium M. This is the **one**
    /// constructor the governor defaults, the serve server and the
    /// experiment drivers all derive from.
    #[must_use]
    pub fn pentium_m() -> Self {
        match Self::new(
            "pentium_m",
            PhaseMap::pentium_m(),
            TranslationTable::pentium_m(),
        ) {
            Ok(config) => config,
            // Six phases over six one-digit settings always encode.
            Err(_) => unreachable!("the static Pentium M deployment config is valid"),
        }
    }

    /// Platform name clients must announce (and runs are labeled with).
    #[must_use]
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// The Mem/Uop → phase classification in force.
    #[must_use]
    pub fn phase_map(&self) -> &PhaseMap {
        &self.phase_map
    }

    /// The phase → DVFS setting mapping in force.
    #[must_use]
    pub fn table(&self) -> &TranslationTable {
        &self.table
    }

    /// Number of operating points decisions index into.
    #[must_use]
    pub fn op_points(&self) -> u8 {
        // Validated at construction: the table length fits a u8.
        u8::try_from(self.op_table.len()).unwrap_or(u8::MAX)
    }

    /// The operating point for `phase`. Phases beyond the table clamp to
    /// the last entry, exactly as [`TranslationTable::setting_for`].
    #[must_use]
    pub fn op_point_for(&self, phase: PhaseId) -> u8 {
        let i = phase.index().min(self.op_table.len() - 1);
        self.op_table[i] // lint:allow(no-panic-path): i < op_table.len() by the min; the table is non-empty by construction
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_is_the_deployed_context() {
        let c = EngineConfig::pentium_m();
        assert_eq!(c.platform(), "pentium_m");
        assert_eq!(c.op_points(), 6);
        assert_eq!(c.table(), &TranslationTable::pentium_m());
        for k in 1..=6u8 {
            assert_eq!(c.op_point_for(PhaseId::new(k)), k - 1);
        }
        // Clamps beyond the table, like the table itself.
        assert_eq!(c.op_point_for(PhaseId::new(9)), 5);
    }

    #[test]
    fn op_point_agrees_with_the_table() {
        let c = EngineConfig::pentium_m();
        for k in 1..=9u8 {
            let phase = PhaseId::new(k);
            assert_eq!(
                usize::from(c.op_point_for(phase)),
                c.table().setting_for(phase)
            );
        }
    }

    #[test]
    fn rejects_unencodable_settings() {
        let table = TranslationTable::new(vec![0, 300], 301).unwrap();
        assert_eq!(
            EngineConfig::new("big", PhaseMap::pentium_m(), table).unwrap_err(),
            EngineConfigError::SettingNotEncodable {
                phase: 2,
                setting: 300
            }
        );
    }

    #[test]
    fn rejects_oversized_tables() {
        let table = TranslationTable::new(vec![0; 300], 1).unwrap();
        assert!(matches!(
            EngineConfig::new("wide", PhaseMap::pentium_m(), table),
            Err(EngineConfigError::TooManyOpPoints { count: 300 })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            EngineConfigError::TooManyOpPoints { count: 300 },
            EngineConfigError::SettingNotEncodable {
                phase: 2,
                setting: 300,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
