//! Property-based tests for the DAQ measurement chain.

use livephase_daq::{DaqSystem, SenseCircuit};
use livephase_pmsim::trace::{PowerSegment, PowerTrace};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = PowerTrace> {
    proptest::collection::vec((1e-4f64..0.05, 0.5f64..15.0, 0u8..8), 1..20).prop_map(|v| {
        v.into_iter()
            .map(|(duration_s, power_w, pport_bits)| PowerSegment {
                duration_s,
                power_w,
                voltage_v: 1.2,
                pport_bits,
            })
            .collect()
    })
}

proptest! {
    /// The sense network's forward and inverse models are exact inverses
    /// for any physical operating point.
    #[test]
    fn sense_roundtrip(power in 0.0f64..30.0, vcpu in 0.5f64..2.0) {
        let c = SenseCircuit::pentium_m();
        let ch = c.forward(power, vcpu);
        prop_assert!((c.reconstruct_power(ch) - power).abs() < 1e-9);
        // Upstream voltages never fall below the CPU voltage.
        prop_assert!(ch.v1 >= vcpu && ch.v2 >= vcpu);
    }

    /// The ideal chain's energy error is bounded by pure sampling
    /// quantization: at most one sample period's worth of the peak power
    /// per segment boundary.
    #[test]
    fn ideal_chain_error_is_quantization_only(trace in arb_trace()) {
        let log = DaqSystem::ideal().measure(&trace);
        let truth = trace.total_energy_j();
        let peak = trace.segments().iter().map(|s| s.power_w).fold(0.0, f64::max);
        let bound = (trace.segments().len() + 1) as f64 * 40e-6 * peak;
        prop_assert!(
            (log.total_energy_j() - truth).abs() <= bound,
            "err {} bound {bound}",
            (log.total_energy_j() - truth).abs()
        );
    }

    /// The noisy chain stays within a small relative error for traces long
    /// enough to average the noise out.
    #[test]
    fn noisy_chain_is_accurate(seed in 0u64..500) {
        let mut trace = PowerTrace::new();
        trace.push(PowerSegment { duration_s: 0.05, power_w: 10.0, voltage_v: 1.4, pport_bits: 0 });
        trace.push(PowerSegment { duration_s: 0.05, power_w: 4.0, voltage_v: 1.0, pport_bits: 1 });
        let log = DaqSystem::pentium_m(seed).measure(&trace);
        let truth = trace.total_energy_j();
        prop_assert!((log.total_energy_j() - truth).abs() / truth < 0.05);
        prop_assert_eq!(log.phases().len(), 2);
    }

    /// Per-phase statistics always re-aggregate to the whole-run totals.
    #[test]
    fn phase_stats_sum_to_totals(trace in arb_trace(), seed in 0u64..100) {
        let log = DaqSystem::pentium_m(seed).measure(&trace);
        let e: f64 = log.phases().iter().map(|p| p.energy_j).sum();
        let t: f64 = log.phases().iter().map(|p| p.duration_s).sum();
        let n: u64 = log.phases().iter().map(|p| p.sample_count).sum();
        prop_assert!((e - log.total_energy_j()).abs() < 1e-9);
        prop_assert!((t - log.total_time_s()).abs() < 1e-12);
        prop_assert_eq!(n, log.samples_taken());
    }

    /// Sample counts follow the waveform duration exactly.
    #[test]
    fn sample_count_matches_duration(trace in arb_trace()) {
        let log = DaqSystem::ideal().measure(&trace);
        let expected = (trace.total_time_s() / 40e-6).floor() as i64;
        prop_assert!((log.samples_taken() as i64 - expected).abs() <= 1);
    }
}
