//! The logging machine: phase-aligned aggregation of DAQ samples.
//!
//! The paper streams every sample to a second computer which reconstructs
//! power and attributes it to execution using the parallel-port protocol:
//! each **bit 0 toggle** starts a new sampling interval (phase), **bit 1**
//! marks handler execution, **bit 2** marks the application run. The
//! logger below aggregates streaming samples into per-phase statistics
//! without retaining the raw sample storm.

use crate::sampler::DaqSample;
use crate::sense::SenseCircuit;
use livephase_pmsim::trace::pport;
use livephase_pmsim::{OperatingPoint, PowerInput, TrainingRecord};
use serde::{Deserialize, Serialize};

/// Power/duration statistics for one sampling interval (phase), as
/// reconstructed on the logging machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseMeasurement {
    /// Zero-based phase index (bit-0 toggle count).
    pub index: usize,
    /// Time of the first sample attributed to the phase, in seconds.
    pub start_s: f64,
    /// Measured duration (sample count × sampling period), in seconds.
    pub duration_s: f64,
    /// Mean reconstructed power, in watts.
    pub avg_power_w: f64,
    /// Integrated energy, in joules.
    pub energy_j: f64,
    /// Number of DAQ samples attributed to the phase.
    pub sample_count: u64,
    /// Of which, samples taken while the PMI handler was executing.
    pub handler_samples: u64,
}

/// Streaming accumulator for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Accumulator {
    start_s: f64,
    power_sum: f64,
    samples: u64,
    handler_samples: u64,
}

/// The measurement log: per-phase statistics plus whole-run aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaqLog {
    sampling_period_s: f64,
    phases: Vec<PhaseMeasurement>,
    total_samples: u64,
    app_samples: u64,
    power_sum: f64,
    #[serde(skip)]
    current: Option<(u8, Accumulator)>,
}

// Manual impls: `Accumulator` is an internal streaming detail.
impl DaqLog {
    /// Creates an empty log for the given sampling period.
    #[must_use]
    pub fn new(sampling_period_s: f64) -> Self {
        Self {
            sampling_period_s,
            phases: Vec::new(),
            total_samples: 0,
            app_samples: 0,
            power_sum: 0.0,
            current: None,
        }
    }

    /// Feeds one conditioned sample into the log.
    pub fn record(&mut self, sample: &DaqSample, circuit: &SenseCircuit) {
        let power = circuit.reconstruct_power(sample.channels);
        self.total_samples += 1;
        self.power_sum += power;
        if sample.pport_bits & pport::APP_RUNNING != 0 {
            self.app_samples += 1;
        }
        let toggle = sample.pport_bits & pport::PHASE_TOGGLE;
        let in_handler = u64::from(sample.pport_bits & pport::IN_HANDLER != 0);
        match &mut self.current {
            Some((bit, acc)) if *bit == toggle => {
                acc.power_sum += power;
                acc.samples += 1;
                acc.handler_samples += in_handler;
            }
            _ => {
                self.close_current_phase();
                self.current = Some((
                    toggle,
                    Accumulator {
                        start_s: sample.time_s,
                        power_sum: power,
                        samples: 1,
                        handler_samples: in_handler,
                    },
                ));
            }
        }
    }

    /// Finalizes the log, closing the in-flight phase.
    pub fn finish(&mut self) {
        self.close_current_phase();
    }

    fn close_current_phase(&mut self) {
        if let Some((_, acc)) = self.current.take() {
            let duration = acc.samples as f64 * self.sampling_period_s;
            let avg = acc.power_sum / acc.samples as f64;
            self.phases.push(PhaseMeasurement {
                index: self.phases.len(),
                start_s: acc.start_s,
                duration_s: duration,
                avg_power_w: avg,
                energy_j: avg * duration,
                sample_count: acc.samples,
                handler_samples: acc.handler_samples,
            });
        }
    }

    /// Per-phase measurements, in time order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseMeasurement] {
        &self.phases
    }

    /// Total samples captured.
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.total_samples
    }

    /// Samples captured while the application-run bit was high.
    #[must_use]
    pub fn app_samples(&self) -> u64 {
        self.app_samples
    }

    /// Whole-capture average power, in watts (zero for an empty capture).
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.power_sum / self.total_samples as f64
        }
    }

    /// Whole-capture measured time, in seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.total_samples as f64 * self.sampling_period_s
    }

    /// Whole-capture integrated energy, in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.power_sum * self.sampling_period_s
    }

    /// Pairs the log's phase-aligned power measurements with the PMC
    /// features the monitor recorded for the same intervals, yielding
    /// the structured training records the power-model zoo fits on.
    ///
    /// DAQ phases are produced by the manager's parallel-port bit-0
    /// toggle — one toggle per PMI — so phase `k` *is* sampling interval
    /// `k` and the zip is positional. Tails are truncated: a partial
    /// trailing phase (or a feature vector cut short) simply yields
    /// fewer records, never a misaligned one.
    pub fn training_records<'a>(
        &'a self,
        features: &'a [(OperatingPoint, PowerInput)],
    ) -> impl Iterator<Item = TrainingRecord> + 'a {
        self.phases
            .iter()
            .zip(features.iter())
            .map(|(phase, &(opp, input))| TrainingRecord {
                opp,
                input,
                measured_w: phase.avg_power_w,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time_s: f64, power_w: f64, bits: u8) -> DaqSample {
        DaqSample {
            time_s,
            channels: SenseCircuit::pentium_m().forward(power_w, 1.0),
            pport_bits: bits,
        }
    }

    fn feed(samples: &[DaqSample]) -> DaqLog {
        let c = SenseCircuit::pentium_m();
        let mut log = DaqLog::new(40e-6);
        for s in samples {
            log.record(s, &c);
        }
        log.finish();
        log
    }

    #[test]
    fn splits_phases_on_bit0_toggles() {
        let mut samples = Vec::new();
        for i in 0..10 {
            samples.push(sample(i as f64 * 40e-6, 10.0, 0b000));
        }
        for i in 10..30 {
            samples.push(sample(i as f64 * 40e-6, 2.0, 0b001));
        }
        for i in 30..40 {
            samples.push(sample(i as f64 * 40e-6, 6.0, 0b000));
        }
        let log = feed(&samples);
        assert_eq!(log.phases().len(), 3);
        assert_eq!(log.phases()[0].sample_count, 10);
        assert_eq!(log.phases()[1].sample_count, 20);
        assert!((log.phases()[0].avg_power_w - 10.0).abs() < 1e-9);
        assert!((log.phases()[1].avg_power_w - 2.0).abs() < 1e-9);
        assert!((log.phases()[2].avg_power_w - 6.0).abs() < 1e-9);
        assert_eq!(log.phases()[2].index, 2);
    }

    #[test]
    fn handler_samples_are_attributed() {
        let samples = vec![
            sample(0.0, 10.0, 0b000),
            sample(40e-6, 10.0, 0b010),
            sample(80e-6, 10.0, 0b000),
        ];
        let log = feed(&samples);
        assert_eq!(log.phases().len(), 1);
        assert_eq!(log.phases()[0].handler_samples, 1);
    }

    #[test]
    fn app_bit_counts() {
        let samples = vec![
            sample(0.0, 1.0, 0b000),
            sample(40e-6, 1.0, 0b100),
            sample(80e-6, 1.0, 0b100),
        ];
        let log = feed(&samples);
        assert_eq!(log.app_samples(), 2);
        assert_eq!(log.samples_taken(), 3);
    }

    #[test]
    fn totals_are_consistent_with_phases() {
        let samples: Vec<DaqSample> = (0..100)
            .map(|i| {
                let bits = u8::from((i / 25) % 2 == 1); // toggle every 25
                sample(i as f64 * 40e-6, 5.0, bits)
            })
            .collect();
        let log = feed(&samples);
        let phase_energy: f64 = log.phases().iter().map(|p| p.energy_j).sum();
        assert!((phase_energy - log.total_energy_j()).abs() < 1e-12);
        let phase_time: f64 = log.phases().iter().map(|p| p.duration_s).sum();
        assert!((phase_time - log.total_time_s()).abs() < 1e-12);
        assert!((log.average_power_w() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn training_records_zip_phases_with_features() {
        use livephase_pmsim::OperatingPointTable;
        // Three phases of 2/3/2 samples at 10, 2, and 6 watts.
        let samples = vec![
            sample(0.0, 10.0, 0b000),
            sample(40e-6, 10.0, 0b000),
            sample(80e-6, 2.0, 0b001),
            sample(120e-6, 2.0, 0b001),
            sample(160e-6, 2.0, 0b001),
            sample(200e-6, 6.0, 0b000),
            sample(240e-6, 6.0, 0b000),
        ];
        let log = feed(&samples);
        assert_eq!(log.phases().len(), 3);
        let opp = OperatingPointTable::pentium_m().fastest();
        // One fewer feature than phases: the tail phase is dropped.
        let features = vec![
            (opp, PowerInput::from_counters(0.01, 1.0)),
            (opp, PowerInput::from_counters(0.05, 0.4)),
        ];
        let records: Vec<TrainingRecord> = log.training_records(&features).collect();
        assert_eq!(records.len(), 2);
        assert!((records[0].measured_w - 10.0).abs() < 1e-9);
        assert!((records[1].measured_w - 2.0).abs() < 1e-9);
        assert!((records[0].input.mem_uop - 0.01).abs() < 1e-12);
        assert!((records[1].input.upc - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_safe() {
        let mut log = DaqLog::new(40e-6);
        log.finish();
        assert!(log.phases().is_empty());
        assert_eq!(log.average_power_w(), 0.0);
        assert_eq!(log.total_energy_j(), 0.0);
    }
}
