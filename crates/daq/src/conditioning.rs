//! The signal-conditioning stage: measurement noise plus low-pass
//! filtering, standing in for the National Instruments AI05 unit.
//!
//! The real conditioning unit exists to *remove* noise; in simulation the
//! stage both injects the noise a physical channel would carry (additive
//! Gaussian per channel) and applies the single-pole low-pass the unit
//! provides. The net effect on the measurement is a small zero-mean error
//! that averages out over a phase — exactly the behaviour the paper relies
//! on when it attributes DAQ samples to 100 ms phases.

use crate::sampler::DaqSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-channel noise + single-pole low-pass conditioning.
#[derive(Debug, Clone)]
pub struct SignalConditioner {
    /// Standard deviation of the additive Gaussian channel noise, in volts.
    noise_sigma_v: f64,
    /// Filter smoothing coefficient in `(0, 1]`; 1 = no filtering.
    alpha: f64,
    rng: StdRng,
    state: Option<[f64; 3]>,
}

impl SignalConditioner {
    /// The NI-unit stand-in: 1 mV channel noise, low-pass with a time
    /// constant of ≈ 160 µs (α = 0.2 at the 40 µs sampling period).
    #[must_use]
    pub fn ni_unit(seed: u64) -> Self {
        Self::new(1e-3, 0.2, seed)
    }

    /// A transparent conditioner: no noise, no filtering.
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(0.0, 1.0, 0)
    }

    /// Creates a conditioner.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma_v` is negative or `alpha` is outside
    /// `(0, 1]`.
    #[must_use]
    pub fn new(noise_sigma_v: f64, alpha: f64, seed: u64) -> Self {
        assert!(
            noise_sigma_v.is_finite() && noise_sigma_v >= 0.0,
            "noise sigma must be finite and non-negative"
        );
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "filter alpha must be in (0, 1], got {alpha}"
        );
        Self {
            noise_sigma_v,
            alpha,
            rng: StdRng::seed_from_u64(seed),
            state: None,
        }
    }

    /// Conditions one sample: noise in, filter out. Digital bits pass
    /// through untouched (the parallel-port lines are logic-level).
    #[must_use]
    pub fn process(&mut self, sample: DaqSample) -> DaqSample {
        let noisy = [
            sample.channels.v1 + self.noise(),
            sample.channels.v2 + self.noise(),
            sample.channels.vcpu + self.noise(),
        ];
        let filtered = match &mut self.state {
            None => {
                self.state = Some(noisy);
                noisy
            }
            Some(state) => {
                for (s, n) in state.iter_mut().zip(noisy) {
                    *s += self.alpha * (n - *s);
                }
                *state
            }
        };
        DaqSample {
            channels: crate::sense::ChannelVoltages {
                v1: filtered[0],
                v2: filtered[1],
                vcpu: filtered[2],
            },
            ..sample
        }
    }

    /// One Gaussian draw (Box–Muller).
    fn noise(&mut self) -> f64 {
        if self.noise_sigma_v == 0.0 {
            return 0.0;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        self.noise_sigma_v * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::ChannelVoltages;

    fn sample(v: f64) -> DaqSample {
        DaqSample {
            time_s: 0.0,
            channels: ChannelVoltages {
                v1: v,
                v2: v,
                vcpu: v,
            },
            pport_bits: 0b101,
        }
    }

    #[test]
    fn ideal_is_transparent() {
        let mut c = SignalConditioner::ideal();
        let s = c.process(sample(1.25));
        assert_eq!(s.channels.v1, 1.25);
        assert_eq!(s.channels.vcpu, 1.25);
        assert_eq!(s.pport_bits, 0b101, "digital bits untouched");
    }

    #[test]
    fn noise_averages_out() {
        let mut c = SignalConditioner::new(1e-3, 1.0, 5);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| c.process(sample(1.0)).channels.vcpu)
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 1.0).abs() < 1e-4, "mean {mean}");
    }

    #[test]
    fn filter_converges_to_step_input() {
        let mut c = SignalConditioner::new(0.0, 0.2, 0);
        let _ = c.process(sample(0.0));
        let mut last = 0.0;
        for _ in 0..60 {
            last = c.process(sample(1.0)).channels.vcpu;
        }
        assert!((last - 1.0).abs() < 1e-4, "converged to {last}");
    }

    #[test]
    fn filter_smooths_alternating_input() {
        let mut c = SignalConditioner::new(0.0, 0.2, 0);
        let mut outputs = Vec::new();
        for i in 0..200 {
            let v = if i % 2 == 0 { 0.0 } else { 1.0 };
            outputs.push(c.process(sample(v)).channels.vcpu);
        }
        let tail = &outputs[100..];
        let spread = tail.iter().cloned().fold(f64::MIN, f64::max)
            - tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.25, "filtered ripple {spread} << input swing 1.0");
    }

    #[test]
    #[should_panic(expected = "filter alpha")]
    fn zero_alpha_rejected() {
        let _ = SignalConditioner::new(0.0, 0.0, 0);
    }
}
