//! The DAQPad sampler: fixed-period sampling of the analog waveform.

use crate::sense::{ChannelVoltages, SenseCircuit};
use livephase_pmsim::PowerTrace;
use serde::{Deserialize, Serialize};

/// One raw DAQ sample: the three analog channels plus the digital
/// parallel-port lines captured at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaqSample {
    /// Sample timestamp in seconds from the start of the capture.
    pub time_s: f64,
    /// The three measured voltages.
    pub channels: ChannelVoltages,
    /// The parallel-port bits at the sampling instant.
    pub pport_bits: u8,
}

/// A fixed-period sampler over a piecewise-constant power waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    period_s: f64,
}

impl Sampler {
    /// Creates a sampler with the given period (the paper's DAQ runs at
    /// 40 µs).
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive and finite.
    #[must_use]
    pub fn new(period_s: f64) -> Self {
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "sampling period must be positive"
        );
        Self { period_s }
    }

    /// The sampling period in seconds.
    #[must_use]
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Iterates samples over the trace: one sample at the *end* of each
    /// period (`t = k·period`, k ≥ 1), walking the segment list once.
    pub fn samples<'a>(
        &self,
        trace: &'a PowerTrace,
        circuit: &'a SenseCircuit,
    ) -> impl Iterator<Item = DaqSample> + 'a {
        let period = self.period_s;
        let mut seg_idx = 0usize;
        let mut seg_end = trace.segments().first().map_or(0.0, |s| s.duration_s);
        let mut k = 0u64;
        std::iter::from_fn(move || {
            k += 1;
            #[allow(clippy::cast_precision_loss)] // k stays far below 2^52
            let t = k as f64 * period;
            // Advance to the segment containing t.
            while seg_idx < trace.segments().len() && t > seg_end + 1e-15 {
                seg_idx += 1;
                if let Some(seg) = trace.segments().get(seg_idx) {
                    seg_end += seg.duration_s;
                }
            }
            let seg = trace.segments().get(seg_idx)?;
            Some(DaqSample {
                time_s: t,
                channels: circuit.forward(seg.power_w, seg.voltage_v),
                pport_bits: seg.pport_bits,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_pmsim::trace::PowerSegment;

    fn seg(duration_s: f64, power_w: f64, bits: u8) -> PowerSegment {
        PowerSegment {
            duration_s,
            power_w,
            voltage_v: 1.0,
            pport_bits: bits,
        }
    }

    #[test]
    fn sample_count_matches_duration() {
        let mut t = PowerTrace::new();
        t.push(seg(0.001, 5.0, 0));
        let s = Sampler::new(40e-6);
        assert_eq!(s.samples(&t, &SenseCircuit::pentium_m()).count(), 25);
    }

    #[test]
    fn samples_pick_the_right_segment() {
        let mut t = PowerTrace::new();
        t.push(seg(100e-6, 10.0, 0b0));
        t.push(seg(100e-6, 2.0, 0b1));
        let c = SenseCircuit::pentium_m();
        let all: Vec<DaqSample> = Sampler::new(40e-6).samples(&t, &c).collect();
        assert_eq!(all.len(), 5);
        // t = 40, 80 us -> segment 1; t = 120, 160, 200 us -> segment 2.
        let p: Vec<f64> = all
            .iter()
            .map(|s| c.reconstruct_power(s.channels))
            .collect();
        assert!((p[0] - 10.0).abs() < 1e-9);
        assert!((p[1] - 10.0).abs() < 1e-9);
        assert!((p[2] - 2.0).abs() < 1e-9);
        assert!((p[4] - 2.0).abs() < 1e-9);
        assert_eq!(all[1].pport_bits, 0b0);
        assert_eq!(all[2].pport_bits, 0b1);
    }

    #[test]
    fn empty_trace_yields_no_samples() {
        let t = PowerTrace::new();
        let s = Sampler::new(40e-6);
        assert_eq!(s.samples(&t, &SenseCircuit::pentium_m()).count(), 0);
    }

    #[test]
    fn sub_period_trace_yields_no_samples() {
        let mut t = PowerTrace::new();
        t.push(seg(10e-6, 5.0, 0));
        let s = Sampler::new(40e-6);
        assert_eq!(s.samples(&t, &SenseCircuit::pentium_m()).count(), 0);
    }

    #[test]
    #[should_panic(expected = "sampling period")]
    fn zero_period_rejected() {
        let _ = Sampler::new(0.0);
    }
}
