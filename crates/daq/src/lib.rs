//! # livephase-daq
//!
//! A simulation of the paper's external power-measurement rig (Figure 9,
//! Section 5.3–5.4). On the real system:
//!
//! * two 2 mΩ precision sense resistors sit between the voltage regulator
//!   and the Pentium-M; the DAQ measures the three voltages `V1`, `V2`,
//!   `VCPU` and reconstructs `I1 = (V1 − VCPU)/R1`, `I2 = (V2 − VCPU)/R2`
//!   and `P = VCPU · (I1 + I2)`;
//! * a National Instruments signal-conditioning unit filters noise off the
//!   analog channels;
//! * a DAQPad samples all channels every **40 µs** and streams them to a
//!   separate logging machine;
//! * three parallel-port bits synchronize the electrically independent
//!   measurement side with program execution: bit 0 toggles at each
//!   sampling interval (so power can be attributed to individual phases),
//!   bit 1 brackets PMI-handler execution, bit 2 brackets the application.
//!
//! This crate reproduces that chain end to end over the analog-equivalent
//! [`livephase_pmsim::PowerTrace`] the simulated CPU records:
//! sense-network forward model → additive measurement noise → single-pole
//! low-pass → 40 µs sampler → phase-aligned logger.
//!
//! ```
//! use livephase_pmsim::trace::{PowerTrace, PowerSegment, pport};
//! use livephase_daq::DaqSystem;
//!
//! let mut trace = PowerTrace::new();
//! trace.push(PowerSegment { duration_s: 0.05, power_w: 13.0,
//!                           voltage_v: 1.484, pport_bits: pport::APP_RUNNING });
//! let log = DaqSystem::pentium_m(42).measure(&trace);
//! // 0.05 s at 40 us per sample = 1250 samples.
//! assert_eq!(log.samples_taken(), 1250);
//! assert!((log.total_energy_j() - 0.65).abs() / 0.65 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conditioning;
pub mod logger;
pub mod sampler;
pub mod sense;

pub use conditioning::SignalConditioner;
pub use logger::{DaqLog, PhaseMeasurement};
pub use sampler::{DaqSample, Sampler};
pub use sense::SenseCircuit;

use livephase_pmsim::PowerTrace;

/// The complete measurement chain, configured like the paper's rig.
#[derive(Debug, Clone)]
pub struct DaqSystem {
    circuit: SenseCircuit,
    conditioner: SignalConditioner,
    sampling_period_s: f64,
}

impl DaqSystem {
    /// The paper's configuration: 2 mΩ sense resistors, 40 µs sampling,
    /// mild channel noise, single-pole conditioning. `seed` drives the
    /// (deterministic) measurement-noise generator.
    #[must_use]
    pub fn pentium_m(seed: u64) -> Self {
        Self {
            circuit: SenseCircuit::pentium_m(),
            conditioner: SignalConditioner::ni_unit(seed),
            sampling_period_s: 40e-6,
        }
    }

    /// A noise-free, unfiltered chain — useful for isolating pure sampling
    /// (quantization) error in tests and ablations.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            circuit: SenseCircuit::pentium_m(),
            conditioner: SignalConditioner::ideal(),
            sampling_period_s: 40e-6,
        }
    }

    /// The sampling period in seconds.
    #[must_use]
    pub fn sampling_period_s(&self) -> f64 {
        self.sampling_period_s
    }

    /// Overrides the sampling period (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive and finite.
    #[must_use]
    pub fn with_sampling_period(mut self, period_s: f64) -> Self {
        assert!(
            period_s.is_finite() && period_s > 0.0,
            "sampling period must be positive"
        );
        self.sampling_period_s = period_s;
        self
    }

    /// Runs the full chain over a power waveform and returns the
    /// phase-aligned measurement log.
    #[must_use]
    pub fn measure(&self, trace: &PowerTrace) -> DaqLog {
        let mut conditioner = self.conditioner.clone();
        let sampler = Sampler::new(self.sampling_period_s);
        let mut log = DaqLog::new(self.sampling_period_s);
        for raw in sampler.samples(trace, &self.circuit) {
            let conditioned = conditioner.process(raw);
            log.record(&conditioned, &self.circuit);
        }
        log.finish();
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_pmsim::trace::{pport, PowerSegment};

    fn seg(duration_s: f64, power_w: f64, bits: u8) -> PowerSegment {
        PowerSegment {
            duration_s,
            power_w,
            voltage_v: 1.484,
            pport_bits: bits,
        }
    }

    #[test]
    fn measured_energy_tracks_ground_truth() {
        let mut t = PowerTrace::new();
        t.push(seg(0.1, 13.0, pport::APP_RUNNING));
        t.push(seg(0.1, 3.0, pport::APP_RUNNING));
        let truth = t.total_energy_j();
        let log = DaqSystem::pentium_m(1).measure(&t);
        let err = (log.total_energy_j() - truth).abs() / truth;
        assert!(err < 0.03, "relative error {err}");
    }

    #[test]
    fn ideal_chain_is_exact_up_to_sampling() {
        let mut t = PowerTrace::new();
        t.push(seg(0.1, 10.0, 0));
        let log = DaqSystem::ideal().measure(&t);
        let err = (log.total_energy_j() - 1.0).abs();
        assert!(err < 1e-6, "ideal error {err}");
    }

    #[test]
    fn phase_attribution_via_bit0() {
        let mut t = PowerTrace::new();
        // Two sampling intervals marked by a bit-0 toggle.
        t.push(seg(0.08, 13.0, pport::APP_RUNNING));
        t.push(seg(0.12, 3.0, pport::APP_RUNNING | pport::PHASE_TOGGLE));
        let log = DaqSystem::pentium_m(2).measure(&t);
        let phases = log.phases();
        assert_eq!(phases.len(), 2);
        assert!((phases[0].duration_s - 0.08).abs() < 1e-3);
        assert!((phases[1].duration_s - 0.12).abs() < 1e-3);
        assert!(phases[0].avg_power_w > 12.0);
        assert!(phases[1].avg_power_w < 4.0);
    }

    #[test]
    fn custom_sampling_period() {
        let mut t = PowerTrace::new();
        t.push(seg(0.001, 10.0, 0));
        let log = DaqSystem::ideal().with_sampling_period(100e-6).measure(&t);
        assert_eq!(log.samples_taken(), 10);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let mut t = PowerTrace::new();
        t.push(seg(0.05, 8.0, 0));
        let a = DaqSystem::pentium_m(7).measure(&t);
        let b = DaqSystem::pentium_m(7).measure(&t);
        assert_eq!(a.total_energy_j(), b.total_energy_j());
        let c = DaqSystem::pentium_m(8).measure(&t);
        assert_ne!(a.total_energy_j(), c.total_energy_j());
    }
}
