//! The sense-resistor network between the voltage regulator and the CPU.
//!
//! The prototype board routes the CPU supply current through two parallel
//! 2 mΩ precision resistors, `R1` and `R2`. The rig observes the upstream
//! voltages `V1`, `V2` and the downstream CPU voltage `VCPU`; currents and
//! power are reconstructed as
//!
//! ```text
//! I1 = (V1 − VCPU) / R1,   I2 = (V2 − VCPU) / R2,   P = VCPU · (I1 + I2).
//! ```

use serde::{Deserialize, Serialize};

/// The analog voltages present on the three measured channels at one
/// instant, before conditioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelVoltages {
    /// Voltage upstream of R1, in volts.
    pub v1: f64,
    /// Voltage upstream of R2, in volts.
    pub v2: f64,
    /// CPU supply voltage, in volts.
    pub vcpu: f64,
}

/// The two-resistor sense network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseCircuit {
    /// First sense resistor, in ohms.
    pub r1_ohm: f64,
    /// Second sense resistor, in ohms.
    pub r2_ohm: f64,
}

impl SenseCircuit {
    /// The prototype board's two 2 mΩ resistors.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            r1_ohm: 0.002,
            r2_ohm: 0.002,
        }
    }

    /// Forward model: the channel voltages produced when the CPU draws
    /// `power_w` at `vcpu` volts. The supply current splits between the
    /// parallel resistors in inverse proportion to their resistance.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is not positive or `power_w` is negative.
    #[must_use]
    pub fn forward(&self, power_w: f64, vcpu: f64) -> ChannelVoltages {
        assert!(vcpu > 0.0, "CPU voltage must be positive");
        assert!(power_w >= 0.0, "power must be non-negative");
        let total_i = power_w / vcpu;
        // Parallel split: I1/I2 = R2/R1.
        let i1 = total_i * self.r2_ohm / (self.r1_ohm + self.r2_ohm);
        let i2 = total_i - i1;
        ChannelVoltages {
            v1: vcpu + i1 * self.r1_ohm,
            v2: vcpu + i2 * self.r2_ohm,
            vcpu,
        }
    }

    /// Inverse model (what the logging machine computes): reconstructs CPU
    /// power from measured channel voltages. Negative reconstructed drops
    /// (possible under noise at near-zero load) clamp to zero current.
    #[must_use]
    pub fn reconstruct_power(&self, ch: ChannelVoltages) -> f64 {
        let i1 = ((ch.v1 - ch.vcpu) / self.r1_ohm).max(0.0);
        let i2 = ((ch.v2 - ch.vcpu) / self.r2_ohm).max(0.0);
        ch.vcpu * (i1 + i2)
    }
}

impl Default for SenseCircuit {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_then_reconstruct_is_identity() {
        let c = SenseCircuit::pentium_m();
        for &(p, v) in &[(13.0, 1.484), (3.0, 0.956), (0.0, 1.0)] {
            let ch = c.forward(p, v);
            let p2 = c.reconstruct_power(ch);
            assert!((p - p2).abs() < 1e-9, "{p} W -> {p2} W");
        }
    }

    #[test]
    fn equal_resistors_split_current_evenly() {
        let c = SenseCircuit::pentium_m();
        let ch = c.forward(14.84, 1.484); // 10 A total
        let drop1 = ch.v1 - ch.vcpu;
        let drop2 = ch.v2 - ch.vcpu;
        assert!((drop1 - drop2).abs() < 1e-12);
        // 5 A through 2 mOhm = 10 mV.
        assert!((drop1 - 0.010).abs() < 1e-9);
    }

    #[test]
    fn unequal_resistors_split_inversely() {
        let c = SenseCircuit {
            r1_ohm: 0.002,
            r2_ohm: 0.004,
        };
        let ch = c.forward(6.0, 1.0); // 6 A total
        let i1 = (ch.v1 - ch.vcpu) / c.r1_ohm;
        let i2 = (ch.v2 - ch.vcpu) / c.r2_ohm;
        assert!((i1 - 4.0).abs() < 1e-9);
        assert!((i2 - 2.0).abs() < 1e-9);
        assert!((c.reconstruct_power(ch) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn noise_below_vcpu_clamps_to_zero() {
        let c = SenseCircuit::pentium_m();
        let ch = ChannelVoltages {
            v1: 0.999,
            v2: 1.001,
            vcpu: 1.0,
        };
        let p = c.reconstruct_power(ch);
        assert!((p - 0.5).abs() < 1e-9, "only the positive drop counts");
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn negative_power_rejected() {
        let _ = SenseCircuit::pentium_m().forward(-1.0, 1.0);
    }
}
