//! Per-sample predictor cost — the code on the paper's PMI critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livephase_bench::synthetic_phase_pattern;
use livephase_core::{
    FixedWindow, Gpht, GphtConfig, HashedGpht, HashedGphtConfig, LastValue, PhaseId, PhaseSample,
    Predictor, Selector, VariableWindow,
};
use std::hint::black_box;

fn stream(len: usize) -> Vec<PhaseSample> {
    synthetic_phase_pattern(len)
        .into_iter()
        .map(|p| PhaseSample::new(f64::from(p) * 0.005, PhaseId::new(p)))
        .collect()
}

/// One `next()` call per sample for each predictor of Figure 4.
fn bench_per_sample(c: &mut Criterion) {
    let samples = stream(1024);
    let mut group = c.benchmark_group("predictor_per_sample");
    let predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(LastValue::new()),
        Box::new(FixedWindow::new(8, Selector::Majority)),
        Box::new(FixedWindow::new(128, Selector::Majority)),
        Box::new(VariableWindow::new(128, 0.005)),
        Box::new(Gpht::new(GphtConfig::DEPLOYED)),
        Box::new(Gpht::new(GphtConfig::REFERENCE)),
        Box::new(HashedGpht::new(HashedGphtConfig::DEPLOYED)),
        Box::new(HashedGpht::new(HashedGphtConfig {
            gphr_depth: 8,
            pht_entries: 1024,
        })),
    ];
    for p in predictors {
        let name = p.name();
        group.bench_function(BenchmarkId::from_parameter(&name), |b| {
            let mut p = p.clone_boxed_for_bench(&name);
            let mut it = samples.iter().cycle();
            b.iter(|| {
                let s = *it.next().expect("cycle");
                black_box(p.next(s))
            });
        });
    }
    group.finish();
}

/// Rebuild helper: Criterion closures need a fresh predictor per run;
/// reconstruct from the display name.
trait CloneBoxed {
    fn clone_boxed_for_bench(&self, name: &str) -> Box<dyn Predictor>;
}

impl CloneBoxed for Box<dyn Predictor> {
    fn clone_boxed_for_bench(&self, name: &str) -> Box<dyn Predictor> {
        match name {
            "LastValue" => Box::new(LastValue::new()),
            "FixWindow_8" => Box::new(FixedWindow::new(8, Selector::Majority)),
            "FixWindow_128" => Box::new(FixedWindow::new(128, Selector::Majority)),
            "VarWindow_128_0.005" => Box::new(VariableWindow::new(128, 0.005)),
            "GPHT_8_128" => Box::new(Gpht::new(GphtConfig::DEPLOYED)),
            "GPHT_8_1024" => Box::new(Gpht::new(GphtConfig::REFERENCE)),
            "HashedGPHT_8_128" => Box::new(HashedGpht::new(HashedGphtConfig::DEPLOYED)),
            "HashedGPHT_8_1024" => Box::new(HashedGpht::new(HashedGphtConfig {
                gphr_depth: 8,
                pht_entries: 1024,
            })),
            other => unreachable!("unknown predictor {other}"),
        }
    }
}

/// GPHT cost as a function of PHT size (the performance counterpart of
/// Figure 5's accuracy sweep — why the deployed system uses 128 entries,
/// not 1024).
fn bench_gpht_pht_sweep(c: &mut Criterion) {
    let samples = stream(1024);
    let mut group = c.benchmark_group("gpht_pht_size");
    for entries in [1usize, 64, 128, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(entries),
            &entries,
            |b, &entries| {
                let mut g = Gpht::new(GphtConfig {
                    gphr_depth: 8,
                    pht_entries: entries,
                });
                // Warm the table so steady-state search cost is measured.
                for &s in &samples {
                    g.observe(s);
                }
                let mut it = samples.iter().cycle();
                b.iter(|| black_box(g.next(*it.next().expect("cycle"))));
            },
        );
    }
    group.finish();
}

/// GPHT cost as a function of history depth.
fn bench_gpht_depth_sweep(c: &mut Criterion) {
    let samples = stream(1024);
    let mut group = c.benchmark_group("gpht_gphr_depth");
    for depth in [2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut g = Gpht::new(GphtConfig {
                gphr_depth: depth,
                pht_entries: 128,
            });
            for &s in &samples {
                g.observe(s);
            }
            let mut it = samples.iter().cycle();
            b.iter(|| black_box(g.next(*it.next().expect("cycle"))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_per_sample,
    bench_gpht_pht_sweep,
    bench_gpht_depth_sweep
);
criterion_main!(benches);
