//! Telemetry hot-path cost: the instruments sit on the serve decision
//! path and the PMI handler, so a record must stay a handful of atomic
//! adds regardless of the recorded value's magnitude.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livephase_telemetry::Histogram;
use std::hint::black_box;

fn bench_counter(c: &mut Criterion) {
    let counter = livephase_telemetry::global().counter(
        "bench_counter_increments_total",
        "Scratch counter for the increment benchmark.",
        &[],
    );
    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));
    group.finish();
}

/// Histogram record across value magnitudes: the log-linear bucket index
/// is a leading-zeros count plus shifts, so small and huge values must
/// cost the same.
fn bench_histogram(c: &mut Criterion) {
    let hist = Histogram::new();
    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(1));
    for value in [3_u64, 40_000, u64::MAX / 2] {
        group.bench_function(format!("histogram_record_{value}"), |b| {
            b.iter(|| hist.record(black_box(value)))
        });
    }
    group.finish();
}

/// Rendering is the cold path (one scrape), but keep it visible so a
/// regression to per-scrape seconds gets noticed.
fn bench_render(c: &mut Criterion) {
    let reg = livephase_telemetry::global();
    let hist = reg.histogram(
        "bench_render_us",
        "Scratch histogram for the render benchmark.",
        &[],
    );
    for v in 0..4096_u64 {
        hist.record(v * 37);
    }
    c.bench_function("telemetry_render", |b| b.iter(|| black_box(reg.render())));
}

criterion_group!(benches, bench_counter, bench_histogram, bench_render);
criterion_main!(benches);
