//! Service-layer costs: the wire codec on the hot Sample/Decision path,
//! and a single shard's per-sample decision throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livephase_serve::wire::{self, Frame};
use livephase_serve::{EngineConfig, SessionState};
use livephase_workloads::{counter_samples, spec};
use std::hint::black_box;

/// Encoding and decoding the two frames every sample exchanges: the
/// client's `Sample` and the server's `Decision`.
fn bench_frame_codec(c: &mut Criterion) {
    let sample = Frame::Sample {
        pid: 7,
        uops: 100_000_000,
        mem_trans: 1_200_000,
        tsc_delta: 150_000_000,
    };
    let decision = Frame::Decision {
        pid: 7,
        op_point: 3,
        confidence: 9_500,
    };
    let mut group = c.benchmark_group("serve_frame_codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_sample", |b| {
        b.iter(|| black_box(wire::encode(black_box(&sample))))
    });
    group.bench_function("encode_decision", |b| {
        b.iter(|| black_box(wire::encode(black_box(&decision))))
    });
    // The reactor's write path: `encode_into` appends onto a reused
    // outbound queue instead of allocating a Vec per frame. Steady-state
    // (buffer capacity reached) this is the zero-allocation encode.
    group.bench_function("encode_decision_into_reused", |b| {
        let mut outbound = Vec::with_capacity(4096);
        b.iter(|| {
            outbound.clear();
            wire::encode_into(black_box(&decision), &mut outbound);
            black_box(outbound.len())
        })
    });
    group.bench_function("encode_sample_into_reused", |b| {
        let mut outbound = Vec::with_capacity(4096);
        b.iter(|| {
            outbound.clear();
            wire::encode_into(black_box(&sample), &mut outbound);
            black_box(outbound.len())
        })
    });
    let sample_payload = wire::encode_payload(&sample);
    group.bench_function("decode_sample", |b| {
        b.iter(|| wire::decode_payload(black_box(&sample_payload)).expect("valid"))
    });
    let decision_payload = wire::encode_payload(&decision);
    group.bench_function("decode_decision", |b| {
        b.iter(|| wire::decode_payload(black_box(&decision_payload)).expect("valid"))
    });
    group.finish();
}

/// One shard turning counter samples into DVFS decisions — the service's
/// compute kernel, with the sockets taken out of the picture.
fn bench_shard_decisions(c: &mut Criterion) {
    let config = EngineConfig::pentium_m();
    let trace = spec::benchmark("applu_in")
        .expect("registered")
        .with_length(200)
        .generate(1);
    let samples: Vec<(u64, u64)> = counter_samples(&trace)
        .map(|s| (s.uops, s.mem_transactions))
        .collect();
    let mut group = c.benchmark_group("serve_shard_decisions");
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("gpht_session_200", |b| {
        b.iter(|| {
            let mut session = SessionState::new(&config, "gpht:8:128").expect("valid spec");
            let mut last = 0u8;
            for &(uops, mem_trans) in &samples {
                last = session.apply(1, uops, mem_trans).op_point;
            }
            black_box(last)
        });
    });
    group.bench_function("gpht_16_sessions_200", |b| {
        b.iter(|| {
            let mut session = SessionState::new(&config, "gpht:8:128").expect("valid spec");
            let mut last = 0u8;
            for &(uops, mem_trans) in &samples {
                for pid in 1..=16u32 {
                    last = session.apply(pid, uops, mem_trans).op_point;
                }
            }
            black_box(last)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_frame_codec, bench_shard_decisions);
criterion_main!(benches);
