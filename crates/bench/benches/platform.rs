//! Platform-simulator throughput: timing/power evaluation, interval
//! execution and DVFS switching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livephase_pmsim::{
    AnalyticModel, Cpu, Frequency, IntervalWork, OperatingPointTable, PlatformConfig, TimingModel,
};
use std::hint::black_box;

fn work() -> IntervalWork {
    IntervalWork::new(100_000_000, 80_000_000, 1_200_000, 0.8, 2.0)
}

fn bench_timing_model(c: &mut Criterion) {
    let t = TimingModel::pentium_m();
    let w = work();
    let f = Frequency::from_mhz(1500);
    c.bench_function("timing_execute", |b| {
        b.iter(|| black_box(t.execute(black_box(&w), f)))
    });
}

fn bench_power_model(c: &mut Criterion) {
    let m = AnalyticModel::pentium_m();
    let opp = OperatingPointTable::pentium_m().fastest();
    c.bench_function("power_eval", |b| {
        b.iter(|| black_box(m.activity_power(opp, black_box(0.7))))
    });
}

/// Cost of simulating one full 100 M-uop sampling interval, with and
/// without power-waveform recording.
fn bench_interval_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_interval");
    for (label, record) in [("plain", false), ("with_waveform", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &record, |b, &record| {
            let config = if record {
                PlatformConfig::pentium_m().with_power_trace()
            } else {
                PlatformConfig::pentium_m()
            };
            let mut cpu = Cpu::new(&config);
            let w = work();
            b.iter(|| {
                cpu.push_work(w);
                black_box(cpu.run_to_pmi().expect("one interval"))
            });
        });
    }
    group.finish();
}

fn bench_dvfs_switch(c: &mut Criterion) {
    let platform = PlatformConfig::pentium_m();
    let mut cpu = Cpu::new(&platform);
    let mut flip = false;
    c.bench_function("dvfs_switch", |b| {
        b.iter(|| {
            flip = !flip;
            cpu.set_dvfs(usize::from(flip) * 5).expect("valid");
        })
    });
}

criterion_group!(
    benches,
    bench_timing_model,
    bench_power_model,
    bench_interval_execution,
    bench_dvfs_switch
);
criterion_main!(benches);
