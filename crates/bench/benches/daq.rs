//! DAQ measurement-chain throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livephase_daq::{DaqSystem, SenseCircuit};
use livephase_pmsim::trace::{PowerSegment, PowerTrace};
use std::hint::black_box;

fn waveform(seconds: f64) -> PowerTrace {
    // Alternating 10 ms segments, like a managed run's phase structure.
    let mut t = PowerTrace::new();
    let mut elapsed = 0.0;
    let mut hot = true;
    while elapsed < seconds {
        t.push(PowerSegment {
            duration_s: 0.01,
            power_w: if hot { 12.0 } else { 3.0 },
            voltage_v: if hot { 1.484 } else { 0.956 },
            pport_bits: u8::from(hot),
        });
        hot = !hot;
        elapsed += 0.01;
    }
    t
}

fn bench_sense_math(c: &mut Criterion) {
    let circuit = SenseCircuit::pentium_m();
    c.bench_function("sense_forward_reconstruct", |b| {
        b.iter(|| {
            let ch = circuit.forward(black_box(11.5), black_box(1.42));
            black_box(circuit.reconstruct_power(ch))
        })
    });
}

/// Full-chain throughput, reported in DAQ samples per second of CPU time
/// measured (1 s of simulated time = 25 000 samples at 40 µs).
fn bench_measurement_chain(c: &mut Criterion) {
    let trace = waveform(1.0);
    let samples = (trace.total_time_s() / 40e-6) as u64;
    let mut group = c.benchmark_group("daq_chain");
    group.throughput(Throughput::Elements(samples));
    group.bench_function("noisy", |b| {
        let daq = DaqSystem::pentium_m(7);
        b.iter(|| black_box(daq.measure(&trace)))
    });
    group.bench_function("ideal", |b| {
        let daq = DaqSystem::ideal();
        b.iter(|| black_box(daq.measure(&trace)))
    });
    group.finish();
}

criterion_group!(benches, bench_sense_math, bench_measurement_chain);
criterion_main!(benches);
