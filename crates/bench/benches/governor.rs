//! Full management-loop cost per sampling interval for each policy the
//! paper compares, plus the conservative-derivation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use livephase_core::{Gpht, GphtConfig};
use livephase_governor::{
    AdaptiveSampling, ConservativeDerivation, Manager, ManagerConfig, MinDwell, PowerEstimator,
    Proactive, ThermalAware, TranslationTable,
};
use livephase_pmsim::{PlatformConfig, ThermalModel};
use livephase_workloads::spec;
use std::hint::black_box;

/// Whole managed runs (baseline / reactive / GPHT) over a 200-interval
/// applu slice, measured per interval.
fn bench_managed_runs(c: &mut Criterion) {
    let trace = spec::benchmark("applu_in")
        .expect("registered")
        .with_length(200)
        .generate(1);
    let mut group = c.benchmark_group("managed_run_per_interval");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for label in ["baseline", "reactive", "gpht"] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, &label| {
            b.iter(|| {
                let manager = match label {
                    "baseline" => Manager::baseline(),
                    "reactive" => Manager::reactive(),
                    _ => Manager::gpht_deployed(),
                };
                black_box(manager.run(&trace, &PlatformConfig::pentium_m()))
            });
        });
    }
    group.finish();
}

/// Deriving the conservative phase definitions (done once per
/// reconfiguration on the deployed system).
fn bench_conservative_derivation(c: &mut Criterion) {
    let d = ConservativeDerivation::pentium_m();
    c.bench_function("conservative_derive_5pct", |b| {
        b.iter(|| black_box(d.derive(0.05)))
    });
}

/// Workload generation cost (trace synthesis is on every experiment's
/// critical path).
fn bench_workload_generation(c: &mut Criterion) {
    let spec = spec::benchmark("equake_in")
        .expect("registered")
        .with_length(2000);
    c.bench_function("workload_generate_2000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(spec.generate(seed))
        })
    });
}

/// The extension policies' whole-run cost relative to plain GPHT: thermal
/// tracking, adaptive sampling, and min-dwell hysteresis.
fn bench_extension_policies(c: &mut Criterion) {
    let trace = spec::benchmark("applu_in")
        .expect("registered")
        .with_length(200)
        .generate(1);
    let mut group = c.benchmark_group("extension_policies");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("thermal_aware", |b| {
        b.iter(|| {
            let manager = Manager::new(
                Box::new(ThermalAware::new(
                    Gpht::new(GphtConfig::DEPLOYED),
                    TranslationTable::pentium_m(),
                    PowerEstimator::pentium_m(),
                    ThermalModel::pentium_m(),
                    70.0,
                )),
                ManagerConfig {
                    thermal: Some(ThermalModel::pentium_m()),
                    ..ManagerConfig::pentium_m()
                },
            );
            black_box(manager.run(&trace, &PlatformConfig::pentium_m()))
        });
    });
    group.bench_function("adaptive_sampling", |b| {
        b.iter(|| {
            let manager = Manager::new(
                Box::new(Proactive::gpht_deployed()),
                ManagerConfig {
                    adaptive_sampling: Some(AdaptiveSampling::pentium_m()),
                    ..ManagerConfig::pentium_m()
                },
            );
            black_box(manager.run(&trace, &PlatformConfig::pentium_m()))
        });
    });
    group.bench_function("min_dwell", |b| {
        b.iter(|| {
            let manager = Manager::new(
                Box::new(MinDwell::new(Proactive::gpht_deployed(), 2)),
                ManagerConfig::pentium_m(),
            );
            black_box(manager.run(&trace, &PlatformConfig::pentium_m()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_managed_runs,
    bench_conservative_derivation,
    bench_workload_generation,
    bench_extension_policies
);
criterion_main!(benches);
